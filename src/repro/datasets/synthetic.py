"""Synthetic point generators."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import Rect

#: The unit square, the paper's universe for uniform experiments.
UNIT_UNIVERSE = Rect(0.0, 0.0, 1.0, 1.0)


def uniform_points(n: int, universe: Rect = UNIT_UNIVERSE,
                   seed: Optional[int] = None) -> np.ndarray:
    """``n`` points uniform in ``universe``; shape ``(n, 2)``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    pts[:, 0] = universe.xmin + pts[:, 0] * universe.width
    pts[:, 1] = universe.ymin + pts[:, 1] * universe.height
    return pts


def gaussian_clusters(n: int, num_clusters: int, spread: float,
                      universe: Rect = UNIT_UNIVERSE,
                      seed: Optional[int] = None,
                      size_skew: float = 0.0,
                      centers: Optional[np.ndarray] = None) -> np.ndarray:
    """``n`` points from a mixture of isotropic Gaussian clusters.

    ``spread`` is the cluster standard deviation as a fraction of the
    universe width.  With ``size_skew > 0`` cluster populations follow a
    power law ``rank**-size_skew`` (large cities vs villages); 0 gives
    equal-size clusters.  Points are clamped to the universe.

    ``centers`` optionally fixes the cluster centres (shape
    ``(num_clusters, 2)``); by default they are drawn uniformly.
    Passing centres that are themselves clustered produces the
    two-level (region -> city) skew of real settlement data.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = uniform_points(num_clusters, universe,
                                 seed=rng.integers(0, 2**31))
    else:
        centers = np.asarray(centers, dtype=float)
        if centers.shape != (num_clusters, 2):
            raise ValueError("centers must have shape (num_clusters, 2)")
    if size_skew > 0.0:
        weights = np.arange(1, num_clusters + 1, dtype=float) ** -size_skew
    else:
        weights = np.ones(num_clusters)
    weights /= weights.sum()
    assignment = rng.choice(num_clusters, size=n, p=weights)
    sigma = spread * universe.width
    pts = centers[assignment] + rng.normal(0.0, sigma, size=(n, 2))
    np.clip(pts[:, 0], universe.xmin, universe.xmax, out=pts[:, 0])
    np.clip(pts[:, 1], universe.ymin, universe.ymax, out=pts[:, 1])
    return pts
