"""Deterministic stand-ins for the paper's real datasets.

The originals (from ``dias.cti.gr/~ytheod/research/datasets``) are no
longer distributed and this environment has no network access, so we
synthesize datasets with the same cardinality, the same universe, and
the same *kind* of skew:

* **GR** — street-segment centroids follow the road network: points
  concentrated along line features connecting settlements.  We build a
  nearest-neighbour graph over random town sites and scatter points
  along its edges (denser near towns), with village-level noise.
* **NA** — populated places cluster around metropolitan areas whose
  populations are heavy-tailed.  We use a power-law Gaussian mixture
  with a thin uniform rural background.

Both generators are seeded, so every experiment in the repository sees
the exact same "real" data.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect
from repro.datasets.synthetic import gaussian_clusters, uniform_points

#: Cardinality and universe of the paper's GR dataset (800 km x 800 km,
#: stored in metres like the paper's area plots suggest).
GR_CARDINALITY = 23_268
GR_UNIVERSE = Rect(0.0, 0.0, 800_000.0, 800_000.0)

#: Cardinality and universe of the paper's NA dataset (~7000 km square).
NA_CARDINALITY = 569_120
NA_UNIVERSE = Rect(0.0, 0.0, 7_000_000.0, 7_000_000.0)


def make_greece_like(n: int = GR_CARDINALITY,
                     universe: Rect = GR_UNIVERSE,
                     num_towns: int = 120,
                     seed: int = 2003) -> np.ndarray:
    """A GR-like dataset: points along a road network between towns."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    towns = uniform_points(num_towns, universe, seed=int(rng.integers(2**31)))

    # Connect each town to its 2-3 nearest neighbours: a crude road map.
    edges = []
    for i in range(num_towns):
        d = np.hypot(towns[:, 0] - towns[i, 0], towns[:, 1] - towns[i, 1])
        d[i] = np.inf
        degree = 2 + int(rng.integers(0, 2))
        for j in np.argsort(d)[:degree]:
            edges.append((i, int(j)))
    edges = np.array(edges)
    lengths = np.hypot(
        towns[edges[:, 1], 0] - towns[edges[:, 0], 0],
        towns[edges[:, 1], 1] - towns[edges[:, 0], 1])
    weights = lengths / lengths.sum()

    # 85 % of the points sit on roads (with lateral jitter), 15 % are
    # scattered around towns (dense urban street grids).
    n_road = int(n * 0.85)
    n_urban = n - n_road
    pick = rng.choice(len(edges), size=n_road, p=weights)
    t = rng.random(n_road)
    a = towns[edges[pick, 0]]
    b = towns[edges[pick, 1]]
    road_pts = a + t[:, None] * (b - a)
    road_pts += rng.normal(0.0, 0.002 * universe.width, size=road_pts.shape)

    urban_centers = towns[rng.integers(0, num_towns, size=n_urban)]
    urban_pts = urban_centers + rng.normal(0.0, 0.008 * universe.width,
                                           size=(n_urban, 2))
    pts = np.vstack([road_pts, urban_pts])
    np.clip(pts[:, 0], universe.xmin, universe.xmax, out=pts[:, 0])
    np.clip(pts[:, 1], universe.ymin, universe.ymax, out=pts[:, 1])
    return pts


def make_north_america_like(n: int = NA_CARDINALITY,
                            universe: Rect = NA_UNIVERSE,
                            num_metros: int = 2_000,
                            seed: int = 1958) -> np.ndarray:
    """An NA-like dataset: two-level settlement clustering + rural noise.

    Metro centres are themselves drawn from continental "mega-regions"
    (coasts, corridors), giving the strong large-scale skew of the real
    populated-places data; places then cluster around each metro with a
    mildly heavy-tailed size distribution.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    n_rural = int(n * 0.10)
    n_metro = n - n_rural
    regions = gaussian_clusters(num_metros, 25, spread=0.06,
                                universe=universe,
                                seed=int(rng.integers(2**31)),
                                size_skew=0.7)
    metro = gaussian_clusters(n_metro, num_metros, spread=0.004,
                              universe=universe,
                              seed=int(rng.integers(2**31)),
                              size_skew=0.5,
                              centers=regions)
    rural = uniform_points(n_rural, universe, seed=int(rng.integers(2**31)))
    return np.vstack([metro, rural])
