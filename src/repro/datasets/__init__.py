"""Dataset and workload generators for the experiments of Section 6.

The paper evaluates on uniform data plus two real datasets from a
long-defunct archive: **GR** (23 268 street-segment centroids of
Greece) and **NA** (569 120 populated places of North America).  This
package generates the uniform data exactly and ships deterministic
synthetic stand-ins for GR and NA that reproduce their cardinality,
universe, and strong spatial skew (see DESIGN.md, "Substitutions").
"""

from repro.datasets.synthetic import uniform_points, gaussian_clusters
from repro.datasets.real_like import (
    GR_CARDINALITY,
    GR_UNIVERSE,
    NA_CARDINALITY,
    NA_UNIVERSE,
    make_greece_like,
    make_north_america_like,
)
from repro.datasets.workload import (
    data_following_queries,
    square_windows_for_area_fraction,
    window_side_for_area,
)

__all__ = [
    "uniform_points",
    "gaussian_clusters",
    "make_greece_like",
    "make_north_america_like",
    "GR_CARDINALITY",
    "GR_UNIVERSE",
    "NA_CARDINALITY",
    "NA_UNIVERSE",
    "data_following_queries",
    "square_windows_for_area_fraction",
    "window_side_for_area",
]
