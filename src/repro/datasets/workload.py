"""Query workloads.

The paper executes workloads of 500 queries "whose distribution
conforms to the distribution of the data objects", and square window
queries whose area ``qs`` is given as a fraction of the universe (for
uniform data) or in km² (for the real datasets).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry import Rect


def data_following_queries(points: np.ndarray, num: int, universe: Rect,
                           jitter: float = 0.01,
                           seed: Optional[int] = None) -> np.ndarray:
    """``num`` query locations distributed like the data.

    Each query is a data point plus Gaussian jitter of ``jitter`` times
    the universe width (so queries land *near* data, not on it), clamped
    to the universe.
    """
    if num < 0:
        raise ValueError("num must be non-negative")
    if len(points) == 0:
        raise ValueError("cannot follow an empty dataset")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(points), size=num)
    qs = np.asarray(points)[picks] + rng.normal(
        0.0, jitter * universe.width, size=(num, 2))
    np.clip(qs[:, 0], universe.xmin, universe.xmax, out=qs[:, 0])
    np.clip(qs[:, 1], universe.ymin, universe.ymax, out=qs[:, 1])
    return qs


def window_side_for_area(area: float) -> float:
    """Side length of a square window of the given area."""
    if area < 0:
        raise ValueError("area must be non-negative")
    return math.sqrt(area)


def square_windows_for_area_fraction(points: np.ndarray, num: int,
                                     universe: Rect, area_fraction: float,
                                     seed: Optional[int] = None) -> list:
    """``num`` square windows of area ``area_fraction * universe.area()``.

    Returns ``(focus, side)`` pairs with data-following foci (the shape
    used throughout Figures 29-35).
    """
    if not 0.0 < area_fraction <= 1.0:
        raise ValueError("area_fraction must be in (0, 1]")
    side = window_side_for_area(area_fraction * universe.area())
    foci = data_following_queries(points, num, universe, seed=seed)
    return [(tuple(f), side) for f in foci]
