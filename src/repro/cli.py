"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``dataset``   generate a dataset (uniform / gr / na) into a ``.npy`` file
``build``     bulk-load an R*-tree from a ``.npy`` file and save it
``query``     run knn / window / range queries against a saved tree
``simulate``  compare the client protocols over a random-waypoint trace
``service``   drive a simulated client fleet through the instrumented
              query service and dump its stats snapshot as JSON
              (``--metrics-port`` serves /metrics, /traces, /events live)
``obs``       talk to a running service's observability endpoint:
              scrape metrics, tail the event log, dump a span tree or a
              Perfetto-loadable Chrome trace
``demo``      a self-contained end-to-end demonstration
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.core import (
    KNNRequest,
    LocationServer,
    MobileClient,
    RangeRequest,
    WindowRequest,
)
from repro.datasets import (
    make_greece_like,
    make_north_america_like,
    uniform_points,
)
from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.kernel import BACKENDS, KERNELS, ExecutionConfig
from repro.mobility import random_waypoint, simulate_knn_protocols
from repro.service import ClientFleet, FleetConfig, QueryService
from repro.storage.serialize import load_tree, save_tree


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Location-based spatial queries (SIGMOD 2003 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser("dataset", help="generate a point dataset")
    p_dataset.add_argument("--kind", choices=("uniform", "gr", "na"),
                           default="uniform")
    p_dataset.add_argument("--n", type=int, default=10_000)
    p_dataset.add_argument("--seed", type=int, default=0)
    p_dataset.add_argument("--out", required=True)

    p_build = sub.add_parser("build", help="bulk-load and save an R*-tree")
    p_build.add_argument("--points", required=True, help=".npy point file")
    p_build.add_argument("--out", required=True, help="output tree file")
    p_build.add_argument("--capacity", type=int, default=None)
    p_build.add_argument("--fill", type=float, default=0.7)

    p_query = sub.add_parser("query", help="query a saved tree")
    p_query.add_argument("--tree", required=True)
    kind = p_query.add_subparsers(dest="query_kind", required=True)
    p_knn = kind.add_parser("knn")
    p_knn.add_argument("x", type=float)
    p_knn.add_argument("y", type=float)
    p_knn.add_argument("-k", type=int, default=1)
    p_win = kind.add_parser("window")
    p_win.add_argument("x", type=float)
    p_win.add_argument("y", type=float)
    p_win.add_argument("width", type=float)
    p_win.add_argument("height", type=float)
    p_rng = kind.add_parser("range")
    p_rng.add_argument("x", type=float)
    p_rng.add_argument("y", type=float)
    p_rng.add_argument("radius", type=float)
    p_rk = kind.add_parser("rknn", help="reverse kNN: objects that count "
                                        "the query among their k nearest")
    p_rk.add_argument("x", type=float)
    p_rk.add_argument("y", type=float)
    p_rk.add_argument("-k", type=int, default=1)
    p_pk = kind.add_parser("probknn", help="kNN under a location-"
                                           "uncertainty disk")
    p_pk.add_argument("x", type=float)
    p_pk.add_argument("y", type=float)
    p_pk.add_argument("uncertainty", type=float)
    p_pk.add_argument("-k", type=int, default=1)

    p_sim = sub.add_parser("simulate",
                           help="compare protocols over a moving client")
    p_sim.add_argument("--n", type=int, default=20_000)
    p_sim.add_argument("--steps", type=int, default=200)
    p_sim.add_argument("--speed", type=float, default=0.002)
    p_sim.add_argument("-k", type=int, default=1)
    p_sim.add_argument("--seed", type=int, default=0)

    p_svc = sub.add_parser(
        "service",
        help="run a simulated client fleet through the query service")
    p_svc.add_argument("--n", type=int, default=20_000,
                       help="dataset cardinality")
    p_svc.add_argument("--clients", type=int, default=16)
    p_svc.add_argument("--ticks", type=int, default=30)
    p_svc.add_argument("--threads", type=int, default=8)
    p_svc.add_argument("--seed", type=int, default=0)
    p_svc.add_argument("--speed", type=float, default=0.01)
    p_svc.add_argument("-k", type=int, default=3)
    p_svc.add_argument("--subscription-share", type=float, default=0.0,
                       help="fraction of clients running as continuous-"
                            "query subscribers (server push)")
    p_svc.add_argument("--knn-margin", type=int, default=8,
                       help="extra neighbours retained per kNN "
                            "subscription (the O(delta) patch budget)")
    p_svc.add_argument("--incremental-share", type=float, default=0.0,
                       help="fraction of clients using the delta protocol")
    p_svc.add_argument("--rknn-share", type=float, default=0.0,
                       help="fraction of clients issuing reverse-kNN "
                            "queries")
    p_svc.add_argument("--probknn-share", type=float, default=0.0,
                       help="fraction of clients issuing probabilistic "
                            "kNN queries")
    p_svc.add_argument("--probknn-uncertainty", type=float, default=0.02,
                       help="uncertainty-disk radius for probabilistic "
                            "kNN clients")
    p_svc.add_argument("--buffer-fraction", type=float, default=0.1,
                       help="LRU buffer size as a fraction of tree pages")
    p_svc.add_argument("--shards", type=int, default=1,
                       help="K builds a KxK scatter-gather shard grid "
                            "(1 = the paper's single R*-tree)")
    p_svc.add_argument("--replicas", type=int, default=1,
                       help="N fronts N independent server replicas with "
                            "consistent-hash routing and failover "
                            "(1 = unreplicated)")
    p_svc.add_argument("--replication-lag", type=int, default=0,
                       help="max pending mutations a replica may lag the "
                            "primary by (0 = synchronous replication)")
    p_svc.add_argument("--cache-capacity", type=int, default=0,
                       help="server-side validity-region cache size "
                            "(0 disables it)")
    p_svc.add_argument("--cache-grid", type=int, default=16,
                       help="resolution of the cache's region-MBR grid")
    p_svc.add_argument("--backend", choices=BACKENDS, default="thread",
                       help="shard fan-out backend (process keeps "
                            "pre-loaded per-shard trees in pool workers)")
    p_svc.add_argument("--kernel", choices=KERNELS, default="auto",
                       help="geometry kernel: scalar (paper-faithful "
                            "tree probing), soa (stdlib columnar), numpy "
                            "(vectorized columnar), auto (numpy if "
                            "available, else soa)")
    p_svc.add_argument("--fault-rate", type=float, default=0.0,
                       help="inject seeded page-read failures at this rate")
    p_svc.add_argument("--fault-latency-ms", type=float, default=0.0,
                       help="mean injected latency per faulty read (ms)")
    p_svc.add_argument("--deadline-ms", type=float, default=None,
                       help="per-query deadline budget (degraded regions "
                            "when exhausted)")
    p_svc.add_argument("--max-node-accesses", type=int, default=None,
                       help="per-query node-access budget")
    p_svc.add_argument("--retries", type=int, default=3,
                       help="max attempts per query (1 disables retrying)")
    p_svc.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures that trip the breaker "
                            "(0 disables it)")
    p_svc.add_argument("--max-stale", type=int, default=None,
                       help="staleness bound: client cache fallback on "
                            "server failure, and (with --replicas) the "
                            "mutations a serving replica may lag by")
    p_svc.add_argument("--admission-concurrency", type=int, default=0,
                       help="admission gate: max concurrent queries "
                            "(0 disables admission control)")
    p_svc.add_argument("--admission-queue", type=int, default=64,
                       help="admission gate: max queued queries beyond "
                            "the concurrency limit")
    p_svc.add_argument("--retry-budget", type=int, default=0,
                       help="cap total retries per rolling second across "
                            "all queries (0 = uncapped)")
    p_svc.add_argument("--json", action="store_true",
                       help="dump the full stats snapshot as JSON")
    p_svc.add_argument("--out", default=None,
                       help="write the snapshot JSON to a file")
    p_svc.add_argument("--metrics-port", type=int, default=None,
                       help="serve /metrics, /traces and /events on this "
                            "port while the fleet runs (0 = ephemeral)")
    p_svc.add_argument("--serve-seconds", type=float, default=0.0,
                       help="keep the observability endpoint up this long "
                            "after the run (with --metrics-port)")
    p_svc.add_argument("--event-sample", action="append", default=[],
                       metavar="CATEGORY=N",
                       help="keep 1-in-N events of CATEGORY (repeatable), "
                            "e.g. --event-sample query=10")
    p_svc.add_argument("--event-capacity", type=int, default=4096,
                       help="event-log ring size (0 = no-op sink)")
    p_svc.add_argument("--trace-out", default=None,
                       help="write the slowest retained trace as Chrome "
                            "trace_event JSON (Perfetto-loadable)")
    p_svc.add_argument("--slo", action="store_true",
                       help="attach the SLO engine (availability + latency "
                            "objectives) and let burn rates drive brownout")
    p_svc.add_argument("--slo-latency-ms", type=float, default=50.0,
                       help="latency-SLO threshold in ms (with --slo)")
    p_svc.add_argument("--profile", action="store_true",
                       help="enable phase profiling (/profile/flame)")
    p_svc.add_argument("--tail-sample", type=int, default=0, metavar="N",
                       help="tail-based trace sampling: always keep "
                            "slow/errored/degraded/SLO-violating traces, "
                            "1-in-N of the healthy rest (0 = off)")

    p_obs = sub.add_parser(
        "obs", help="inspect a running service's observability endpoint")
    p_obs.add_argument("--url", default="http://127.0.0.1:9464",
                       help="base URL of the observability endpoint")
    p_obs.add_argument("--flame", action="store_true",
                       help="fetch the collapsed-stack flamegraph "
                            "(/profile/flame) and exit")
    what = p_obs.add_subparsers(dest="obs_what", required=False)
    what.add_parser("metrics", help="scrape the Prometheus exposition")
    what.add_parser("snapshot", help="fetch the full stats snapshot")
    what.add_parser("slo", help="fetch burn rates, alerts and brownout")
    what.add_parser("profile", help="fetch the phase-profile table")
    p_tail = what.add_parser("tail", help="tail the structured event log")
    p_tail.add_argument("-n", type=int, default=50)
    p_tail.add_argument("--category", default=None)
    p_tail.add_argument("--trace-id", default=None)
    p_trace = what.add_parser("trace", help="dump one trace's span tree")
    p_trace.add_argument("trace_id")
    p_trace.add_argument("--chrome", action="store_true",
                         help="emit Chrome trace_event JSON instead")
    p_trace.add_argument("--out", default=None,
                         help="write to a file instead of stdout")

    sub.add_parser("demo", help="self-contained demonstration")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "dataset": _cmd_dataset,
        "build": _cmd_build,
        "query": _cmd_query,
        "simulate": _cmd_simulate,
        "service": _cmd_service,
        "obs": _cmd_obs,
        "demo": _cmd_demo,
    }[args.command]
    return handler(args)


def _cmd_dataset(args) -> int:
    if args.kind == "uniform":
        pts = uniform_points(args.n, seed=args.seed)
    elif args.kind == "gr":
        pts = make_greece_like(n=args.n, seed=args.seed or 2003)
    else:
        pts = make_north_america_like(n=args.n, seed=args.seed or 1958)
    np.save(args.out, pts)
    print(f"wrote {len(pts)} points to {args.out}")
    return 0


def _cmd_build(args) -> int:
    pts = np.load(args.points)
    tree = bulk_load_str(pts, capacity=args.capacity, fill=args.fill)
    written = save_tree(tree, args.out)
    print(f"built R*-tree: {len(tree)} points, height {tree.height}, "
          f"{tree.num_pages} pages; wrote {written} bytes to {args.out}")
    return 0


def _cmd_query(args) -> int:
    tree = load_tree(args.tree)
    server = LocationServer(tree)
    if args.query_kind == "knn":
        resp = server.answer(KNNRequest((args.x, args.y), k=args.k))
        for e in resp.neighbors:
            print(f"{e.oid}\t{e.x:.6g}\t{e.y:.6g}")
        poly = resp.region.polygon()
        print(f"# validity region: {poly.num_edges} edges, "
              f"area {poly.area():.6g}, "
              f"payload {resp.transfer_bytes()} bytes")
    elif args.query_kind == "window":
        resp = server.answer(WindowRequest((args.x, args.y),
                                           args.width, args.height))
        for e in resp.result:
            print(f"{e.oid}\t{e.x:.6g}\t{e.y:.6g}")
        r = resp.detail.conservative_region
        print(f"# validity rect: [{r.xmin:.6g}, {r.ymin:.6g}, "
              f"{r.xmax:.6g}, {r.ymax:.6g}]")
    elif args.query_kind == "rknn":
        from repro.core.rknn import RKNNRequest
        resp = server.answer(RKNNRequest((args.x, args.y), k=args.k))
        for e in resp.result:
            print(f"{e.oid}\t{e.x:.6g}\t{e.y:.6g}")
        print(f"# {len(resp.result)} reverse neighbours from "
              f"{len(resp.detail.candidates)} candidates, "
              f"safety radius {resp.detail.safety_radius:.6g}")
    elif args.query_kind == "probknn":
        from repro.core.probknn import ProbKNNRequest
        resp = server.answer(ProbKNNRequest(
            (args.x, args.y), uncertainty=args.uncertainty, k=args.k))
        detail = resp.detail
        for e, p, band in zip(resp.result, detail.probabilities,
                              detail.bands):
            print(f"{e.oid}\t{e.x:.6g}\t{e.y:.6g}\t{p:.3f}\t{band}")
        print(f"# validity annulus radius: {resp.region.outer:.6g}")
    else:
        resp = server.answer(RangeRequest((args.x, args.y), args.radius))
        for e in resp.result:
            print(f"{e.oid}\t{e.x:.6g}\t{e.y:.6g}")
        print(f"# validity disk radius: {resp.detail.validity_radius:.6g}")
    return 0


def _cmd_simulate(args) -> int:
    tree = bulk_load_str(uniform_points(args.n, seed=args.seed))
    trajectory = random_waypoint(Rect(0, 0, 1, 1), args.steps,
                                 speed=args.speed, seed=args.seed)
    print(f"{'protocol':<18} {'updates':>8} {'queries':>8} "
          f"{'saving':>8} {'bytes':>10}")
    for report in simulate_knn_protocols(tree, trajectory, k=args.k):
        print(report.row())
    return 0


def _server_trees(server):
    """Every R*-tree a server owns, across replicas and shards."""
    replicas = getattr(server, "replicas", None)
    if replicas is not None:  # replica set: fault every member's disks
        return [t for rep in replicas for t in _server_trees(rep.server)]
    shards = getattr(server, "shards", None)
    if shards is not None:
        return [shard.server.tree for shard in shards]
    return [server.tree]


def _cmd_service(args) -> int:
    import time as _time

    from repro.core.api import QueryBudget
    from repro.obs import (
        EventLog,
        ObservabilityServer,
        SLOConfig,
        SLOEngine,
        write_chrome_trace,
    )
    from repro.service import (
        AdmissionConfig,
        BreakerConfig,
        CacheConfig,
        ContinuousConfig,
        ReplicaConfig,
        ResilienceConfig,
        RetryBudgetConfig,
        RetryPolicy,
        TailSamplingConfig,
        build_service,
    )
    from repro.storage import FaultPlan, inject_faults

    sample = {}
    for spec in args.event_sample:
        category, _, n = spec.partition("=")
        if not n.isdigit() or int(n) < 1:
            print(f"bad --event-sample {spec!r} (want CATEGORY=N)",
                  file=sys.stderr)
            return 2
        sample[category] = int(n)

    budget = None
    if args.deadline_ms is not None or args.max_node_accesses is not None:
        budget = QueryBudget(deadline_ms=args.deadline_ms,
                             max_node_accesses=args.max_node_accesses)
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
        breaker=(BreakerConfig(failure_threshold=args.breaker_threshold)
                 if args.breaker_threshold > 0 else None),
        default_budget=budget,
        seed=args.seed,
        retry_budget=(RetryBudgetConfig(max_retries=args.retry_budget)
                      if args.retry_budget > 0 else None),
        admission=(AdmissionConfig(max_concurrency=args.admission_concurrency,
                                   max_queue_depth=args.admission_queue)
                   if args.admission_concurrency > 0 else None),
    )
    cache = None
    if args.cache_capacity > 0:
        cache = CacheConfig(capacity=args.cache_capacity,
                            grid=args.cache_grid)
    replica = None
    if args.replicas > 1:
        replica = ReplicaConfig(replication_lag=args.replication_lag,
                                default_max_stale=args.max_stale)
    slo = None
    if args.slo:
        slo = SLOEngine([
            SLOConfig(name="availability", objective="availability",
                      target=0.999),
            SLOConfig(name="latency", objective="latency", target=0.99,
                      threshold_ms=args.slo_latency_ms),
        ])
    tail = None
    if args.tail_sample > 0:
        tail = TailSamplingConfig(keep_1_in=args.tail_sample,
                                  slow_ms=args.slo_latency_ms)
    service = build_service(
        uniform_points(args.n, seed=args.seed),
        shards=args.shards,
        replicas=args.replicas,
        replica=replica,
        execution=ExecutionConfig(backend=args.backend, kernel=args.kernel),
        cache=cache,
        buffer_fraction=args.buffer_fraction,
        resilience=resilience,
        events=EventLog(capacity=args.event_capacity, sample=sample),
        continuous=ContinuousConfig(margin=max(1, args.knn_margin)),
        slo=slo,
        tail=tail,
        profile=args.profile,
    )
    server = service.server
    obs = None
    if args.metrics_port is not None:
        obs = ObservabilityServer(service, port=args.metrics_port).start()
        print(f"observability endpoint: {obs.url} "
              f"(/metrics, /traces, /events, /snapshot, /slo, "
              f"/profile/flame, /healthz, /readyz)")
    faulty = args.fault_rate > 0.0 or args.fault_latency_ms > 0.0
    if faulty:
        plan = FaultPlan(
            seed=args.seed,
            read_failure_rate=args.fault_rate,
            latency_mean_s=args.fault_latency_ms / 1e3,
            latency_rate=1.0 if args.fault_latency_ms > 0.0 else 0.0,
        )
        for tree in _server_trees(server):
            inject_faults(tree, plan)
    base = FleetConfig()
    shares = (base.knn_share + base.window_share
              + args.rknn_share + args.probknn_share)
    if shares > 1.0:
        print(f"--rknn-share + --probknn-share leave the query mix "
              f"over-subscribed ({shares:.2f} > 1 with the default "
              f"knn/window shares)", file=sys.stderr)
        return 2
    fleet = ClientFleet(service, FleetConfig(
        num_clients=args.clients,
        rknn_share=args.rknn_share,
        probknn_share=args.probknn_share,
        probknn_uncertainty=args.probknn_uncertainty,
        k=args.k,
        speed=args.speed,
        incremental_share=args.incremental_share,
        subscription_share=args.subscription_share,
        seed=args.seed,
        max_stale=args.max_stale,
        continue_on_error=faulty,
    ))
    report = fleet.run(args.ticks, max_workers=args.threads)
    stats = report.stats
    print(f"{report.num_clients} clients x {report.ticks} ticks "
          f"({args.threads} threads): {stats.server_queries} server queries, "
          f"{stats.cache_answers} cache answers "
          f"({report.cache_hit_ratio:.0%} saved), "
          f"{stats.bytes_received} bytes on the wire")
    cache = report.snapshot.get("cache")
    if cache:
        print(f"  server cache: {cache['hits']} hits / "
              f"{cache['hits'] + cache['misses']} probes "
              f"({cache['hit_ratio']:.0%} hit ratio), "
              f"{cache['size']}/{cache['capacity']} entries, "
              f"{cache['evictions']} evictions")
    shards = report.snapshot.get("shards")
    if shards:
        accesses = [s["node_accesses"] for s in shards]
        print(f"  shards: {len(shards)} live, "
              f"node accesses min {min(accesses)} / "
              f"max {max(accesses)} / total {sum(accesses)}")
    continuous = report.snapshot.get("continuous")
    if continuous:
        print(f"  subscriptions: {continuous['subscriptions']} live "
              f"({continuous['broken']} broken), "
              f"{continuous['pushes']} pushes "
              f"({continuous['patches']} patches / "
              f"{continuous['invalidates']} invalidations, "
              f"{continuous['coalesced']} coalesced), moves "
              f"{continuous['moves_patched']} patched / "
              f"{continuous['moves_refetched']} re-queried")
    replica_set = report.snapshot.get("replica_set")
    if replica_set:
        rows = replica_set["replicas"]
        states = ", ".join(f"r{r['rid']}:{r['state']}" for r in rows)
        print(f"  replicas: {len(rows)} ({states}), "
              f"{replica_set['failovers']} failovers, "
              f"{replica_set['stale_served']} stale served, "
              f"{replica_set['stale_skips']} stale skips")
    admission = report.snapshot.get("admission")
    if admission:
        rejected = (admission["rejected_queue_full"]
                    + admission["rejected_deadline"]
                    + admission["rejected_timeout"])
        print(f"  admission: {admission['accepted']} accepted, "
              f"{rejected} rejected, level {admission['level']} "
              f"(load {admission['load_factor']:.2f})")
    res = report.snapshot["resilience"]
    if faulty or res["retries"] or res["degraded"] or stats.stale_answers:
        breaker = res["breaker"] or {}
        print(f"  resilience: {res['retries']} retries, "
              f"{res['errors']} errors, {res['degraded']} degraded "
              f"({res['degraded_ratio']:.1%}), "
              f"{stats.stale_answers} stale cache answers, "
              f"{report.errors} client errors, "
              f"breaker {breaker.get('state', 'off')} "
              f"({breaker.get('trips', 0)} trips, "
              f"{breaker.get('recoveries', 0)} recoveries)")
    for kind in sorted(report.mix):
        h = service.metrics.histogram_merged("service.latency_ms",
                                             query_kind=kind)
        if h["count"]:
            print(f"  {kind:<7} p50 {h['p50']:.2f} ms   "
                  f"p95 {h['p95']:.2f} ms   p99 {h['p99']:.2f} ms   "
                  f"({h['count']} queries)")
    slo_snap = report.snapshot.get("slo")
    if slo_snap:
        for name, row in sorted(slo_snap["slos"].items()):
            burns = ", ".join(f"{w}={b:.2f}"
                              for w, b in sorted(row["burn_rate"].items()))
            print(f"  slo {name}: burn [{burns}], budget "
                  f"{row['budget_remaining']:.1%} left, "
                  f"fast_alert={row['fast_alert']}, "
                  f"brownout={slo_snap['brownout']}")
    ev = service.events.stats()
    if ev["emitted"]:
        per_cat = ", ".join(f"{c}={n}"
                            for c, n in sorted(ev["emitted"].items()))
        print(f"  events: {sum(ev['emitted'].values())} emitted "
              f"({per_cat}), {ev['retained']} retained")
    if args.trace_out:
        traces = service.recent_traces()
        if traces:
            slowest = max(traces, key=lambda t: t.duration_ms)
            write_chrome_trace(slowest, args.trace_out)
            print(f"wrote Chrome trace of {slowest.trace_id} "
                  f"({slowest.kind}, {slowest.duration_ms:.2f} ms) to "
                  f"{args.trace_out}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.snapshot, fh, indent=2, sort_keys=True)
        print(f"wrote snapshot to {args.out}")
    elif args.json:
        print(json.dumps(report.snapshot, indent=2, sort_keys=True))
    if obs is not None:
        if args.serve_seconds > 0:
            print(f"serving for {args.serve_seconds:g}s "
                  "(Ctrl-C to stop early) ...")
            try:
                _time.sleep(args.serve_seconds)
            except KeyboardInterrupt:
                pass
        obs.stop()
    close = getattr(server, "close", None)
    if close is not None:  # sharded servers own worker pools
        close()
    return 0


def _cmd_obs(args) -> int:
    from urllib.error import URLError
    from urllib.parse import quote, urlencode
    from urllib.request import urlopen

    def fetch(path: str, params: Optional[dict] = None) -> str:
        url = args.url.rstrip("/") + path
        if params:
            url += "?" + urlencode(
                {k: v for k, v in params.items() if v is not None})
        try:
            with urlopen(url, timeout=10.0) as resp:
                return resp.read().decode("utf-8")
        except URLError as exc:
            print(f"cannot reach {url}: {exc}", file=sys.stderr)
            raise SystemExit(1)

    if args.obs_what is None:
        if not args.flame:
            print("repro obs: give a subcommand (metrics, snapshot, slo, "
                  "profile, tail, trace) or --flame", file=sys.stderr)
            return 2
        sys.stdout.write(fetch("/profile/flame"))
    elif args.obs_what == "metrics":
        sys.stdout.write(fetch("/metrics"))
    elif args.obs_what == "snapshot":
        sys.stdout.write(fetch("/snapshot"))
    elif args.obs_what == "slo":
        sys.stdout.write(fetch("/slo"))
    elif args.obs_what == "profile":
        sys.stdout.write(fetch("/profile"))
    elif args.obs_what == "tail":
        sys.stdout.write(fetch("/events", {
            "n": args.n, "category": args.category,
            "trace_id": args.trace_id}))
    else:  # trace
        path = f"/traces/{quote(args.trace_id)}"
        if args.chrome:
            path += "/chrome"
        body = fetch(path)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(body)
            print(f"wrote {path} to {args.out}")
        else:
            sys.stdout.write(body)
    return 0


def _cmd_demo(args) -> int:
    server = LocationServer.from_points(uniform_points(10_000, seed=1))
    client = MobileClient(server)
    pos = [0.5, 0.5]
    for _ in range(100):
        client.knn(tuple(pos), k=1)
        pos[0] += 0.0005
    stats = client.stats
    print(f"100 position updates, {stats.server_queries} server queries "
          f"({stats.query_saving:.0%} answered from validity regions)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
