"""Convex polygons with half-plane clipping.

Validity regions of (k)NN queries are intersections of half-planes.  The
paper's algorithm maintains the current candidate region explicitly as a
convex polygon whose vertices carry "confirmed" flags; each newly
discovered influence object clips the polygon by one more bisector
half-plane.  :class:`ConvexPolygon` provides exactly that operation
(a single-plane Sutherland–Hodgman clip) plus the measures the
experiments report (area, number of edges).

Vertices are stored in counter-clockwise order.  Clipping preserves the
exact coordinates of surviving vertices, so callers may track vertex
identity across clips by coordinate equality.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class ConvexPolygon:
    """An immutable convex polygon (possibly empty)."""

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence, dedupe_eps: float = 0.0):
        """Build from CCW vertices.

        ``dedupe_eps`` > 0 merges consecutive vertices closer than the
        tolerance (useful after clipping, where intersection points can
        coincide with surviving vertices).
        """
        pts = [Point(float(v[0]), float(v[1])) for v in vertices]
        if dedupe_eps > 0.0:
            pts = _dedupe(pts, dedupe_eps)
        self._vertices: Tuple[Point, ...] = tuple(pts)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ConvexPolygon":
        return cls(())

    @classmethod
    def from_rect(cls, rect: Rect) -> "ConvexPolygon":
        return cls(tuple(rect.corners()))

    @classmethod
    def from_halfplanes(cls, halfplanes: Sequence[HalfPlane], universe: Rect,
                        eps: float = 0.0) -> "ConvexPolygon":
        """Intersection of half-planes, clipped to a bounding universe."""
        poly = cls.from_rect(universe)
        for hp in halfplanes:
            poly = poly.clip(hp, eps=eps)
            if poly.is_empty:
                break
        return poly

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Point, ...]:
        return self._vertices

    @property
    def num_edges(self) -> int:
        """Edge count; 0 for degenerate (< 3 vertices) polygons."""
        return len(self._vertices) if len(self._vertices) >= 3 else 0

    @property
    def is_empty(self) -> bool:
        """True when the polygon has no interior (fewer than 3 vertices)."""
        return len(self._vertices) < 3

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConvexPolygon({list(self._vertices)!r})"

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Polygon area by the shoelace formula (0 for degenerate)."""
        verts = self._vertices
        if len(verts) < 3:
            return 0.0
        total = 0.0
        for i, (x1, y1) in enumerate(verts):
            x2, y2 = verts[(i + 1) % len(verts)]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def perimeter(self) -> float:
        verts = self._vertices
        if len(verts) < 2:
            return 0.0
        return sum(verts[i].distance_to(verts[(i + 1) % len(verts)])
                   for i in range(len(verts)))

    def centroid(self) -> Point:
        """Area centroid (vertex mean for degenerate polygons)."""
        verts = self._vertices
        if not verts:
            raise ValueError("empty polygon has no centroid")
        if len(verts) < 3:
            return Point(sum(v.x for v in verts) / len(verts),
                         sum(v.y for v in verts) / len(verts))
        cx = cy = 0.0
        twice_area = 0.0
        for i, (x1, y1) in enumerate(verts):
            x2, y2 = verts[(i + 1) % len(verts)]
            cross = x1 * y2 - x2 * y1
            twice_area += cross
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        if twice_area == 0.0:
            return Point(sum(v.x for v in verts) / len(verts),
                         sum(v.y for v in verts) / len(verts))
        return Point(cx / (3.0 * twice_area), cy / (3.0 * twice_area))

    def bounding_rect(self) -> Rect:
        if not self._vertices:
            raise ValueError("empty polygon has no bounding rectangle")
        return Rect.from_points(self._vertices)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains(self, p, eps: float = 0.0) -> bool:
        """Closed point-in-convex-polygon test with tolerance ``eps``.

        ``eps`` is an absolute distance: points within ``eps`` outside an
        edge still count as inside (use a negative ``eps`` for a strict
        interior test).
        """
        verts = self._vertices
        if len(verts) < 3:
            return False
        for i, (x1, y1) in enumerate(verts):
            x2, y2 = verts[(i + 1) % len(verts)]
            ex, ey = x2 - x1, y2 - y1
            # CCW orientation: interior lies to the left of each edge.
            cross = ex * (p[1] - y1) - ey * (p[0] - x1)
            norm = math.hypot(ex, ey)
            if norm == 0.0:
                continue
            if cross / norm < -eps:
                return False
        return True

    # ------------------------------------------------------------------
    # clipping
    # ------------------------------------------------------------------
    def clip(self, hp: HalfPlane, eps: float = 0.0) -> "ConvexPolygon":
        """Intersect with the half-plane ``hp``.

        Vertices within ``eps`` of the boundary are treated as inside,
        which keeps repeated clipping numerically stable.  Surviving
        vertices keep their exact coordinates.
        """
        verts = self._vertices
        if len(verts) < 3:
            return ConvexPolygon.empty()
        out: List[Point] = []
        dists = [hp.signed_distance(v) for v in verts]
        for i, v in enumerate(verts):
            j = (i + 1) % len(verts)
            w = verts[j]
            dv, dw = dists[i], dists[j]
            v_in = dv <= eps
            w_in = dw <= eps
            if v_in:
                out.append(v)
                if not w_in:
                    out.append(_edge_plane_intersection(v, w, dv, dw))
            elif w_in:
                out.append(_edge_plane_intersection(v, w, dv, dw))
        dedupe = eps if eps > 0.0 else 1e-12
        result = ConvexPolygon(out, dedupe_eps=dedupe)
        if result.is_empty:
            return ConvexPolygon.empty()
        return result


def _edge_plane_intersection(v: Point, w: Point, dv: float, dw: float) -> Point:
    """Intersection of segment ``vw`` with the boundary line.

    ``dv``/``dw`` are signed distances of the endpoints, known to have
    opposite signs (up to tolerance handled by the caller).
    """
    denom = dv - dw
    if denom == 0.0:
        # Segment parallel to (and on) the boundary: either endpoint works.
        return v
    t = dv / denom
    t = min(max(t, 0.0), 1.0)
    return Point(v.x + t * (w.x - v.x), v.y + t * (w.y - v.y))


def _dedupe(pts: List[Point], eps: float) -> List[Point]:
    """Drop consecutive (cyclically) near-duplicate vertices."""
    if not pts:
        return pts
    result: List[Point] = []
    for p in pts:
        if result and abs(p.x - result[-1].x) <= eps and abs(p.y - result[-1].y) <= eps:
            continue
        result.append(p)
    while len(result) > 1 and (abs(result[0].x - result[-1].x) <= eps
                               and abs(result[0].y - result[-1].y) <= eps):
        result.pop()
    return result
