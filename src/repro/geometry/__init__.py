"""Planar geometry kernel used by every other subsystem.

The kernel is deliberately free of any indexing or storage knowledge: it
provides points, axis-aligned rectangles, half-planes, perpendicular
bisectors, convex polygons with half-plane clipping, and rectilinear
regions (a rectangle minus a set of rectangles).  These are exactly the
primitives needed by the validity-region algorithms of the paper:

* nearest-neighbour validity regions are intersections of half-planes
  bounded by perpendicular bisectors (order-k Voronoi cells), maintained
  as :class:`ConvexPolygon` instances;
* window-query validity regions are intersections / differences of
  Minkowski rectangles, maintained as :class:`Rect` /
  :class:`RectilinearRegion` instances.
"""

from repro.geometry.point import Point, distance, distance_sq, midpoint
from repro.geometry.rect import Rect
from repro.geometry.halfplane import HalfPlane, bisector_halfplane, perpendicular_bisector
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rectilinear import RectilinearRegion

__all__ = [
    "Point",
    "Rect",
    "HalfPlane",
    "ConvexPolygon",
    "RectilinearRegion",
    "distance",
    "distance_sq",
    "midpoint",
    "bisector_halfplane",
    "perpendicular_bisector",
]
