"""Points and elementary point arithmetic.

``Point`` is a ``NamedTuple`` so that instances are immutable, hashable,
cheap, and unpack naturally (``x, y = p``).  All distance helpers accept
either ``Point`` instances or plain ``(x, y)`` tuples.
"""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """An immutable point in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other[0], self.y - other[1])

    def distance_sq_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the sqrt)."""
        dx = self.x - other[0]
        dy = self.y - other[1]
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point") -> "Point":
        """Unit direction vector from this point towards ``other``.

        Raises :class:`ValueError` for coincident points, because a query
        aimed "towards" its own location has no defined direction.
        """
        dx = other[0] - self.x
        dy = other[1] - self.y
        norm = math.hypot(dx, dy)
        if norm == 0.0:
            raise ValueError("direction undefined for coincident points")
        return Point(dx / norm, dy / norm)


def distance(a, b) -> float:
    """Euclidean distance between two point-likes."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def distance_sq(a, b) -> float:
    """Squared Euclidean distance between two point-likes."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def midpoint(a, b) -> Point:
    """Midpoint of the segment ``ab``."""
    return Point((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
