"""Half-planes and perpendicular bisectors.

A half-plane is stored in normalized implicit form ``a*x + b*y <= c``
with ``(a, b)`` a unit vector, so that ``signed_distance`` is a true
Euclidean distance and tolerance parameters have a geometric meaning.

The central construction of the paper is :func:`bisector_halfplane`:
given the query's nearest neighbour ``o`` and another data point ``other``,
the set of locations that remain closer to ``o`` is the half-plane bounded
by the perpendicular bisector of ``o`` and ``other`` that contains ``o``.
The validity region of a (k)NN query is an intersection of such
half-planes (paper, Section 3.1, Observation).
"""

from __future__ import annotations

import math
from typing import NamedTuple, Tuple

from repro.geometry.point import Point, midpoint


class HalfPlane(NamedTuple):
    """The closed half-plane ``a*x + b*y <= c`` with ``(a, b)`` unit length."""

    a: float
    b: float
    c: float

    @classmethod
    def make(cls, a: float, b: float, c: float) -> "HalfPlane":
        """Build a half-plane, normalizing ``(a, b)`` to unit length."""
        norm = math.hypot(a, b)
        if norm == 0.0:
            raise ValueError("half-plane normal must be non-zero")
        return cls(a / norm, b / norm, c / norm)

    def signed_distance(self, p) -> float:
        """Euclidean distance of ``p`` from the boundary line.

        Negative inside the half-plane, positive outside.
        """
        return self.a * p[0] + self.b * p[1] - self.c

    def contains(self, p, eps: float = 0.0) -> bool:
        """Closed containment with tolerance ``eps``."""
        return self.signed_distance(p) <= eps

    def boundary_points(self, span: float = 1.0) -> Tuple[Point, Point]:
        """Two distinct points on the boundary line, ``2*span`` apart.

        Useful for plotting and for constructing explicit bisector segments
        in tests.
        """
        # Foot of the perpendicular from the origin, then walk along the line.
        foot = Point(self.a * self.c, self.b * self.c)
        direction = Point(-self.b, self.a)
        return (
            Point(foot.x - span * direction.x, foot.y - span * direction.y),
            Point(foot.x + span * direction.x, foot.y + span * direction.y),
        )

    def flipped(self) -> "HalfPlane":
        """The complementary half-plane (same boundary, other side)."""
        return HalfPlane(-self.a, -self.b, -self.c)


def perpendicular_bisector(p, q) -> HalfPlane:
    """The half-plane of points at least as close to ``p`` as to ``q``.

    The boundary is the perpendicular bisector of segment ``pq``; the
    half-plane contains ``p``.  Raises :class:`ValueError` for coincident
    points (their bisector is undefined).
    """
    ax = q[0] - p[0]
    ay = q[1] - p[1]
    if ax == 0.0 and ay == 0.0:
        raise ValueError("bisector undefined for coincident points")
    mid = midpoint(p, q)
    # Points x with (q - p) . x <= (q - p) . mid are closer to p.
    return HalfPlane.make(ax, ay, ax * mid.x + ay * mid.y)


def bisector_halfplane(kept, other) -> HalfPlane:
    """Alias of :func:`perpendicular_bisector` with intent-revealing names.

    Returns the half-plane within which ``kept`` stays at least as close
    to the (moving) query as ``other`` — one constraint of a (k)NN
    validity region.
    """
    return perpendicular_bisector(kept, other)
