"""Rectilinear regions: a base rectangle minus a set of hole rectangles.

This is the *exact* validity region of a location-based window query
(paper, Section 4): the focus of the window may roam inside the
intersection of the inner objects' Minkowski rectangles (the base) as
long as it does not enter any outer object's Minkowski rectangle (the
holes).  The paper ships a conservative rectangle instead; this class is
used as ground truth in tests and to quantify how much area the
conservative approximation gives up.

Holes are clipped to the base and holes contained in other holes are
dropped at construction: windows overhanging the universe boundary can
produce thousands of deeply nested Minkowski holes, which dominance
pruning collapses to a handful.  The area computation is a coordinate-
compressed sweep using a 2-D difference array, O(H + nx*ny) for H
surviving holes.
"""

from __future__ import annotations

from typing import List, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the stdlib CI leg
    np = None

from repro.geometry.rect import Rect


class RectilinearRegion:
    """``base`` minus the union of ``holes`` (all axis-aligned)."""

    __slots__ = ("_base", "_holes")

    def __init__(self, base: Rect, holes: Sequence[Rect] = ()):
        base.validate()
        self._base = base
        # Only the part of each hole overlapping the base matters.
        clipped = []
        for hole in holes:
            inter = base.intersection(hole)
            if inter is not None and inter.area() > 0.0:
                clipped.append(inter)
        self._holes: List[Rect] = _prune_contained(clipped)

    @property
    def base(self) -> Rect:
        return self._base

    @property
    def holes(self) -> List[Rect]:
        return list(self._holes)

    def contains(self, p) -> bool:
        """True when ``p`` is in the base and not strictly inside a hole.

        Hole boundaries count as inside the region: crossing the boundary
        is the instant the window result changes, and validity is defined
        on the closed region (consistent with the paper's closed
        Minkowski-region semantics).
        """
        if not self._base.contains_point(p):
            return False
        return not any(h.contains_point_open(p) for h in self._holes)

    def area(self) -> float:
        """Exact area via a coordinate-compressed difference-array sweep."""
        base = self._base
        if base.area() == 0.0:
            return 0.0
        if not self._holes:
            return base.area()
        if np is None:
            return self._area_sweep_py()
        xs = np.unique(np.array(
            [b for h in self._holes for b in (h.xmin, h.xmax)]))
        ys = np.unique(np.array(
            [b for h in self._holes for b in (h.ymin, h.ymax)]))
        diff = np.zeros((len(xs), len(ys)))
        for h in self._holes:
            i0 = np.searchsorted(xs, h.xmin)
            i1 = np.searchsorted(xs, h.xmax)
            j0 = np.searchsorted(ys, h.ymin)
            j1 = np.searchsorted(ys, h.ymax)
            diff[i0, j0] += 1.0
            if i1 < len(xs):
                diff[i1, j0] -= 1.0
            if j1 < len(ys):
                diff[i0, j1] -= 1.0
            if i1 < len(xs) and j1 < len(ys):
                diff[i1, j1] += 1.0
        coverage = diff.cumsum(axis=0).cumsum(axis=1)[:-1, :-1] > 0.0
        cell_areas = np.outer(np.diff(xs), np.diff(ys))
        covered = float((cell_areas * coverage).sum())
        return base.area() - covered

    def _area_sweep_py(self) -> float:
        """The same coordinate-compressed sweep, stdlib-only (the
        fallback when numpy is unavailable)."""
        base = self._base
        xs = sorted({b for h in self._holes for b in (h.xmin, h.xmax)})
        ys = sorted({b for h in self._holes for b in (h.ymin, h.ymax)})
        covered = 0.0
        for i in range(len(xs) - 1):
            cx = (xs[i] + xs[i + 1]) / 2.0
            width = xs[i + 1] - xs[i]
            for j in range(len(ys) - 1):
                cy = (ys[j] + ys[j + 1]) / 2.0
                if any(h.xmin <= cx <= h.xmax and h.ymin <= cy <= h.ymax
                       for h in self._holes):
                    covered += width * (ys[j + 1] - ys[j])
        return base.area() - covered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RectilinearRegion(base={self._base!r}, holes={self._holes!r})"


def _prune_contained(holes: List[Rect]) -> List[Rect]:
    """Drop duplicate holes and holes fully contained in another hole."""
    if len(holes) < 2:
        return holes
    ordered = sorted(set(holes), key=lambda h: -h.area())
    kept: List[Rect] = []
    for hole in ordered:
        if not any(other.contains_rect(hole) for other in kept):
            kept.append(hole)
    return kept
