"""Axis-aligned rectangles (minimum bounding rectangles).

``Rect`` doubles as the MBR type of the R*-tree and as the Minkowski
region of the window-query validity machinery: for a window with extents
``(wx, wy)`` and a data point ``p``, the set of focus positions for which
the window contains ``p`` is exactly ``Rect.around(p, wx, wy)``.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple, Optional, Sequence

from repro.geometry.point import Point


class Rect(NamedTuple):
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Sequence) -> "Rect":
        """The MBR of a non-empty collection of point-likes."""
        if not points:
            raise ValueError("cannot bound an empty point set")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def from_rects(cls, rects: Sequence["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        if not rects:
            raise ValueError("cannot bound an empty rectangle set")
        return cls(
            min(r.xmin for r in rects),
            min(r.ymin for r in rects),
            max(r.xmax for r in rects),
            max(r.ymax for r in rects),
        )

    @classmethod
    def around(cls, center, width: float, height: float) -> "Rect":
        """Rectangle of extents ``width x height`` centred at ``center``."""
        if width < 0 or height < 0:
            raise ValueError("extents must be non-negative")
        cx, cy = center[0], center[1]
        return cls(cx - width / 2.0, cy - height / 2.0,
                   cx + width / 2.0, cy + height / 2.0)

    def validate(self) -> "Rect":
        """Return ``self`` after checking ``min <= max`` on both axes."""
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"degenerate rectangle {self!r}")
        return self

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def is_empty(self) -> bool:
        """True when the rectangle contains no points at all."""
        return self.xmin > self.xmax or self.ymin > self.ymax

    def area(self) -> float:
        if self.is_empty:
            return 0.0
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter, the R*-tree split quality measure."""
        return self.width + self.height

    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> Iterator[Point]:
        """The four corners in counter-clockwise order."""
        yield Point(self.xmin, self.ymin)
        yield Point(self.xmax, self.ymin)
        yield Point(self.xmax, self.ymax)
        yield Point(self.xmin, self.ymax)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, p, eps: float = 0.0) -> bool:
        """Closed containment, optionally inflated by ``eps``."""
        return (self.xmin - eps <= p[0] <= self.xmax + eps
                and self.ymin - eps <= p[1] <= self.ymax + eps)

    def contains_point_open(self, p, eps: float = 0.0) -> bool:
        """Open (strict-interior) containment, optionally deflated by ``eps``."""
        return (self.xmin + eps < p[0] < self.xmax - eps
                and self.ymin + eps < p[1] < self.ymax - eps)

    def contains_rect(self, other: "Rect") -> bool:
        return (self.xmin <= other.xmin and other.xmax <= self.xmax
                and self.ymin <= other.ymin and other.ymax <= self.ymax)

    def intersects(self, other: "Rect") -> bool:
        return not (other.xmin > self.xmax or other.xmax < self.xmin
                    or other.ymin > self.ymax or other.ymax < self.ymin)

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or ``None`` when disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area()

    def union(self, other: "Rect") -> "Rect":
        return Rect(min(self.xmin, other.xmin), min(self.ymin, other.ymin),
                    max(self.xmax, other.xmax), max(self.ymax, other.ymax))

    def extended(self, p) -> "Rect":
        """The MBR of this rectangle and an extra point."""
        return Rect(min(self.xmin, p[0]), min(self.ymin, p[1]),
                    max(self.xmax, p[0]), max(self.ymax, p[1]))

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (ChooseSubtree metric)."""
        return self.union(other).area() - self.area()

    def inflated(self, dx: float, dy: float) -> "Rect":
        """Minkowski expansion by ``dx`` / ``dy`` on each side.

        Negative values shrink the rectangle; the result may be empty.
        """
        return Rect(self.xmin - dx, self.ymin - dy, self.xmax + dx, self.ymax + dy)

    # ------------------------------------------------------------------
    # uniform grids
    # ------------------------------------------------------------------
    def grid_index(self, p, nx: int, ny: int) -> "tuple[int, int]":
        """The ``(ix, iy)`` cell of an ``nx x ny`` uniform grid over this
        rectangle that contains ``p``.

        Points outside the rectangle are clamped to the border cells, so
        every point maps to a valid cell — what both the validity-region
        cache and the shard router need for out-of-universe queries.
        """
        if nx < 1 or ny < 1:
            raise ValueError("grid extents must be positive")
        fx = (p[0] - self.xmin) / self.width if self.width > 0 else 0.0
        fy = (p[1] - self.ymin) / self.height if self.height > 0 else 0.0
        ix = min(nx - 1, max(0, int(fx * nx)))
        iy = min(ny - 1, max(0, int(fy * ny)))
        return ix, iy

    def grid_cell(self, ix: int, iy: int, nx: int, ny: int) -> "Rect":
        """The bounds of cell ``(ix, iy)`` of an ``nx x ny`` grid."""
        if not (0 <= ix < nx and 0 <= iy < ny):
            raise ValueError(f"cell ({ix}, {iy}) outside a {nx}x{ny} grid")
        w, h = self.width / nx, self.height / ny
        return Rect(self.xmin + ix * w, self.ymin + iy * h,
                    self.xmin + (ix + 1) * w, self.ymin + (iy + 1) * h)

    def grid_range(self, other: "Rect", nx: int, ny: int
                   ) -> "tuple[int, int, int, int]":
        """Inclusive cell-index range ``(ix0, iy0, ix1, iy1)`` of the
        grid cells this rectangle's grid assigns to ``other``."""
        ix0, iy0 = self.grid_index((other.xmin, other.ymin), nx, ny)
        ix1, iy1 = self.grid_index((other.xmax, other.ymax), nx, ny)
        return ix0, iy0, ix1, iy1

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def mindist(self, p) -> float:
        """Minimum distance from ``p`` to the rectangle (0 if inside)."""
        return math.sqrt(self.mindist_sq(p))

    def mindist_sq(self, p) -> float:
        dx = max(self.xmin - p[0], 0.0, p[0] - self.xmax)
        dy = max(self.ymin - p[1], 0.0, p[1] - self.ymax)
        return dx * dx + dy * dy

    def maxdist(self, p) -> float:
        """Maximum distance from ``p`` to any point of the rectangle."""
        dx = max(p[0] - self.xmin, self.xmax - p[0])
        dy = max(p[1] - self.ymin, self.ymax - p[1])
        return math.hypot(dx, dy)
