"""The replicated serving tier: routing, failover, bounded-stale reads.

:class:`ReplicaSet` fronts N independent server replicas (each a
:class:`~repro.core.server.LocationServer` or
:class:`~repro.service.shard.ShardedServer` over the same dataset) and
implements the same narrow server interface the
:class:`~repro.service.service.QueryService` talks to — so a
replicated deployment is ``QueryService(ReplicaSet.from_points(...))``
and every existing layer (cache, tracing, metrics, retries, breaker)
composes unchanged.

**Routing** — queries are routed by consistent hashing over the
quantized query location (a proxy for client affinity: a mobile client
re-querying from nearby positions keeps hitting the same replica, and
with it that replica's warm buffer pool).  Each replica owns
``virtual_nodes`` points on the hash ring, so when a replica is
ejected its keys redistribute evenly over the survivors.

**Health and failover** — every replica carries its own
:class:`~repro.service.faults.CircuitBreaker`.  A transient failure on
one replica records against its breaker and the query *fails over*
mid-flight to the next candidate on the ring; a tripped breaker ejects
the replica from routing until its reset timeout half-opens it.
:meth:`probe_health` issues a tiny kNN probe through each breaker — a
background health check that both detects silent death and drives
half-open recovery without user traffic.  :meth:`kill` / :meth:`revive`
are the chaos hooks (a killed replica fails like a crashed process).

**Bounded-stale reads** — replica 0 is the synchronous primary;
mutations apply to it immediately and append to every other replica's
``pending`` backlog, which drains lazily, keeping at most
``replication_lag`` mutations outstanding (0 = synchronous
replication).  A request's ``max_stale`` (default
``ReplicaConfig.default_max_stale``, default 0 = fresh reads only)
bounds the backlog length a serving replica may carry; staler replicas
are skipped.  Every stale-served answer has its validity region
conservatively shrunk against the backlog snapshot
(:func:`~repro.service.staleness.shrunk_stale_region`) so it is
provably correct **for the primary's current dataset** — when the
shrink is impossible (the answer would be wrong at the query point
itself) the replica is skipped as unserveable.  Correctness is never
traded for availability; only region size is.

Responses come back wrapped in
:class:`~repro.service.staleness.ServedResponse`, reporting the
serving replica, the epoch actually served, the staleness, and the
failover count; the class attribute ``concurrent_safe = True`` tells
the service layer queries need no global lock (each replica serializes
on its own lock, so distinct replicas answer in parallel).
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.api import KNNRequest, QueryRequest
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.kernel import ExecutionConfig
from repro.obs.context import emit_event
from repro.obs.context import span as obs_span
from repro.service.faults import BreakerConfig, CircuitBreaker, CircuitOpenError
from repro.service.retry import is_transient
from repro.service.shard import ShardedServer
from repro.service.staleness import Mutation, ServedResponse, shrunk_stale_region
from repro.storage.counters import AccessStats

__all__ = [
    "ReplicaConfig",
    "Replica",
    "ReplicaSet",
    "NoReplicaAvailableError",
    "ReplicaDownError",
]


class NoReplicaAvailableError(RuntimeError):
    """Every replica was ejected, down, too stale, or unserveable."""

    transient = True


class ReplicaDownError(RuntimeError):
    """The routed replica is hard-killed (the chaos crash signal)."""

    transient = True

    def __init__(self, rid: int):
        super().__init__(f"replica {rid} is down")
        self.rid = rid


@dataclass(frozen=True)
class ReplicaConfig:
    """Behaviour of a :class:`ReplicaSet`.

    ``replication_lag`` bounds each non-primary replica's pending
    backlog (0 = synchronous replication); ``default_max_stale`` is the
    staleness bound applied to requests that carry none (None keeps the
    fail-safe default of fresh reads only); ``breaker`` configures the
    per-replica ejection breaker (None disables ejection).
    """

    replication_lag: int = 0
    default_max_stale: Optional[int] = None
    breaker: Optional[BreakerConfig] = field(
        default_factory=lambda: BreakerConfig(failure_threshold=3,
                                              reset_timeout_s=0.25))
    #: Ring points per replica; more = smoother key redistribution.
    virtual_nodes: int = 32
    #: Resolution of the location quantization used as the affinity key.
    affinity_grid: int = 64
    #: k of the health-probe kNN query.
    probe_k: int = 1

    def __post_init__(self):
        if self.replication_lag < 0:
            raise ValueError("replication_lag must be non-negative")
        if self.default_max_stale is not None and self.default_max_stale < 0:
            raise ValueError("default_max_stale must be non-negative")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.affinity_grid < 1:
            raise ValueError("affinity_grid must be >= 1")
        if self.probe_k < 1:
            raise ValueError("probe_k must be >= 1")


@dataclass
class Replica:
    """One member of the set: a server plus its health/lag state."""

    rid: int
    server: object  # LocationServer | ShardedServer (narrow interface)
    breaker: Optional[CircuitBreaker]
    pending: Deque[Mutation] = field(default_factory=deque)
    lock: threading.RLock = field(default_factory=threading.RLock)
    alive: bool = True
    queries: int = 0
    stale_served: int = 0

    @property
    def staleness(self) -> int:
        return len(self.pending)

    @property
    def state(self) -> str:
        if not self.alive:
            return "down"
        return self.breaker.state if self.breaker is not None else "closed"


class ReplicaSet:
    """N replicas answering as one fault-tolerant, bounded-stale server."""

    #: Queries serialize per replica, not globally — the service layer
    #: skips its lock and lets replicas answer in parallel.
    concurrent_safe = True

    def __init__(self, servers: Sequence[object],
                 config: Optional[ReplicaConfig] = None,
                 clock=None):
        if not servers:
            raise ValueError("a replica set needs at least one server")
        self.config = config if config is not None else ReplicaConfig()
        breaker_kwargs = {} if clock is None else {"clock": clock}
        self.replicas: List[Replica] = [
            Replica(rid=rid, server=server,
                    breaker=(CircuitBreaker(self.config.breaker,
                                            **breaker_kwargs)
                             if self.config.breaker is not None else None))
            for rid, server in enumerate(servers)
        ]
        self._mutation_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._hub = None
        self._hub_lock = threading.Lock()
        self.failovers = 0
        self.ejected_skips = 0
        self.stale_skips = 0
        self.unserveable_stale = 0
        self.stale_served = 0
        self.replication_retries = 0
        self._ring = self._build_ring()
        self._closed = False
        #: Set by bind_metrics: failovers are attributed to the replica
        #: that failed (the response only carries the final count).
        self._metrics = None

    def bind_metrics(self, registry) -> None:
        """Report replica-routing counters into ``registry`` with labels.

        Failovers land in ``service.replica.failovers{replica=}``
        against the *failing* replica — attribution the service layer
        cannot recover from the served response — and each replica's
        sharded server (when it is one) is bound with a ``replica``
        label riding on its ``service.shard.*`` series.
        """
        self._metrics = registry
        for replica in self.replicas:
            bind = getattr(replica.server, "bind_metrics", None)
            if bind is not None:
                bind(registry, extra_labels={"replica": str(replica.rid)})

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Sequence, *, replicas: int = 2,
                    shards: int = 1, universe: Optional[Rect] = None,
                    capacity: Optional[int] = None, fill: float = 0.7,
                    buffer_fraction: float = 0.0,
                    execution: Optional[ExecutionConfig] = None,
                    config: Optional[ReplicaConfig] = None,
                    clock=None) -> "ReplicaSet":
        """Build ``replicas`` independent servers over the same data.

        Each replica owns its own tree(s), disk(s) and buffers —
        ``shards > 1`` makes every replica a ``shards``×``shards``
        :class:`~repro.service.shard.ShardedServer`.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        servers: List[object] = []
        for _ in range(replicas):
            if shards == 1:
                kernel = (execution.resolved_kernel()
                          if execution is not None else None)
                servers.append(LocationServer.from_points(
                    points, universe=universe, capacity=capacity, fill=fill,
                    buffer_fraction=buffer_fraction, kernel=kernel))
            else:
                servers.append(ShardedServer.from_points(
                    points, grid=shards, universe=universe,
                    capacity=capacity, fill=fill,
                    buffer_fraction=buffer_fraction, execution=execution))
        return cls(servers, config=config, clock=clock)

    # ------------------------------------------------------------------
    # consistent-hash routing
    # ------------------------------------------------------------------
    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def _build_ring(self) -> List[Tuple[int, int]]:
        ring = [(self._hash(f"replica-{r.rid}:vn-{v}"), r.rid)
                for r in self.replicas
                for v in range(self.config.virtual_nodes)]
        ring.sort()
        return ring

    def _candidates(self, request: QueryRequest) -> List[Replica]:
        """All replicas, in ring order from the request's affinity key.

        The first entry is the preferred (affine) replica; the rest are
        the failover order.  Ejected/stale replicas are skipped by the
        caller, so keys of an ejected replica naturally fall to the
        next live node on the ring.
        """
        loc = getattr(request, "location", None) or request.focus
        g = self.config.affinity_grid
        cell = self.universe.grid_index((float(loc[0]), float(loc[1])), g, g)
        key = self._hash(f"cell-{cell[0]}:{cell[1]}")
        start = bisect_right(self._ring, (key, len(self.replicas)))
        seen = set()
        out: List[Replica] = []
        by_rid = {r.rid: r for r in self.replicas}
        for i in range(len(self._ring)):
            _h, rid = self._ring[(start + i) % len(self._ring)]
            if rid not in seen:
                seen.add(rid)
                out.append(by_rid[rid])
                if len(out) == len(self.replicas):
                    break
        return out

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            setattr(self, name, getattr(self, name) + amount)

    # ------------------------------------------------------------------
    # the query path: route -> (skip | serve | fail over)
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest) -> ServedResponse:
        """Answer via the affine replica, failing over transparently.

        Raises :class:`NoReplicaAvailableError` when every replica is
        ejected, down, too stale for the request's bound, or stale-
        unserveable; non-transient errors propagate immediately.
        """
        bound = getattr(request, "max_stale", None)
        if bound is None:
            bound = self.config.default_max_stale
        if bound is None:
            bound = 0  # fail-safe default: fresh reads only
        primary_epoch = self.epoch
        last_exc: Optional[Exception] = None
        failovers = 0
        for replica in self._candidates(request):
            if replica.breaker is not None:
                try:
                    replica.breaker.before_call()
                except CircuitOpenError as exc:
                    self._count("ejected_skips")
                    last_exc = exc
                    continue
            outcome, payload = self._try_replica(replica, request, bound,
                                                 failovers)
            if outcome == "served":
                return payload
            if outcome == "stale_skip":
                self._count("stale_skips")
                emit_event("replica", event="replica.stale_skip",
                           rid=replica.rid, staleness=payload, bound=bound)
                continue
            if outcome == "unserveable":
                self._count("unserveable_stale")
                emit_event("replica", event="replica.stale_unserveable",
                           rid=replica.rid, staleness=payload)
                continue
            # outcome == "failed": transient failure, fail over.
            last_exc = payload
            failovers += 1
            self._count("failovers")
            if self._metrics is not None:
                self._metrics.counter(
                    "service.replica.failovers",
                    labels={"replica": str(replica.rid)}).inc()
            emit_event("replica", event="replica.failover", rid=replica.rid,
                       error=f"{type(payload).__name__}: {payload}")
        if last_exc is not None:
            raise last_exc
        raise NoReplicaAvailableError(
            f"no replica can serve within staleness bound {bound}")

    def _try_replica(self, replica: Replica, request: QueryRequest,
                     bound: int, failovers: int):
        """One serving attempt; returns ``(outcome, payload)``.

        Outcomes: ``("served", ServedResponse)``, ``("failed", exc)``
        for transient failures (non-transient ones raise through),
        ``("stale_skip", staleness)``, ``("unserveable", staleness)``.
        """
        with obs_span(f"replica_{replica.rid}",
                      meta={"rid": replica.rid}) as span_:
            try:
                with replica.lock:
                    if not replica.alive:
                        raise ReplicaDownError(replica.rid)
                    backlog = list(replica.pending)
                    staleness = len(backlog)
                    if staleness > bound:
                        return "stale_skip", staleness
                    served_epoch = replica.server.epoch
                    before_na = replica.server.node_accesses_by_phase()
                    before_pf = replica.server.page_faults_by_phase()
                    response = replica.server.answer(request)
                    node_accesses = _delta(
                        before_na, replica.server.node_accesses_by_phase())
                    page_faults = _delta(
                        before_pf, replica.server.page_faults_by_phase())
            except Exception as exc:
                if not is_transient(exc):
                    raise
                if replica.breaker is not None:
                    replica.breaker.record_failure()
                return "failed", exc
            if replica.breaker is not None:
                replica.breaker.record_success()
            if span_ is not None:
                span_.meta.update({
                    "staleness": staleness,
                    "node_accesses": sum(node_accesses.values()),
                })
            region = None
            if backlog:
                region = shrunk_stale_region(request, response, backlog,
                                             self.universe)
                if region is None:
                    return "unserveable", staleness
                replica.stale_served += 1
                self._count("stale_served")
                emit_event("replica", event="replica.stale_served",
                           rid=replica.rid, staleness=staleness)
            replica.queries += 1
            return "served", ServedResponse(
                response, region=region, replica_id=replica.rid,
                epoch=served_epoch, staleness=staleness,
                # The shrink accounts for the whole backlog snapshot, so
                # the answer is valid at the primary epoch it implies.
                valid_for_epoch=served_epoch + staleness,
                failovers=failovers,
                node_accesses=node_accesses, page_faults=page_faults)

    # ------------------------------------------------------------------
    # mutations: synchronous primary, lazily-draining replicas
    # ------------------------------------------------------------------
    def insert_object(self, oid: int, x: float, y: float) -> None:
        with self._mutation_lock:
            primary = self.replicas[0]
            with primary.lock:
                primary.server.insert_object(oid, x, y)
            mutation = Mutation("insert", int(oid), float(x), float(y))
            self._replicate(mutation)
            if self._hub is not None:
                self._hub.notify(mutation)

    def delete_object(self, oid: int, x: float, y: float) -> bool:
        with self._mutation_lock:
            primary = self.replicas[0]
            with primary.lock:
                removed = primary.server.delete_object(oid, x, y)
            if removed:  # only mutations that actually happened replicate
                mutation = Mutation("delete", int(oid), float(x), float(y))
                self._replicate(mutation)
                if self._hub is not None:
                    self._hub.notify(mutation)
            return removed

    # ------------------------------------------------------------------
    # continuous queries (server push)
    # ------------------------------------------------------------------
    def subscribe(self, request: QueryRequest, *,
                  queue_capacity: Optional[int] = None):
        """Register ``request`` as a continuous query on the set.

        The initial fetch (and any escape-hatch re-query) routes
        through :meth:`answer` — so it enjoys failover and bounded-
        stale reads — while pushes are driven synchronously from the
        primary-side mutation path.  See
        :mod:`repro.service.continuous`.
        """
        return self._ensure_hub().subscribe(
            request, queue_capacity=queue_capacity)

    @property
    def hub(self):
        """The push hub, if any subscription was ever registered."""
        return self._hub

    def _ensure_hub(self):
        from repro.service.continuous import SubscriptionHub

        with self._hub_lock:
            if self._hub is None:
                self._hub = SubscriptionHub(self)
        return self._hub

    def _replicate(self, mutation: Mutation) -> None:
        lag = self.config.replication_lag
        for replica in self.replicas[1:]:
            with replica.lock:
                replica.pending.append(mutation)
                if not replica.alive:
                    continue  # backlog accrues; revive() catches up
                while len(replica.pending) > lag:
                    head = replica.pending.popleft()
                    try:
                        self._apply_locked(replica, head)
                    except Exception:
                        # A faulty follower must not poison the write
                        # path: re-queue in order and stop — the replica
                        # is simply more stale (reads skip or shrink),
                        # and the next mutation or sync() retries.
                        replica.pending.appendleft(head)
                        self._count("replication_retries")
                        emit_event("replica", event="replica.apply_failed",
                                   rid=replica.rid, op=mutation.op)
                        break

    @staticmethod
    def _apply_locked(replica: Replica, mutation: Mutation) -> None:
        if mutation.op == "insert":
            replica.server.insert_object(mutation.oid, mutation.x, mutation.y)
        else:
            replica.server.delete_object(mutation.oid, mutation.x, mutation.y)

    def sync(self) -> None:
        """Drain every replica's backlog (replication barrier)."""
        for replica in self.replicas[1:]:
            with replica.lock:
                while replica.pending:
                    self._apply_locked(replica, replica.pending.popleft())

    # ------------------------------------------------------------------
    # health: probes and the chaos hooks
    # ------------------------------------------------------------------
    def probe_health(self) -> List[Dict[str, object]]:
        """Probe every replica with a tiny kNN query through its breaker.

        Failures record against the breaker (driving ejection of a dead
        replica without waiting for user traffic to hit it); successes
        drive half-open recovery.  Returns per-replica status rows.
        """
        center = ((self.universe.xmin + self.universe.xmax) / 2.0,
                  (self.universe.ymin + self.universe.ymax) / 2.0)
        out = []
        for replica in self.replicas:
            status = "ok"
            if replica.breaker is not None:
                try:
                    replica.breaker.before_call()
                except CircuitOpenError:
                    out.append(self._health_row(replica, "ejected"))
                    continue
            try:
                with replica.lock:
                    if not replica.alive:
                        raise ReplicaDownError(replica.rid)
                    k = min(self.config.probe_k,
                            max(1, replica.server.num_points))
                    replica.server.answer(KNNRequest(center, k=k))
            except Exception as exc:
                status = "failed"
                if replica.breaker is not None and is_transient(exc):
                    replica.breaker.record_failure()
            else:
                if replica.breaker is not None:
                    replica.breaker.record_success()
            out.append(self._health_row(replica, status))
        return out

    def _health_row(self, replica: Replica, status: str) -> Dict[str, object]:
        return {
            "rid": replica.rid,
            "status": status,
            "alive": replica.alive,
            "state": replica.state,
            "staleness": replica.staleness,
        }

    def kill(self, rid: int) -> None:
        """Chaos hook: hard-kill a replica (requests to it fail)."""
        replica = self._by_rid(rid)
        replica.alive = False
        emit_event("replica", event="replica.kill", rid=rid)

    def revive(self, rid: int) -> None:
        """Chaos hook: bring a killed replica back, catching up its
        backlog first (a rejoining replica re-syncs before serving)."""
        replica = self._by_rid(rid)
        with replica.lock:
            while replica.pending:
                self._apply_locked(replica, replica.pending.popleft())
            replica.alive = True
        emit_event("replica", event="replica.revive", rid=rid)

    def _by_rid(self, rid: int) -> Replica:
        for replica in self.replicas:
            if replica.rid == rid:
                return replica
        raise KeyError(f"no replica {rid}")

    # ------------------------------------------------------------------
    # the narrow server interface (what QueryService composes against)
    # ------------------------------------------------------------------
    @property
    def _primary(self) -> Replica:
        return self.replicas[0]

    @property
    def epoch(self) -> int:
        return self._primary.server.epoch

    @property
    def universe(self) -> Rect:
        return self._primary.server.universe

    @property
    def num_points(self) -> int:
        return self._primary.server.num_points

    @property
    def num_pages(self) -> int:
        return self._primary.server.num_pages

    @property
    def queries_processed(self) -> int:
        return sum(r.server.queries_processed for r in self.replicas)

    @property
    def io_stats(self) -> AccessStats:
        merged = AccessStats()
        for r in self.replicas:
            merged.merge(r.server.io_stats)
        return merged

    def reset_io_stats(self) -> None:
        for r in self.replicas:
            r.server.reset_io_stats()

    def node_accesses_by_phase(self) -> Dict[str, int]:
        return self.io_stats.node_accesses_by_phase()

    def page_faults_by_phase(self) -> Dict[str, int]:
        return self.io_stats.page_faults_by_phase()

    def set_phase_listener(self, listener):
        previous = None
        for i, r in enumerate(self.replicas):
            old = r.server.set_phase_listener(listener)
            if i == 0:
                previous = old
        return previous

    def disk_snapshot(self) -> Dict[str, object]:
        """Aggregated disk state plus the per-replica breakdown."""
        out = {
            "stats": self.io_stats.as_dict(),
            "buffer": None,
            "replicas": self.replica_snapshot(),
        }
        primary_snap = self._primary.server.disk_snapshot()
        if "shards" in primary_snap:
            out["shards"] = primary_snap["shards"]
        return out

    def replica_snapshot(self) -> List[Dict[str, object]]:
        """JSON-serializable per-replica health/lag/traffic rows."""
        rows = []
        for r in self.replicas:
            rows.append({
                "rid": r.rid,
                "alive": r.alive,
                "state": r.state,
                "staleness": r.staleness,
                "epoch": r.server.epoch,
                "queries": r.queries,
                "stale_served": r.stale_served,
                "breaker": (r.breaker.snapshot()
                            if r.breaker is not None else None),
            })
        return rows

    def snapshot(self) -> Dict[str, object]:
        """Set-level counters plus the per-replica rows."""
        return {
            "replicas": self.replica_snapshot(),
            "epoch": self.epoch,
            "failovers": self.failovers,
            "ejected_skips": self.ejected_skips,
            "stale_skips": self.stale_skips,
            "stale_served": self.stale_served,
            "unserveable_stale": self.unserveable_stale,
            "replication_retries": self.replication_retries,
            "continuous": (self._hub.snapshot()
                           if self._hub is not None else None),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down every replica's worker pools (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._hub is not None:
            self._hub.close()
        for r in self.replicas:
            close = getattr(r.server, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    out = {}
    for phase, count in after.items():
        diff = count - before.get(phase, 0)
        if diff:
            out[phase] = diff
    return out
