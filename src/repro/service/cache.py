"""The server-side validity-region cache.

The paper puts the validity region to work on the *client*: each mobile
user caches one response and re-answers its own position updates for as
long as it stays inside the region.  The same contract is just as
exploitable on the *server*: a response whose validity region covers a
**different** user's query point answers that query too — by
definition, the result is provably identical anywhere inside the
region.  :class:`ValidityCache` is that idea as an in-memory spatial
structure (the INSQ-style influence-set cache, arXiv:1602.00363):

* every admitted response is indexed by the **MBR of its validity
  region** in a uniform grid over the universe, so a probe inspects
  only the entries whose region can possibly cover the query point;
* a probe is a hit when the query *shape* matches (same ``k``, same
  window extents, same range radius) and the query point passes the
  exact ``region.contains`` test of the geometry layer — never the MBR
  alone, so hits inherit the paper's correctness guarantee unchanged;
* entries are evicted LRU once ``capacity`` is exceeded;
* the dataset-mutation hook is **surgical** (:meth:`invalidate_mutation`):
  a mutation drops only the entries whose region the mutated object can
  reach — an insert kills a kNN entry only when some corner of its
  region MBR is closer to the new object than to one of its neighbours
  (the bisector test), a window entry only when the insert's zone
  touches its rectangle, a range entry only when the insert lands
  within ``radius`` of its MBR — and re-stamps every survivor to the
  new dataset epoch, so hit rates stay high under write traffic.  The
  pre-existing drop-everything hook (:meth:`invalidate_all`) remains as
  the ``surgical=False`` baseline.

A cache hit costs zero node accesses: the request never reaches the
index, which is what turns a stream of moving-client queries into
mostly O(1) lookups.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.api import QueryRequest, QueryResponse, query_semantics
from repro.geometry import Rect

__all__ = ["CacheConfig", "ValidityCache"]


@dataclass(frozen=True)
class CacheConfig:
    """Shape of a :class:`ValidityCache`.

    ``capacity`` bounds the number of retained responses (LRU beyond
    it); ``grid`` is the resolution of the uniform cell grid the region
    MBRs are indexed in; ``admit_degraded`` controls whether
    budget-degraded responses (tiny conservative regions) are worth
    caching at all; ``surgical`` selects the mutation hook — overlap
    tests that keep unaffected entries alive (the default) versus the
    drop-everything baseline.
    """

    capacity: int = 1024
    grid: int = 16
    admit_degraded: bool = False
    surgical: bool = True

    def __post_init__(self):
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        if self.grid < 1:
            raise ValueError("grid must be positive")


class _Entry:
    """One cached response and where its region MBR is registered."""

    __slots__ = ("uid", "key", "response", "epoch", "cells", "mbr")

    def __init__(self, uid: int, key: Tuple, response: QueryResponse,
                 epoch: int, cells: Tuple[Tuple[int, int], ...], mbr: Rect):
        self.uid = uid
        self.key = key
        self.response = response
        self.epoch = epoch
        self.cells = cells
        self.mbr = mbr


def request_key(request: QueryRequest) -> Optional[Tuple]:
    """The cache key of a request, or ``None`` when it is uncacheable.

    Incremental (delta) requests bypass the cache: their response is
    relative to the caller's ``previous_ids``, so it is not reusable
    verbatim.  The budget is deliberately *not* part of the key — a
    cached full-region response satisfies any budget, since serving it
    costs no work at all.
    """
    try:
        sem = query_semantics(request)
    except TypeError:
        return None
    return sem.cache_key(request)


def request_location(request: QueryRequest) -> Tuple[float, float]:
    """The query point of any typed request."""
    return query_semantics(request).location(request)


def _survives(entry: _Entry, op: str, oid: int, x: float, y: float) -> bool:
    """Can the cached ``entry`` provably be unaffected by the mutation?

    The per-kind survival test is the registered semantics' —
    ``entry.key[0]`` is the kind tag the key was minted with.
    """
    try:
        sem = query_semantics(entry.key[0])
    except TypeError:
        return False
    return sem.cache_survives(entry, op, oid, x, y)


class ValidityCache:
    """A thread-safe spatial cache of responses keyed by validity region."""

    def __init__(self, universe: Rect,
                 config: Optional[CacheConfig] = None):
        self.universe = universe
        self.config = config if config is not None else CacheConfig()
        self._lock = threading.Lock()
        self._uids = 0
        #: LRU order: oldest first.
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._grid: Dict[Tuple[int, int], Dict[int, _Entry]] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.surgical_drops = 0
        self.surgical_survivals = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def probe(self, request: QueryRequest, epoch: int
              ) -> Optional[QueryResponse]:
        """The cached response answering ``request``, if any.

        A hit requires an entry with the same query shape, computed
        under the current dataset ``epoch``, whose validity region
        contains the request's query point.  Epoch-stale entries found
        along the way are dropped lazily.
        """
        key = request_key(request)
        if key is None or self.config.capacity == 0:
            return None
        location = request_location(request)
        cell = self.universe.grid_index(location, self.config.grid,
                                        self.config.grid)
        with self._lock:
            bucket = self._grid.get(cell)
            if bucket:
                stale = []
                hit: Optional[_Entry] = None
                # Newest entries first: fresher regions, hotter answers.
                for entry in reversed(bucket.values()):
                    if entry.epoch != epoch:
                        stale.append(entry)
                        continue
                    if (entry.key == key
                            and entry.response.region.contains(location)):
                        hit = entry
                        break
                for entry in stale:
                    self._remove(entry)
                if hit is not None:
                    self._entries.move_to_end(hit.uid)
                    self.hits += 1
                    return hit.response
            self.misses += 1
            return None

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def admit(self, request: QueryRequest, response: QueryResponse,
              epoch: int) -> bool:
        """Index ``response`` under its validity region's MBR.

        Returns False (and caches nothing) for uncacheable requests,
        regions that expose no finite MBR, and — unless configured
        otherwise — degraded responses, whose conservative regions are
        too small to be worth a slot.
        """
        key = request_key(request)
        if key is None or self.config.capacity == 0:
            return False
        if (not self.config.admit_degraded
                and bool(getattr(response.detail, "degraded", False))):
            return False
        mbr_of = getattr(response.region, "mbr", None)
        mbr = mbr_of() if mbr_of is not None else None
        if mbr is None:  # unbounded region: clamp to the universe
            mbr = self.universe
        n = self.config.grid
        ix0, iy0, ix1, iy1 = self.universe.grid_range(mbr, n, n)
        cells = tuple((ix, iy)
                      for ix in range(ix0, ix1 + 1)
                      for iy in range(iy0, iy1 + 1))
        with self._lock:
            self._uids += 1
            entry = _Entry(self._uids, key, response, epoch, cells, mbr)
            self._entries[entry.uid] = entry
            for cell in cells:
                self._grid.setdefault(cell, {})[entry.uid] = entry
            self.insertions += 1
            while len(self._entries) > self.config.capacity:
                _, oldest = self._entries.popitem(last=False)
                self._unlink(oldest)
                self.evictions += 1
        return True

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_all(self) -> int:
        """Drop everything (the blunt mutation hook); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._grid.clear()
            if dropped:
                self.invalidations += 1
        return dropped

    def invalidate_mutation(self, op: str, oid: int, x: float, y: float,
                            epoch: int) -> int:
        """Surgically apply one dataset mutation; returns entries dropped.

        ``epoch`` is the dataset epoch *after* the mutation.  Every
        entry that provably cannot be affected is re-stamped to the new
        epoch and stays servable; everything else (including entries
        whose epoch already lagged) is dropped.  The per-kind survival
        tests are conservative — sound in the only direction that
        matters (never keep an entry the mutation could touch):

        * **delete** — an entry survives iff the deleted object is not
          in its result (a non-member is beaten everywhere the result
          is frozen; removing it promotes nothing);
        * **insert / kNN** — survives iff every corner of the region
          MBR is at least as close to each of the k neighbours as to
          the new object; the bisector half-planes are convex, so the
          corners bound the whole MBR, hence the whole region;
        * **insert / window** — survives iff the insert's zone (the
          query rectangle centred on it) misses the region rectangle;
        * **insert / range** — survives iff the insert is farther than
          ``radius`` from every point of the region MBR.

        The walk is a full scan of the (capacity-bounded) entry table:
        a kNN region can be influenced from anywhere, so there is no
        sound cell-local shortcut for it, and the scan is what re-stamps
        survivors in one pass.
        """
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown mutation op {op!r}")
        x, y = float(x), float(y)
        dropped = survived = 0
        with self._lock:
            for entry in list(self._entries.values()):
                if (entry.epoch == epoch - 1
                        and _survives(entry, op, oid, x, y)):
                    entry.epoch = epoch
                    survived += 1
                else:
                    self._remove(entry)
                    dropped += 1
            self.surgical_drops += dropped
            self.surgical_survivals += survived
            if dropped:
                self.invalidations += 1
        return dropped

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _remove(self, entry: _Entry) -> None:
        if self._entries.pop(entry.uid, None) is not None:
            self._unlink(entry)

    def _unlink(self, entry: _Entry) -> None:
        for cell in entry.cells:
            bucket = self._grid.get(cell)
            if bucket is not None:
                bucket.pop(entry.uid, None)
                if not bucket:
                    del self._grid[cell]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable cache state and accounting."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.config.capacity,
                "grid": self.config.grid,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": self.hit_ratio,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "surgical": self.config.surgical,
                "surgical_drops": self.surgical_drops,
                "surgical_survivals": self.surgical_survivals,
            }
