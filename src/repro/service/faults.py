"""Failure isolation for the query service: the circuit breaker.

A :class:`CircuitBreaker` sits in front of the server call and keeps a
dying disk from dragging every client down with it:

* **closed** — requests flow; consecutive transient failures are
  counted, and reaching ``failure_threshold`` trips the breaker;
* **open** — requests are rejected immediately with
  :class:`CircuitOpenError` (no disk work, no lock contention) until
  ``reset_timeout_s`` has elapsed;
* **half-open** — up to ``half_open_max_probes`` in-flight requests are
  let through; ``success_threshold`` successes close the breaker (a
  *recovery*), any failure re-opens it.

All transitions are thread-safe and counted (``trips``,
``recoveries``, ``rejections``) so the chaos suite can assert the
trip/recover cycle actually happened.  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict

__all__ = ["BreakerConfig", "CircuitBreaker", "CircuitOpenError",
           "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """Rejected without touching the server: the breaker is open.

    Marked ``transient`` so clients treat it like any other temporary
    outage (stale-cache fallback); the service itself never retries it.
    """

    transient = True

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"circuit breaker open; retry in {retry_after_s:.3f}s")
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds of one :class:`CircuitBreaker`."""

    #: Consecutive transient failures that trip a closed breaker.
    failure_threshold: int = 5
    #: Seconds an open breaker waits before probing (half-open).
    reset_timeout_s: float = 1.0
    #: Concurrent probe requests admitted while half-open.
    half_open_max_probes: int = 1
    #: Probe successes needed to close again.
    success_threshold: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        if self.half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")


class CircuitBreaker:
    """A per-service closed/open/half-open circuit breaker."""

    def __init__(self, config: BreakerConfig = BreakerConfig(),
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0
        self.recoveries = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """State after applying the open→half-open timeout (lock held)."""
        if self._state == OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.config.reset_timeout_s:
                self._state = HALF_OPEN
                self._probes_in_flight = 0
                self._probe_successes = 0
        return self._state

    def before_call(self) -> None:
        """Admit one request or raise :class:`CircuitOpenError`."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN:
                if self._probes_in_flight < self.config.half_open_max_probes:
                    self._probes_in_flight += 1
                    return
                self.rejections += 1
                raise CircuitOpenError(0.0)
            remaining = (self.config.reset_timeout_s
                         - (self._clock() - self._opened_at))
            self.rejections += 1
            raise CircuitOpenError(max(0.0, remaining))

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.success_threshold:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                    self.recoveries += 1
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED and self._consecutive_failures
                    >= self.config.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        """Transition to OPEN (lock held)."""
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable breaker state for stats snapshots."""
        with self._lock:
            return {
                "state": self._effective_state(),
                "trips": self.trips,
                "recoveries": self.recoveries,
                "rejections": self.rejections,
                "consecutive_failures": self._consecutive_failures,
            }
