"""Retry with capped exponential backoff and full jitter.

The service retries *transient* failures — simulated page-read errors,
injected timeouts — with the AWS-style "full jitter" schedule: attempt
``i`` sleeps ``uniform(0, min(max_delay, base * 2**i))``.  Full jitter
decorrelates a thundering herd of clients retrying the same stressed
disk, which matters once millions of subscribers share one server.

An exception opts into retrying by carrying a truthy ``transient``
attribute (see :class:`repro.storage.faulty.PageReadError`); everything
else propagates immediately.  :class:`repro.service.faults.CircuitOpenError`
is deliberately *not* retried by the service even though it is marked
transient for clients: retrying against an open breaker would defeat
its purpose.

:class:`RetryBudget` caps the *total* retries the whole service spends
per rolling window, across all queries.  Per-query retry caps bound
each request's amplification, but when a replica dies under load every
in-flight query retries at once — N concurrent queries × (attempts-1)
retries is a retry *storm* precisely when capacity just dropped.  The
budget is the global back-pressure valve: once it is spent, further
failures surface immediately (clients fall back to their stale caches)
instead of multiplying load.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

__all__ = ["RetryPolicy", "RetryBudget", "RetryBudgetConfig",
           "call_with_retry", "is_transient"]


def is_transient(exc: BaseException) -> bool:
    """Does ``exc`` opt into retrying (duck-typed ``transient`` flag)?"""
    return bool(getattr(exc, "transient", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of the retry schedule.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying.  ``jitter="full"`` draws uniformly in ``[0, cap]``;
    ``jitter="none"`` sleeps the cap itself (deterministic, for tests).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    jitter: str = "full"

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter not in ("full", "none"):
            raise ValueError("jitter must be 'full' or 'none'")

    def backoff_s(self, attempt: int,
                  rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        if self.jitter == "none":
            return cap
        return (rng or random).uniform(0.0, cap)


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Cap on total service-wide retries per rolling window."""

    max_retries: int = 32
    window_s: float = 1.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


class RetryBudget:
    """The runtime state of a :class:`RetryBudgetConfig`: a thread-safe
    sliding window of retry timestamps.

    :meth:`try_spend` answers "may one more retry happen now?" — False
    once ``max_retries`` have been spent within the trailing
    ``window_s`` seconds.  Exhaustions are tallied on ``exhausted`` (the
    service mirrors it to the ``service.retry_budget.exhausted``
    counter).  ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, config: Optional[RetryBudgetConfig] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config if config is not None else RetryBudgetConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._spent: Deque[float] = deque()
        self.exhausted = 0

    def try_spend(self) -> bool:
        """Reserve one retry from the window; False when exhausted."""
        now = self._clock()
        horizon = now - self.config.window_s
        with self._lock:
            while self._spent and self._spent[0] <= horizon:
                self._spent.popleft()
            if len(self._spent) >= self.config.max_retries:
                self.exhausted += 1
                return False
            self._spent.append(now)
            return True

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "in_window": len(self._spent),
                "max_retries": self.config.max_retries,
                "window_s": self.config.window_s,
                "exhausted": self.exhausted,
            }


def call_with_retry(fn: Callable[[], object], policy: RetryPolicy,
                    rng: Optional[random.Random] = None,
                    sleep: Callable[[float], None] = time.sleep,
                    retryable: Callable[[BaseException], bool] = is_transient,
                    on_retry: Optional[Callable[[int, float, BaseException],
                                                None]] = None,
                    budget: Optional[RetryBudget] = None):
    """Call ``fn`` under ``policy``; return its result.

    ``on_retry(attempt, delay_s, exc)`` is invoked before each backoff
    sleep (metrics/tracing hook).  The last failure propagates
    unchanged once attempts are exhausted, the error is not retryable,
    or the shared ``budget`` (if any) is spent for its window.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except BaseException as exc:
            if not retryable(exc) or attempt + 1 >= policy.max_attempts:
                raise
            if budget is not None and not budget.try_spend():
                raise
            delay = policy.backoff_s(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0.0:
                sleep(delay)
            attempt += 1
