"""Retry with capped exponential backoff and full jitter.

The service retries *transient* failures — simulated page-read errors,
injected timeouts — with the AWS-style "full jitter" schedule: attempt
``i`` sleeps ``uniform(0, min(max_delay, base * 2**i))``.  Full jitter
decorrelates a thundering herd of clients retrying the same stressed
disk, which matters once millions of subscribers share one server.

An exception opts into retrying by carrying a truthy ``transient``
attribute (see :class:`repro.storage.faulty.PageReadError`); everything
else propagates immediately.  :class:`repro.service.faults.CircuitOpenError`
is deliberately *not* retried by the service even though it is marked
transient for clients: retrying against an open breaker would defeat
its purpose.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["RetryPolicy", "call_with_retry", "is_transient"]


def is_transient(exc: BaseException) -> bool:
    """Does ``exc`` opt into retrying (duck-typed ``transient`` flag)?"""
    return bool(getattr(exc, "transient", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of the retry schedule.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying.  ``jitter="full"`` draws uniformly in ``[0, cap]``;
    ``jitter="none"`` sleeps the cap itself (deterministic, for tests).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    jitter: str = "full"

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter not in ("full", "none"):
            raise ValueError("jitter must be 'full' or 'none'")

    def backoff_s(self, attempt: int,
                  rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        if self.jitter == "none":
            return cap
        return (rng or random).uniform(0.0, cap)


def call_with_retry(fn: Callable[[], object], policy: RetryPolicy,
                    rng: Optional[random.Random] = None,
                    sleep: Callable[[float], None] = time.sleep,
                    retryable: Callable[[BaseException], bool] = is_transient,
                    on_retry: Optional[Callable[[int, float, BaseException],
                                                None]] = None):
    """Call ``fn`` under ``policy``; return its result.

    ``on_retry(attempt, delay_s, exc)`` is invoked before each backoff
    sleep (metrics/tracing hook).  The last failure propagates
    unchanged once attempts are exhausted or the error is not
    retryable.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except BaseException as exc:
            if not retryable(exc) or attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.backoff_s(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0.0:
                sleep(delay)
            attempt += 1
