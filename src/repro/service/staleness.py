"""Sound validity regions for answers served by a lagging replica.

A replica that has not yet applied the primary's latest mutations
answers queries over a *stale* snapshot of the dataset.  The staleness
contract of the replicated tier (:mod:`repro.service.replica`) is the
server-side generalization of the client's ``max_stale`` fallback —
with one crucial strengthening: a stale answer is only served when it
can be made **provably correct for the fresh dataset**, by shrinking
its validity region against the replica's pending-mutation backlog.

:func:`shrunk_stale_region` implements the per-query-type rules.  With
``R`` the stale result and ``V`` its (stale-dataset) validity region:

* **kNN** — a pending *delete* of a result member makes the answer
  unserveable (the fresh kNN set differs at the query point itself).
  Every pending *insert* ``m`` contributes bisector halfplanes "closer
  to each neighbour than to ``m``" (the PR-3
  :class:`~repro.core.validity.NNValidityRegion` machinery): inside
  their intersection every insert is farther than the k-th neighbour,
  so the fresh top-k equals ``R``.  Deletes of non-members are harmless
  anywhere in ``V`` — a non-member is outside the top-k everywhere the
  stale set is frozen, and removing it cannot promote anything.
* **window** — a pending delete of a result member: unserveable.  Each
  pending insert ``m`` defines the *zone* of foci whose window contains
  ``m`` (the query rectangle centred on ``m``); a focus inside the zone
  is unserveable, otherwise the zone is cut away from the validity
  rectangle with the scatter-gather axis-cut
  (:func:`repro.service.shard._cut_away`).
* **range** — a pending delete of a result member: unserveable.  A
  pending insert within ``radius`` of the query point: unserveable.
  Otherwise each insert at distance ``d`` caps the validity-disk radius
  at ``d - radius`` (moving less than that keeps the insert outside).

In every case the shrunk region is a subset of ``V`` in which the
stale result equals the fresh result — the answer is valid for the
**primary** epoch at serve time, which is what makes admitting it to
the :class:`~repro.service.cache.ValidityCache` sound.  Returning
``None`` means "unserveable from this replica": the caller fails over
to a fresher one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.api import (
    KNNRequest,
    QueryRequest,
    QueryResponse,
    RangeRequest,
    WindowRequest,
    query_semantics,
)
from repro.core.range_validity import RangeValidityRegion
from repro.core.validity import (
    CompositeValidityRegion,
    NNValidityRegion,
    WindowValidityRegion,
)
from repro.geometry import Point, Rect
from repro.index.entry import LeafEntry
from repro.service.shard import _cut_away

__all__ = ["Mutation", "ServedResponse", "shrunk_stale_region"]


@dataclass(frozen=True)
class Mutation:
    """One primary-side data change awaiting application on a replica."""

    op: str  # "insert" | "delete"
    oid: int
    x: float
    y: float

    def __post_init__(self):
        if self.op not in ("insert", "delete"):
            raise ValueError(f"unknown mutation op {self.op!r}")

    @property
    def entry(self) -> LeafEntry:
        return LeafEntry(self.oid, self.x, self.y)


class ServedResponse:
    """A :class:`QueryResponse` proxy annotated with how it was served.

    Wraps the replica's raw response, optionally overriding its region
    with the staleness-shrunk (or brownout-shrunk) one, and carries the
    serving metadata the service layer meters: which replica answered,
    at which epoch, how stale it was, how many failovers the request
    survived, and the per-phase access deltas measured inside the
    replica's lock (the concurrent-safe replacement for the service's
    before/after diff, which would race across parallel replicas).
    """

    __slots__ = ("inner", "region", "replica_id", "epoch", "staleness",
                 "valid_for_epoch", "failovers", "brownout_level",
                 "node_accesses", "page_faults")

    def __init__(self, inner: QueryResponse, region=None,
                 replica_id: Optional[int] = None,
                 epoch: Optional[int] = None,
                 staleness: int = 0,
                 valid_for_epoch: Optional[int] = None,
                 failovers: int = 0,
                 brownout_level: int = 0,
                 node_accesses: Optional[Dict[str, int]] = None,
                 page_faults: Optional[Dict[str, int]] = None):
        self.inner = inner
        self.region = inner.region if region is None else region
        self.replica_id = replica_id
        self.epoch = epoch
        self.staleness = staleness
        self.valid_for_epoch = valid_for_epoch
        self.failovers = failovers
        self.brownout_level = brownout_level
        self.node_accesses = node_accesses if node_accesses is not None else {}
        self.page_faults = page_faults if page_faults is not None else {}

    @property
    def result(self):
        return self.inner.result

    @property
    def detail(self):
        return self.inner.detail

    def transfer_bytes(self) -> int:
        base = self.inner.transfer_bytes()
        if self.region is not self.inner.region:
            base += (self.region.transfer_bytes()
                     - self.inner.region.transfer_bytes())
        return base

    def with_inner(self, inner: QueryResponse) -> "ServedResponse":
        """A copy of this annotation around a replacement response
        (used by the service's cached-kNN re-ranking)."""
        region = None if self.region is self.inner.region else self.region
        return ServedResponse(
            inner, region=region, replica_id=self.replica_id,
            epoch=self.epoch, staleness=self.staleness,
            valid_for_epoch=self.valid_for_epoch, failovers=self.failovers,
            brownout_level=self.brownout_level,
            node_accesses=self.node_accesses, page_faults=self.page_faults)

    def __getattr__(self, name):
        # Per-type conveniences (``neighbors``, ``added`` …) proxy through.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServedResponse(replica={self.replica_id}, "
                f"staleness={self.staleness}, inner={self.inner!r})")


def shrunk_stale_region(request: QueryRequest, response: QueryResponse,
                        pending: Sequence[Mutation], universe: Rect):
    """The fresh-dataset validity region of a stale answer, or ``None``.

    ``pending`` is the replica's mutation backlog at serve time (primary
    changes the answering snapshot has not seen).  Returns a region that
    is a subset of ``response.region`` inside which the stale result
    provably equals the fresh result, or ``None`` when no such region
    containing the query point exists (the answer is unserveable stale).
    """
    if not pending:
        return response.region
    return query_semantics(request).stale_region(
        request, response, pending, universe)


def _deleted_member(response: QueryResponse,
                    pending: Sequence[Mutation]) -> bool:
    result_ids = {e.oid for e in response.result}
    return any(m.op == "delete" and m.oid in result_ids for m in pending)


def _knn_stale_region(request: KNNRequest, response: QueryResponse,
                      pending: Sequence[Mutation], universe: Rect):
    if _deleted_member(response, pending):
        return None
    inserts = [m for m in pending if m.op == "insert"]
    if not inserts:
        return response.region
    q = (float(request.location[0]), float(request.location[1]))
    pairs = [(neighbor, m.entry)
             for m in inserts for neighbor in response.result]
    closer_than_inserts = NNValidityRegion(pairs, universe)
    if not closer_than_inserts.contains(q):
        return None  # an insert beats a current neighbour at q itself
    return CompositeValidityRegion([response.region, closer_than_inserts])


def _window_stale_region(request: WindowRequest, response: QueryResponse,
                         pending: Sequence[Mutation]):
    if _deleted_member(response, pending):
        return None
    f = (float(request.focus[0]), float(request.focus[1]))
    hw, hh = request.width / 2.0, request.height / 2.0
    rect = response.region.rect
    for m in pending:
        if m.op != "insert":
            continue
        # Foci whose query window would contain the inserted point.
        zone = Rect(m.x - hw, m.y - hh, m.x + hw, m.y + hh)
        if zone.contains_point(f):
            return None
        if zone.intersects(rect):
            rect = _cut_away(rect, zone, f)
    return WindowValidityRegion(rect)


def _range_stale_region(request: RangeRequest, response: QueryResponse,
                        pending: Sequence[Mutation]):
    if _deleted_member(response, pending):
        return None
    qx, qy = float(request.location[0]), float(request.location[1])
    radius = float(request.radius)
    validity = response.region.radius
    for m in pending:
        if m.op != "insert":
            continue
        d = math.hypot(m.x - qx, m.y - qy)
        if d <= radius:
            return None  # the insert is in range at q itself
        validity = min(validity, d - radius)
    return RangeValidityRegion(Point(qx, qy), max(validity, 0.0))
