"""The service layer: instrumentation, resilience and concurrency.

* :mod:`repro.service.metrics` — counters, gauges and latency
  histograms in one thread-safe registry every layer reports into.
* :mod:`repro.service.tracing` — structured per-query traces with
  timed spans and phase-attributed node accesses.
* :mod:`repro.service.retry` — capped exponential backoff with full
  jitter for transient failures.
* :mod:`repro.service.faults` — the closed/open/half-open circuit
  breaker that isolates a failing disk.
* :mod:`repro.service.service` — :class:`QueryService`, the
  instrumented, thread-safe, fault-tolerant front-end a deployment
  runs (see :class:`ResilienceConfig`).
* :mod:`repro.service.fleet` — a ThreadPoolExecutor-driven fleet of
  simulated mobile clients with per-tick batched dispatch.
"""

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.tracing import QueryTrace, Span, TraceBuffer
from repro.service.retry import RetryPolicy, call_with_retry, is_transient
from repro.service.faults import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.service.service import QueryService, ResilienceConfig
from repro.service.fleet import ClientFleet, FleetConfig, FleetReport

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "TraceBuffer",
    "RetryPolicy",
    "call_with_retry",
    "is_transient",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "QueryService",
    "ResilienceConfig",
    "ClientFleet",
    "FleetConfig",
    "FleetReport",
]
