"""The service layer: instrumentation, resilience and concurrency.

* :mod:`repro.service.metrics` — counters, gauges and latency
  histograms in one thread-safe registry every layer reports into.
* :mod:`repro.service.tracing` — structured per-query traces with
  timed spans and phase-attributed node accesses.
* :mod:`repro.service.retry` — capped exponential backoff with full
  jitter for transient failures, plus the service-wide
  :class:`RetryBudget` against retry storms.
* :mod:`repro.service.faults` — the closed/open/half-open circuit
  breaker that isolates a failing disk.
* :mod:`repro.service.admission` — :class:`AdmissionController`, the
  overload gate: bounded concurrency, deadline-aware fast reject and
  the graded brownout ladder.
* :mod:`repro.service.cache` — :class:`ValidityCache`, the server-side
  validity-region cache: any query whose point falls inside a cached
  region is answered with zero node accesses.
* :mod:`repro.service.shard` — :class:`ShardedServer`, a K×K grid of
  independent R*-trees answering queries by scatter-gather with sound
  merged validity regions.
* :mod:`repro.service.replica` — :class:`ReplicaSet`, the replicated
  tier: consistent-hash routing, per-replica breaker ejection,
  transparent failover and bounded-stale reads whose regions stay
  provably correct (:mod:`repro.service.staleness`).
* :mod:`repro.service.continuous` — :class:`SubscriptionHub`, the
  server-push continuous-query tier: influence-set-plus-margin kNN
  caching, O(delta) patches on mutation, bounded per-subscription
  queues with latest-wins coalescing.
* :mod:`repro.service.service` — :class:`QueryService`, the
  instrumented, thread-safe, fault-tolerant front-end a deployment
  runs (see :class:`ResilienceConfig`), and :func:`build_service`, the
  one-stop factory assembling server + shards + cache.
* :mod:`repro.service.fleet` — a ThreadPoolExecutor-driven fleet of
  simulated mobile clients with per-tick batched dispatch.
* :mod:`repro.service.checkapi` — the API-drift check CI runs
  (``python -m repro.service.checkapi``).

The propagation layer itself — trace contexts, the structured
:class:`~repro.obs.events.EventLog`, the Prometheus / Chrome-trace
exporters and the HTTP endpoint — lives in :mod:`repro.obs`; the
service opens a trace per query and every layer below reports into it.
"""

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_series_key,
    series_key,
)
from repro.service.tracing import (
    QueryTrace,
    Span,
    TailSamplingConfig,
    TraceBuffer,
)
from repro.service.retry import (
    RetryBudget,
    RetryBudgetConfig,
    RetryPolicy,
    call_with_retry,
    is_transient,
)
from repro.service.faults import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejectedError,
)
from repro.service.cache import CacheConfig, ValidityCache
from repro.service.shard import (
    Shard,
    ShardedKNNDetail,
    ShardedRangeDetail,
    ShardedServer,
    ShardedWindowDetail,
)
from repro.service.staleness import ServedResponse
from repro.service.continuous import (
    ContinuousConfig,
    PatchResponse,
    Subscription,
    SubscriptionHub,
    SubscriptionUpdate,
)
from repro.service.replica import (
    NoReplicaAvailableError,
    ReplicaConfig,
    ReplicaSet,
)
from repro.service.service import QueryService, ResilienceConfig, build_service
from repro.service.fleet import ClientFleet, FleetConfig, FleetReport

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "series_key",
    "parse_series_key",
    "QueryTrace",
    "Span",
    "TraceBuffer",
    "TailSamplingConfig",
    "RetryPolicy",
    "RetryBudget",
    "RetryBudgetConfig",
    "call_with_retry",
    "is_transient",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejectedError",
    "CacheConfig",
    "ValidityCache",
    "Shard",
    "ShardedServer",
    "ShardedKNNDetail",
    "ShardedWindowDetail",
    "ShardedRangeDetail",
    "ServedResponse",
    "ContinuousConfig",
    "PatchResponse",
    "Subscription",
    "SubscriptionHub",
    "SubscriptionUpdate",
    "ReplicaSet",
    "ReplicaConfig",
    "NoReplicaAvailableError",
    "QueryService",
    "ResilienceConfig",
    "build_service",
    "ClientFleet",
    "FleetConfig",
    "FleetReport",
]
