"""The service layer: instrumentation and concurrency over the server.

* :mod:`repro.service.metrics` — counters, gauges and latency
  histograms in one thread-safe registry every layer reports into.
* :mod:`repro.service.tracing` — structured per-query traces with
  timed spans and phase-attributed node accesses.
* :mod:`repro.service.service` — :class:`QueryService`, the
  instrumented, thread-safe front-end a deployment runs.
* :mod:`repro.service.fleet` — a ThreadPoolExecutor-driven fleet of
  simulated mobile clients with per-tick batched dispatch.
"""

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.tracing import QueryTrace, Span, TraceBuffer
from repro.service.service import QueryService
from repro.service.fleet import ClientFleet, FleetConfig, FleetReport

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "TraceBuffer",
    "QueryService",
    "ClientFleet",
    "FleetConfig",
    "FleetReport",
]
