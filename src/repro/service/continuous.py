"""Server-push continuous queries: influence-set maintenance + pub/sub.

The paper's validity regions tell a client *when* its answer dies;
until this module, expiry — or any dataset mutation — forced a full
re-query.  Here the server keeps a small amount of per-query state so
that most deaths are repaired with an **O(delta) patch** instead of a
fresh traversal, and pushes the repaired answer to the client over a
bounded queue.

kNN maintenance — the anchor/horizon invariant
----------------------------------------------
Subscribing a ``k``-NN query fetches ``k + margin`` neighbours of the
query point (the *anchor*) in one go and keeps the whole candidate set
server-side.  With ``horizon`` the distance of the farthest retrieved
candidate from the anchor, the retrieval guarantees the invariant

    every live non-candidate object is at distance >= horizon
    from the anchor,

and every mutation preserves it for free: an insert within the horizon
joins the candidate set, an insert beyond it is a no-op, a delete
removes at most one candidate.  Serving the top-``k`` at a point ``p``
purely from the candidates is sound whenever

    d_k(p) + dist(anchor, p) < horizon

(``d_k`` measured over the candidates): by the triangle inequality any
non-candidate is farther from ``p`` than the k-th candidate.  The
patched validity region is the intersection of

* the exact bisector half-planes between the ``k`` members and the
  remaining candidates (the re-ranked influence set — a local order-k
  cell over the candidate universe), and
* the safety disk of radius ``(horizon - dist(anchor, p) - d_k(p)) / 2``
  centred on ``p``, inside which no non-candidate can catch up.

Both pieces are computed from cached state with **zero node accesses**.
When the condition fails — the margin is exhausted by deletes, or the
client wandered too close to the horizon — the subscription falls back
to a full re-query (the soundness escape hatch).

Window and range patches reuse the staleness rules of
:mod:`repro.service.staleness`: an inserted object's *zone* (the foci
whose window contains it) is intersected in or cut away; a range
insert at distance ``d`` caps the validity radius at ``d - radius``;
member deletes drop the entry from the result with the region (window)
or validity radius (range) untouched.

Push semantics
--------------
Every queued :class:`SubscriptionUpdate` carries the **full** latest
state (result + region), never a diff of a diff — which is what makes
backpressure coalescing sound: when a subscriber's bounded queue is
full, the newest update replaces the queue *tail* (latest wins, the
``coalesced`` counter records the merge) so a slow subscriber never
buffers unboundedly and never loses the final state.  A subscription
whose patch computation raises is marked ``broken`` and receives one
final ``invalidate`` push: there is no silent staleness.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.api import QueryDetail, QueryRequest, query_semantics
from repro.core.range_validity import RangeValidityRegion
from repro.core.validity import (
    POINT_BYTES,
    CompositeValidityRegion,
    NNValidityRegion,
    ValidityDisk,
    WindowValidityRegion,
)
from repro.geometry import Point, Rect
from repro.index.entry import LeafEntry
from repro.obs.events import EventLog
from repro.service.shard import _cut_away
from repro.service.staleness import Mutation

__all__ = [
    "ContinuousConfig",
    "ContinuousDetail",
    "PatchResponse",
    "Subscription",
    "SubscriptionHub",
    "SubscriptionUpdate",
]

#: Wire cost of an invalidation push: one 4-byte subscription token.
INVALIDATE_BYTES = 4


@dataclass(frozen=True)
class ContinuousConfig:
    """Tuning of the continuous-query tier.

    ``margin`` is the number of extra neighbours retrieved (and kept
    server-side) per kNN subscription — the patch budget: each delete
    of a candidate spends one unit, each insert inside the horizon
    earns one back.  ``queue_capacity`` bounds every subscriber queue;
    overflow coalesces (latest wins), it never grows the buffer.
    """

    margin: int = 8
    queue_capacity: int = 8

    def __post_init__(self):
        if self.margin < 1:
            raise ValueError("margin must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


@dataclass(frozen=True)
class ContinuousDetail(QueryDetail):
    """Detail record of a response served from subscription state."""

    query_kind: str = ""
    #: How this response was produced: "subscribe" (initial fetch),
    #: "patch" (mutation repair), "move" (client relocation repaired
    #: from the margin) or "refetch" (escape hatch re-query).
    origin: str = "subscribe"
    #: Monotonic per-subscription state version.
    generation: int = 0
    degraded: bool = False


class PatchResponse:
    """A response assembled from subscription state (zero node accesses).

    Satisfies the :class:`~repro.core.api.QueryResponse` protocol so a
    :class:`~repro.core.client.MobileClient` can cache it exactly like
    a served answer.
    """

    __slots__ = ("result", "region", "detail")

    def __init__(self, result, region, detail: ContinuousDetail):
        self.result = list(result)
        self.region = region
        self.detail = detail

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + self.region.transfer_bytes()


@dataclass
class SubscriptionUpdate:
    """One server push.  ``response`` is the **full** latest state for
    a ``"patch"``; ``None`` for an ``"invalidate"`` (the client must
    re-query).  ``coalesced`` counts older updates this one replaced
    under backpressure; ``transfer_bytes`` is the modelled wire cost of
    the *delta* (added points + removed ids + region)."""

    seq: int
    kind: str  # "patch" | "invalidate"
    reason: str
    response: Optional[PatchResponse] = None
    coalesced: int = 0
    transfer_bytes: int = INVALIDATE_BYTES


# ----------------------------------------------------------------------
# per-kind maintained state
# ----------------------------------------------------------------------
def _dist(a, b) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


class _KnnState:
    __slots__ = ("k", "anchor", "horizon", "point", "candidates")

    def __init__(self, k: int, anchor: Tuple[float, float], horizon: float,
                 point: Tuple[float, float],
                 candidates: Dict[int, LeafEntry]):
        self.k = k
        self.anchor = anchor
        self.horizon = horizon
        self.point = point
        self.candidates = candidates


class _WindowState:
    __slots__ = ("focus", "width", "height", "result", "rect")

    def __init__(self, focus, width: float, height: float,
                 result: Dict[int, LeafEntry], rect: Optional[Rect]):
        self.focus = (float(focus[0]), float(focus[1]))
        self.width = width
        self.height = height
        self.result = result
        self.rect = rect


class _RangeState:
    __slots__ = ("center", "radius", "result", "validity")

    def __init__(self, center, radius: float,
                 result: Dict[int, LeafEntry], validity: Optional[float]):
        self.center = (float(center[0]), float(center[1]))
        self.radius = radius
        self.result = result
        self.validity = validity


def _knn_served(state: _KnnState, universe: Rect):
    """Top-k + patched region at ``state.point``, or ``None`` when the
    margin cannot prove the candidate set covers the true top-k."""
    point = state.point
    cands = sorted(state.candidates.values(),
                   key=lambda e: (_dist(e.point, point), e.oid))
    k = state.k
    if len(cands) < k:
        return None
    members, rest = cands[:k], cands[k:]
    d_k = _dist(members[-1].point, point)
    if math.isinf(state.horizon):
        # The candidates are the whole dataset: always serveable.
        slack = math.inf
    else:
        slack = state.horizon - _dist(state.anchor, point)
        if d_k >= slack:
            return None  # a non-candidate could undercut the k-th member
    radius = math.inf if math.isinf(slack) else (slack - d_k) / 2.0
    radius = min(radius, math.hypot(universe.width, universe.height))
    if radius <= 0.0:
        return None
    disk = ValidityDisk(point, radius)
    if not rest:
        return members, disk
    pairs = [(m, r) for m in members for r in rest]
    try:
        fences = NNValidityRegion(pairs, universe)
    except ValueError:  # coincident member/non-member: bisector undefined
        return None
    return members, CompositeValidityRegion([fences, disk])


def _knn_apply(state: _KnnState, m: Mutation) -> str:
    """Fold one mutation into the candidate set (idempotent by oid)."""
    if m.op == "insert":
        if m.oid in state.candidates:
            return "skip"
        if _dist((m.x, m.y), state.anchor) >= state.horizon:
            return "skip"  # invariant untouched, old region still sound
        state.candidates[m.oid] = m.entry
        return "patch"  # region must shrink against the newcomer
    if m.oid not in state.candidates:
        return "skip"
    was_member = m.oid in {
        e.oid for e in sorted(
            state.candidates.values(),
            key=lambda e: (_dist(e.point, state.point), e.oid))[:state.k]}
    del state.candidates[m.oid]
    # A deleted non-member only removes a competitor: the shipped
    # result and region both stay sound without a push.
    return "patch" if was_member else "silent"


def _ordered(result: Dict[int, LeafEntry]) -> List[LeafEntry]:
    return sorted(result.values(), key=lambda e: e.oid)


def _window_apply(state: _WindowState, m: Mutation, old_region):
    zone = Rect(m.x - state.width / 2.0, m.y - state.height / 2.0,
                m.x + state.width / 2.0, m.y + state.height / 2.0)
    if m.op == "insert":
        if m.oid in state.result:
            return ("skip",)
        if zone.contains_point(state.focus):
            state.result[m.oid] = m.entry
            if state.rect is None:
                return ("exhausted",)
            shrunk = state.rect.intersection(zone)
            if shrunk is None:
                return ("exhausted",)
            state.rect = shrunk
            return ("patch", _ordered(state.result),
                    WindowValidityRegion(shrunk))
        bound = state.rect
        if bound is None:
            get = getattr(old_region, "mbr", None)
            bound = get() if get is not None else None
        if bound is None or zone.intersects(bound):
            if state.rect is None:
                return ("exhausted",)
            state.rect = _cut_away(state.rect, zone, state.focus)
            return ("patch", _ordered(state.result),
                    WindowValidityRegion(state.rect))
        return ("skip",)
    if m.oid not in state.result:
        return ("skip",)
    del state.result[m.oid]
    # A member was in the window for every focus in the region, so the
    # region survives the delete unchanged.
    region = (WindowValidityRegion(state.rect)
              if state.rect is not None else old_region)
    return ("patch", _ordered(state.result), region)


def _range_apply(state: _RangeState, m: Mutation):
    if state.validity is None:
        return ("exhausted",)
    if m.op == "insert":
        if m.oid in state.result:
            return ("skip",)
        d = _dist((m.x, m.y), state.center)
        if d <= state.radius:
            state.result[m.oid] = m.entry
            state.validity = min(state.validity, state.radius - d)
        else:
            cap = d - state.radius
            if cap >= state.validity:
                return ("skip",)
            state.validity = cap
    else:
        if m.oid not in state.result:
            return ("skip",)
        # Dropping a member can only loosen the inner bound; keeping
        # the old validity radius stays sound.
        del state.result[m.oid]
    state.validity = max(state.validity, 0.0)
    return ("patch", _ordered(state.result),
            RangeValidityRegion(Point(*state.center), state.validity))


# ----------------------------------------------------------------------
# the subscription object (server side of the push channel)
# ----------------------------------------------------------------------
class Subscription:
    """One registered continuous query.

    The client polls :meth:`poll`/:meth:`drain` for pushed
    :class:`SubscriptionUpdate` objects, calls :meth:`move` when it
    relocates, and :meth:`close` when done.  ``broken`` subscriptions
    stop receiving patches — their final queued update is an
    ``invalidate`` — and must be re-established.
    """

    def __init__(self, sid: int, request: QueryRequest,
                 hub: "SubscriptionHub", capacity: int):
        self.sid = sid
        self.request = request
        self.kind = request.kind
        self.capacity = capacity
        self.broken = False
        self.broken_reason: Optional[str] = None
        self.closed = False
        #: Latest server-side view (a :class:`PatchResponse`).
        self.response: Optional[PatchResponse] = None
        self.generation = 0
        self.pushes = 0
        self.patches = 0
        self.invalidates = 0
        self.coalesced = 0
        self.polls = 0
        self.moves_patched = 0
        self.moves_refetched = 0
        self._hub = hub
        self._queue: Deque[SubscriptionUpdate] = deque()
        self._lock = threading.RLock()
        self._seq = itertools.count(1)
        self._state = None
        self._needs_refresh = False

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def poll(self) -> Optional[SubscriptionUpdate]:
        """Pop the oldest queued update (None when the queue is empty)."""
        with self._lock:
            self.polls += 1
            return self._queue.popleft() if self._queue else None

    def drain(self) -> List[SubscriptionUpdate]:
        """Pop every queued update, oldest first."""
        with self._lock:
            self.polls += 1
            out = list(self._queue)
            self._queue.clear()
            return out

    def move(self, location):
        """Re-anchor at ``location``; patched from the margin when
        sound, otherwise a full re-query.  Returns the response."""
        return self._hub.move(self, location)

    def close(self) -> None:
        self._hub.unsubscribe(self)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "sid": self.sid,
                "kind": self.kind,
                "pending": len(self._queue),
                "generation": self.generation,
                "pushes": self.pushes,
                "patches": self.patches,
                "invalidates": self.invalidates,
                "coalesced": self.coalesced,
                "polls": self.polls,
                "moves_patched": self.moves_patched,
                "moves_refetched": self.moves_refetched,
                "broken": self.broken,
                "broken_reason": self.broken_reason,
            }

    # -- hub internals (caller holds self._lock) -----------------------
    def _enqueue(self, update: SubscriptionUpdate) -> None:
        if len(self._queue) >= self.capacity:
            # Latest wins: every update carries full state, so replacing
            # the tail merges histories without losing the final state.
            tail = self._queue.pop()
            update.coalesced = tail.coalesced + 1
            self.coalesced += 1
        self._queue.append(update)
        self.pushes += 1
        if update.kind == "patch":
            self.patches += 1
        else:
            self.invalidates += 1


# ----------------------------------------------------------------------
# the hub: registry + push fan-out
# ----------------------------------------------------------------------
class SubscriptionHub:
    """Registry and push fan-out for continuous queries.

    ``owner`` is whoever executes the escape-hatch queries — a
    :class:`~repro.service.service.QueryService` or
    :class:`~repro.service.replica.ReplicaSet`; it only needs
    ``answer(request)`` and ``universe``.  The owner calls
    :meth:`notify` after every applied mutation (on the mutating
    thread, so pushes are enqueued before the mutation call returns).
    """

    def __init__(self, owner, config: Optional[ContinuousConfig] = None,
                 metrics=None, events: Optional[EventLog] = None):
        self.owner = owner
        self.config = config if config is not None else ContinuousConfig()
        self.metrics = metrics
        self.events = events
        self._lock = threading.RLock()
        self._subs: Dict[int, Subscription] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    # -- registration --------------------------------------------------
    def subscribe(self, request: QueryRequest, *,
                  queue_capacity: Optional[int] = None) -> Subscription:
        """Register ``request`` as a continuous query.

        Runs the initial (margin-widened, for kNN) fetch through the
        owner and returns a live :class:`Subscription` whose
        ``response`` answers the request.
        """
        capacity = queue_capacity or self.config.queue_capacity
        # Holding the hub lock across fetch+insert serializes with
        # notify(): a mutation is either visible to the fetch or
        # delivered as a (by-oid idempotent) patch afterwards.
        sem = query_semantics(request)
        if not sem.supports_subscriptions:
            raise ValueError(f"cannot subscribe a {request.kind!r} request")
        with self._lock:
            sub = Subscription(next(self._ids), request, self, capacity)
            sem.subscribe_init(self, sub, request)
            self._subs[sub.sid] = sub
        self._count("service.continuous.subscriptions")
        self._emit("push.subscribe", sid=sub.sid, kind=request.kind)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            self._subs.pop(sub.sid, None)
        with sub._lock:
            sub.closed = True

    # -- mutation fan-out ----------------------------------------------
    def notify(self, mutation: Mutation) -> None:
        """Fan one applied mutation out to every live subscription.

        Per-subscription work is O(candidates): a re-rank plus a local
        region rebuild — never a tree traversal.  A subscription whose
        patch raises is marked broken (with one final invalidate push),
        so the failure of one subscriber cannot poison the mutation
        path or its neighbours.
        """
        with self._lock:
            subs = list(self._subs.values())
        for sub in subs:
            try:
                self._apply(sub, mutation)
            except Exception as exc:  # no silent staleness, ever
                self._break(sub, f"{type(exc).__name__}: {exc}")

    def _apply(self, sub: Subscription, m: Mutation) -> None:
        with sub._lock:
            if sub.closed or sub.broken:
                return
            if sub._needs_refresh:
                # Margin already exhausted: keep the client informed
                # (coalesced) until it re-queries via move().
                self._push_invalidate(sub, "stale")
                return
            outcome = query_semantics(sub.request).continuous_apply(
                self, sub, m)
            if outcome[0] in ("skip", "silent"):
                return
            if outcome[0] == "exhausted":
                sub._needs_refresh = True
                self._push_invalidate(sub, "margin_exhausted")
                return
            _, result, region = outcome
            self._push_patch(sub, result, region, reason=m.op)

    # -- client relocation ---------------------------------------------
    def move(self, sub: Subscription, location):
        """Serve ``sub`` at a new ``location``.

        kNN moves are repaired from the candidate margin when the
        anchor/horizon condition holds (zero node accesses); window and
        range moves inside the current region re-serve the cached view.
        Anything else takes the escape hatch: a full re-query that
        re-anchors the subscription.
        """
        loc = (float(location[0]), float(location[1]))
        with sub._lock:
            if sub.closed:
                raise RuntimeError("subscription is closed")
            if sub.broken:
                raise RuntimeError(
                    f"subscription is broken: {sub.broken_reason}")
            if not sub._needs_refresh and sub.response is not None:
                patched = query_semantics(sub.request).continuous_move(
                    self, sub, loc)
                if patched is not None:
                    sub.moves_patched += 1
                    self._count("service.continuous.moves_patched")
                    if patched[0] == "serve":
                        return patched[1]
                    _, result, region = patched
                    return self._set_response(sub, result, region,
                                              origin="move")
            return self._refetch(sub, loc)

    def _refetch(self, sub: Subscription, loc) -> PatchResponse:
        sub.moves_refetched += 1
        self._count("service.continuous.moves_refetched")
        sem = query_semantics(sub.request)
        request = sem.refetch_request(sub.request, loc)
        sem.subscribe_init(self, sub, request)
        sub.request = request
        self._emit("push.refetch", sid=sub.sid, kind=sub.kind)
        return sub.response

    # -- initial / escape-hatch fetches --------------------------------
    def _init_knn(self, sub: Subscription, request) -> None:
        fetch = replace(request, k=request.k + self.config.margin,
                        previous_ids=None)
        response = self.owner.answer(fetch)
        cands = list(response.result)
        anchor = (float(request.location[0]), float(request.location[1]))
        # Fewer candidates than asked for means the fetch returned the
        # whole dataset: no non-candidate exists, the horizon is open.
        horizon = math.inf
        if len(cands) >= fetch.k:
            horizon = max(_dist(e.point, anchor) for e in cands)
        sub._state = _KnnState(k=request.k, anchor=anchor, horizon=horizon,
                               point=anchor,
                               candidates={e.oid: e for e in cands})
        sub._needs_refresh = False
        served = _knn_served(sub._state, self.owner.universe)
        if served is not None:
            members, region = served
        elif len(cands) < request.k:
            # The answer is "everything there is"; the fetched region
            # (however the server shaped it) bounds that claim.
            members, region = cands, response.region
        else:
            # Distance tie exactly at the horizon: correct here, but
            # nowhere else provably — serve a point-sized region.
            members, region = (sorted(
                cands, key=lambda e: (_dist(e.point, anchor), e.oid))[:request.k],
                ValidityDisk(anchor, 0.0))
        self._set_response(sub, members, region, origin="subscribe")

    def _init_window(self, sub: Subscription, request) -> None:
        response = self.owner.answer(replace(request, previous_ids=None))
        sub._state = _WindowState(
            request.focus, request.width, request.height,
            {e.oid: e for e in response.result},
            getattr(response.region, "rect", None))
        sub._needs_refresh = False
        self._set_response(sub, list(response.result), response.region,
                           origin="subscribe")

    def _init_range(self, sub: Subscription, request) -> None:
        response = self.owner.answer(request)
        sub._state = _RangeState(
            request.location, request.radius,
            {e.oid: e for e in response.result},
            getattr(response.region, "radius", None))
        sub._needs_refresh = False
        self._set_response(sub, list(response.result), response.region,
                           origin="subscribe")

    # -- push plumbing -------------------------------------------------
    def _set_response(self, sub: Subscription, result, region,
                      origin: str) -> PatchResponse:
        sub.generation += 1
        response = PatchResponse(result, region, ContinuousDetail(
            query_kind=sub.kind, origin=origin, generation=sub.generation))
        sub.response = response
        return response

    def _push_patch(self, sub: Subscription, result, region,
                    reason: str) -> None:
        previous = ({e.oid for e in sub.response.result}
                    if sub.response is not None else set())
        current = {e.oid for e in result}
        delta = (POINT_BYTES * len(current - previous)
                 + 4 * len(previous - current)
                 + region.transfer_bytes())
        response = self._set_response(sub, result, region, origin="patch")
        sub._enqueue(SubscriptionUpdate(
            seq=next(sub._seq), kind="patch", reason=reason,
            response=response, transfer_bytes=delta))
        self._count("service.continuous.pushes")
        self._count("service.continuous.patches")
        self._emit("push.patch", sid=sub.sid, kind=sub.kind, reason=reason)

    def _push_invalidate(self, sub: Subscription, reason: str) -> None:
        sub._enqueue(SubscriptionUpdate(
            seq=next(sub._seq), kind="invalidate", reason=reason))
        self._count("service.continuous.pushes")
        self._count("service.continuous.invalidates")
        self._emit("push.invalidate", sid=sub.sid, kind=sub.kind,
                   reason=reason)

    def _break(self, sub: Subscription, reason: str) -> None:
        with sub._lock:
            if sub.broken:
                return
            sub.broken = True
            sub.broken_reason = reason
            self._push_invalidate(sub, "broken")
        self._count("service.continuous.broken")
        self._emit("push.broken", sid=sub.sid, reason=reason)

    # -- observability -------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            subs = list(self._subs.values())
        rows = [s.snapshot() for s in subs]
        return {
            "subscriptions": len(rows),
            "broken": sum(1 for r in rows if r["broken"]),
            "pushes": sum(r["pushes"] for r in rows),
            "patches": sum(r["patches"] for r in rows),
            "invalidates": sum(r["invalidates"] for r in rows),
            "coalesced": sum(r["coalesced"] for r in rows),
            "moves_patched": sum(r["moves_patched"] for r in rows),
            "moves_refetched": sum(r["moves_refetched"] for r in rows),
            "per_subscription": rows,
        }

    def close(self) -> None:
        with self._lock:
            subs = list(self._subs.values())
            self._subs.clear()
        for sub in subs:
            with sub._lock:
                sub.closed = True

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit("push", event=event, **fields)
