"""Thread-safe metrics primitives for the query service.

One :class:`MetricsRegistry` is shared by every layer of a running
service: the server reports per-query latencies and bytes on the wire,
clients report cache hits and misses, and the disk/buffer layers are
folded in when a snapshot is taken.  Everything a snapshot returns is
plain JSON-serializable data, so benchmark harnesses and the CLI can
dump it directly.

The primitives are deliberately small:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a last-write-wins float;
* :class:`Histogram` — a bounded sample reservoir with exact
  count/sum/min/max and approximate percentiles (p50/p95/p99).

The histogram keeps at most ``max_samples`` raw observations; once
full, new observations overwrite pseudo-randomly chosen slots (a
deterministic multiplicative hash of the observation count), which
keeps memory bounded under sustained load while remaining reproducible
run to run.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Knuth's multiplicative hash constant, used to pick reservoir slots.
_HASH = 2654435761


class Counter:
    """A monotonically increasing counter.

    ``lock`` lets a registry share one data lock across all its
    metrics, which is what makes a registry snapshot a consistent
    point-in-time read; standalone counters default to a private lock.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None):
        self.name = name
        self._value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (buffer occupancy, fleet size…)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None):
        self.name = name
        self._value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A sample distribution with exact moments and quantile estimates."""

    __slots__ = ("name", "_samples", "_lock", "_max_samples",
                 "count", "total", "min", "max")

    def __init__(self, name: str, max_samples: int = 65536,
                 lock: Optional[threading.Lock] = None):
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._lock = lock if lock is not None else threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                self._samples[(self.count * _HASH) % self._max_samples] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100) of the retained samples.

        Nearest-rank on the sorted reservoir; 0.0 when nothing was
        recorded yet.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, float]:
        """Snapshot body; the caller must hold this histogram's lock."""
        ordered = sorted(self._samples)
        count, total = self.count, self.total
        lo, hi = self.min, self.max

        def q(p: float) -> float:
            if not ordered:
                return 0.0
            rank = min(len(ordered) - 1,
                       int(round(p / 100.0 * (len(ordered) - 1))))
            return ordered[rank]

        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "p50": q(50.0),
            "p95": q(95.0),
            "p99": q(99.0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms.

    Names are free-form dotted strings (``query.latency_ms.knn``); the
    registry imposes no schema, but a name registered as one kind cannot
    be re-registered as another.

    Every metric the registry creates shares one **data lock**, so
    :meth:`snapshot` is a single consistent point-in-time read: no
    update can land between reading one metric and the next, and
    derived cross-metric values (hit ratios, per-kind breakdowns) are
    computed over numbers that were all true at the same instant.
    """

    def __init__(self):
        #: Guards the name→metric dicts (registration structure).
        self._lock = threading.Lock()
        #: Guards every registered metric's data (shared by them all).
        self._data_lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_kind(name, self._counters)
            if name not in self._counters:
                self._counters[name] = Counter(name, lock=self._data_lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_kind(name, self._gauges)
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, lock=self._data_lock)
            return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 65536) -> Histogram:
        with self._lock:
            self._check_kind(name, self._histograms)
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, max_samples,
                                                   lock=self._data_lock)
            return self._histograms[name]

    def _check_kind(self, name: str, expected_home: Dict) -> None:
        for home in (self._counters, self._gauges, self._histograms):
            if home is not expected_home and name in home:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Everything, as one consistent JSON-serializable snapshot.

        All values are read under the shared data lock in a single
        critical section, so the returned numbers are mutually
        consistent (e.g. a hits counter never outruns its probes
        counter within one snapshot).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        with self._data_lock:
            return {
                "counters": {n: c._value
                             for n, c in sorted(counters.items())},
                "gauges": {n: g._value for n, g in sorted(gauges.items())},
                "histograms": {n: h._snapshot_locked()
                               for n, h in sorted(histograms.items())},
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every registered metric (a fresh session)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
