"""Thread-safe dimensional metrics primitives for the query service.

One :class:`MetricsRegistry` is shared by every layer of a running
service: the server reports per-query latencies and bytes on the wire,
clients report cache hits and misses, and the disk/buffer layers are
folded in when a snapshot is taken.  Everything a snapshot returns is
plain JSON-serializable data, so benchmark harnesses and the CLI can
dump it directly.

Metrics are **dimensional**: every accessor takes an optional
``labels`` mapping (``registry.counter("service.queries",
labels={"query_kind": "knn"})``), and each distinct (family, label set)
pair is an independent time series.  Series are stored under a
canonical key rendered by :func:`series_key` —
``service.queries{query_kind="knn"}`` — which is exactly the
Prometheus exposition syntax, so exporters can recover (family,
labels) with :func:`parse_series_key` instead of pattern-matching
dotted suffixes.  A family registered as one kind (counter / gauge /
histogram) cannot be re-registered as another, regardless of labels.

The primitives are deliberately small:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a last-write-wins float;
* :class:`Histogram` — a bounded sample reservoir with exact
  count/sum/min/max, approximate percentiles (p50/p95/p99), and —
  when constructed with ``buckets`` — exact cumulative Prometheus
  histogram bucket counts.

The histogram keeps at most ``max_samples`` raw observations; once
full, new observations overwrite pseudo-randomly chosen slots (a
deterministic multiplicative hash of the observation count), which
keeps memory bounded under sustained load while remaining reproducible
run to run.  Bucket counts are exact regardless of reservoir overflow;
percentiles are estimated from the reservoir, and snapshots report
``retained_samples`` next to ``count`` so consumers can tell exact
percentiles (``retained_samples == count``) from estimates.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "series_key",
    "parse_series_key",
]

#: Knuth's multiplicative hash constant, used to pick reservoir slots.
_HASH = 2654435761

#: Default bucket upper bounds (milliseconds) for latency histograms.
#: Roughly log-spaced from sub-millisecond cache hits to multi-second
#: degraded tails; ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)

_LABEL_KEY = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SERIES_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
            .replace('"', r'\"').replace("\n", r"\n"))


def _unescape_label_value(value: str) -> str:
    return (value.replace(r"\n", "\n")
            .replace(r'\"', '"').replace(r"\\", "\\"))


def series_key(name: str, labels: Optional[Mapping[str, object]] = None) -> str:
    """Canonical storage key for one series of a metric family.

    ``series_key("service.queries", {"query_kind": "knn"})`` →
    ``'service.queries{query_kind="knn"}'``.  Label keys are sorted, so
    equal label sets always produce the same key; an empty / missing
    label set yields the bare family name.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        if not _LABEL_KEY.match(key):
            raise ValueError(f"invalid label key {key!r}")
        parts.append(f'{key}="{_escape_label_value(str(labels[key]))}"')
    return name + "{" + ",".join(parts) + "}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_key`: ``key`` → ``(family, labels)``."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    family = key[:brace]
    body = key[brace + 1:key.rfind("}")]
    labels = {m.group(1): _unescape_label_value(m.group(2))
              for m in _SERIES_LABEL.finditer(body)}
    return family, labels


def _labels_match(labels: Mapping[str, str], match: Mapping[str, object]) -> bool:
    return all(labels.get(k) == str(v) for k, v in match.items())


class Counter:
    """A monotonically increasing counter.

    ``lock`` lets a registry share one data lock across all its
    metrics, which is what makes a registry snapshot a consistent
    point-in-time read; standalone counters default to a private lock.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None,
                 labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({series_key(self.name, self.labels)}={self._value})"


class Gauge:
    """A value that can go up and down (buffer occupancy, fleet size…)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None,
                 labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({series_key(self.name, self.labels)}={self._value})"


def bucket_bound_str(bound: float) -> str:
    """Prometheus ``le`` rendering of a bucket upper bound (``+Inf`` aware)."""
    if bound == float("inf"):
        return "+Inf"
    return format(bound, "g")


class Histogram:
    """A sample distribution with exact moments and quantile estimates.

    When ``buckets`` (a strictly ascending sequence of upper bounds) is
    given, the histogram additionally keeps exact cumulative bucket
    counts in the native Prometheus shape; an implicit ``+Inf`` bucket
    always closes the set.
    """

    __slots__ = ("name", "labels", "_samples", "_lock", "_max_samples",
                 "_bounds", "_bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, max_samples: int = 65536,
                 lock: Optional[threading.Lock] = None,
                 labels: Optional[Mapping[str, str]] = None,
                 buckets: Optional[Sequence[float]] = None):
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._lock = lock if lock is not None else threading.Lock()
        if buckets is not None:
            bounds = [float(b) for b in buckets if b != float("inf")]
            if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
                raise ValueError("buckets must be strictly ascending and "
                                 "non-empty")
            self._bounds: Optional[List[float]] = bounds
            # One non-cumulative count per bound, plus the +Inf overflow.
            self._bucket_counts: Optional[List[int]] = [0] * (len(bounds) + 1)
        else:
            self._bounds = None
            self._bucket_counts = None
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @property
    def bucket_bounds(self) -> Optional[Tuple[float, ...]]:
        return tuple(self._bounds) if self._bounds is not None else None

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if self._bounds is not None:
                self._bucket_counts[bisect.bisect_left(self._bounds, value)] += 1
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                self._samples[(self.count * _HASH) % self._max_samples] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100) of the retained samples.

        Nearest-rank on the sorted reservoir; 0.0 when nothing was
        recorded yet.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, object]:
        """Snapshot body; the caller must hold this histogram's lock."""
        ordered = sorted(self._samples)
        count, total = self.count, self.total
        lo, hi = self.min, self.max

        def q(p: float) -> float:
            if not ordered:
                return 0.0
            rank = min(len(ordered) - 1,
                       int(round(p / 100.0 * (len(ordered) - 1))))
            return ordered[rank]

        snap: Dict[str, object] = {
            "count": count,
            "retained_samples": len(ordered),
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "p50": q(50.0),
            "p95": q(95.0),
            "p99": q(99.0),
        }
        if self._bounds is not None:
            cumulative: Dict[str, int] = {}
            running = 0
            for bound, n in zip(self._bounds, self._bucket_counts):
                running += n
                cumulative[bucket_bound_str(bound)] = running
            cumulative["+Inf"] = count
            snap["buckets"] = cumulative
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({series_key(self.name, self.labels)}, n={self.count})"


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms.

    Family names are free-form dotted strings (``service.latency_ms``);
    the registry imposes no schema, but a family registered as one kind
    cannot be re-registered as another — even under different labels.
    Each distinct (family, label set) is its own series, stored under
    its canonical :func:`series_key`.

    Every metric the registry creates shares one **data lock**, so
    :meth:`snapshot` is a single consistent point-in-time read: no
    update can land between reading one metric and the next, and
    derived cross-metric values (hit ratios, per-kind breakdowns) are
    computed over numbers that were all true at the same instant.
    """

    def __init__(self):
        #: Guards the name→metric dicts (registration structure).
        self._lock = threading.Lock()
        #: Guards every registered metric's data (shared by them all).
        self._data_lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Family name → "counter" | "gauge" | "histogram".
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str,
                labels: Optional[Mapping[str, object]] = None) -> Counter:
        key = series_key(name, labels)
        with self._lock:
            self._check_kind(name, "counter")
            if key not in self._counters:
                self._counters[key] = Counter(
                    name, lock=self._data_lock,
                    labels={k: str(v) for k, v in (labels or {}).items()})
            return self._counters[key]

    def gauge(self, name: str,
              labels: Optional[Mapping[str, object]] = None) -> Gauge:
        key = series_key(name, labels)
        with self._lock:
            self._check_kind(name, "gauge")
            if key not in self._gauges:
                self._gauges[key] = Gauge(
                    name, lock=self._data_lock,
                    labels={k: str(v) for k, v in (labels or {}).items()})
            return self._gauges[key]

    def histogram(self, name: str, max_samples: int = 65536,
                  labels: Optional[Mapping[str, object]] = None,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create one histogram series.

        ``buckets`` applies on first creation of the series; subsequent
        lookups return the existing series unchanged, so every series
        of a family should be created with the same bucket layout.
        """
        key = series_key(name, labels)
        with self._lock:
            self._check_kind(name, "histogram")
            if key not in self._histograms:
                self._histograms[key] = Histogram(
                    name, max_samples, lock=self._data_lock,
                    labels={k: str(v) for k, v in (labels or {}).items()},
                    buckets=buckets)
            return self._histograms[key]

    def _check_kind(self, name: str, kind: str) -> None:
        registered = self._kinds.get(name)
        if registered is None:
            self._kinds[name] = kind
        elif registered != kind:
            raise ValueError(
                f"metric family {name!r} already registered as a "
                f"{registered}, not a {kind}")

    # ------------------------------------------------------------------
    # family aggregation
    # ------------------------------------------------------------------
    def counter_total(self, name: str, **match: object) -> int:
        """Sum of a counter family across label sets matching ``match``.

        ``counter_total("service.queries", query_kind="knn")`` sums
        every ``service.queries`` series whose labels include
        ``query_kind="knn"``; with no ``match`` it sums the whole
        family (including the unlabeled series, when present).
        """
        with self._lock:
            series = [c for c in self._counters.values() if c.name == name]
        with self._data_lock:
            return sum(c._value for c in series
                       if _labels_match(c.labels, match))

    def histogram_merged(self, name: str, **match: object) -> Dict[str, object]:
        """One merged snapshot of a histogram family across label sets.

        Counts, sums and bucket counts add exactly; min/max combine
        exactly; percentiles are re-estimated from the concatenated
        reservoirs.  Useful for reading e.g. per-kind latency
        regardless of the ``degraded`` dimension.
        """
        with self._lock:
            series = [h for h in self._histograms.values()
                      if h.name == name and _labels_match(h.labels, match)]
        with self._data_lock:
            samples: List[float] = []
            count = 0
            total = 0.0
            lo: Optional[float] = None
            hi: Optional[float] = None
            merged_buckets: Dict[str, int] = {}
            any_buckets = False
            for h in series:
                samples.extend(h._samples)
                count += h.count
                total += h.total
                if h.min is not None:
                    lo = h.min if lo is None else min(lo, h.min)
                if h.max is not None:
                    hi = h.max if hi is None else max(hi, h.max)
                snap = h._snapshot_locked()
                if "buckets" in snap:
                    any_buckets = True
                    for le, n in snap["buckets"].items():
                        merged_buckets[le] = merged_buckets.get(le, 0) + n
        samples.sort()

        def q(p: float) -> float:
            if not samples:
                return 0.0
            rank = min(len(samples) - 1,
                       int(round(p / 100.0 * (len(samples) - 1))))
            return samples[rank]

        merged: Dict[str, object] = {
            "count": count,
            "retained_samples": len(samples),
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "p50": q(50.0),
            "p95": q(95.0),
            "p99": q(99.0),
        }
        if any_buckets:
            merged["buckets"] = merged_buckets
        return merged

    def family_labels(self, name: str) -> List[Dict[str, str]]:
        """Every label set registered for a family, in creation order."""
        with self._lock:
            for home in (self._counters, self._gauges, self._histograms):
                found = [dict(m.labels) for m in home.values()
                         if m.name == name]
                if found:
                    return found
        return []

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Everything, as one consistent JSON-serializable snapshot.

        Keys are canonical series keys (bare family name for unlabeled
        series, ``family{k="v"}`` for labeled ones — parse with
        :func:`parse_series_key`).  All values are read under the
        shared data lock in a single critical section, so the returned
        numbers are mutually consistent (e.g. a hits counter never
        outruns its probes counter within one snapshot).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        with self._data_lock:
            return {
                "counters": {n: c._value
                             for n, c in sorted(counters.items())},
                "gauges": {n: g._value for n, g in sorted(gauges.items())},
                "histograms": {n: h._snapshot_locked()
                               for n, h in sorted(histograms.items())},
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every registered metric (a fresh session)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._kinds.clear()
