"""The instrumented query service: a concurrent front-end to the server.

:class:`QueryService` is what a deployment puts between its fleet of
mobile clients and a :class:`~repro.core.server.LocationServer`.  Per
query it produces a structured :class:`~repro.service.tracing.QueryTrace`
— wall-clock spans for index descent, TPNN vertex probing, bisector
clipping and serialization, with the phase-attributed node accesses the
simulated disk charged to the query folded into the matching span — and
it reports counters and latency/bytes histograms into one
:class:`~repro.service.metrics.MetricsRegistry` shared by every layer.

Concurrency model: the service accepts requests from any number of
threads; the index/disk portion of each query runs under the service
lock (the paper's server owns a single simulated disk, whose phase
attribution and buffer state are inherently serial), while cache
checks, serialization accounting, metrics and tracing happen outside
it.  :meth:`dispatch_batch` answers a whole batch through an executor —
the per-tick dispatch unit the simulated fleet uses.

The service quacks like a :class:`LocationServer` where it matters
(``answer``, ``epoch``, updates), so a
:class:`~repro.core.client.MobileClient` can be pointed straight at it
and every query it issues is traced and metered.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Executor
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.core.api import (
    KNNRequest,
    QueryRequest,
    QueryResponse,
    RangeRequest,
    WindowRequest,
)
from repro.core.server import DeltaResponse, LocationServer
from repro.service.metrics import MetricsRegistry
from repro.service.tracing import (
    SPAN_NAMES,
    QueryTrace,
    Span,
    TraceBuffer,
    now,
)

__all__ = ["QueryService"]


class QueryService:
    """An instrumented, thread-safe facade over a :class:`LocationServer`."""

    def __init__(self, server: LocationServer,
                 metrics: Optional[MetricsRegistry] = None,
                 trace_capacity: int = 256):
        self.server = server
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.traces = TraceBuffer(trace_capacity)
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._started_at = now()

    # ------------------------------------------------------------------
    # the LocationServer surface clients rely on
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.server.epoch

    @property
    def universe(self):
        return self.server.universe

    def insert_object(self, oid: int, x: float, y: float) -> None:
        with self._lock:
            self.server.insert_object(oid, x, y)
        self.metrics.counter("service.updates.insert").inc()

    def delete_object(self, oid: int, x: float, y: float) -> bool:
        with self._lock:
            removed = self.server.delete_object(oid, x, y)
        self.metrics.counter("service.updates.delete").inc()
        return removed

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed request, tracing and metering it."""
        kind = getattr(request, "kind", type(request).__name__)
        trace = QueryTrace(
            trace_id=getattr(request, "trace_id", None) or f"q-{next(self._ids)}",
            kind=kind,
            started_at=now(),
        )
        phase_events: List[tuple] = []
        t0 = perf_counter()

        def on_phase(name: str, elapsed: float) -> None:
            phase_events.append((name, perf_counter() - t0 - elapsed, elapsed))

        try:
            with self._lock:
                before = self.server.io_stats.node_accesses_by_phase()
                before_pf = self.server.io_stats.page_faults_by_phase()
                previous_listener = self.server.tree.disk.set_phase_listener(
                    on_phase)
                try:
                    response = self.server.answer(request)
                finally:
                    self.server.tree.disk.set_phase_listener(previous_listener)
                after = self.server.io_stats.node_accesses_by_phase()
                after_pf = self.server.io_stats.page_faults_by_phase()
        except Exception as exc:
            trace.duration_ms = (perf_counter() - t0) * 1e3
            trace.error = f"{type(exc).__name__}: {exc}"
            self.traces.append(trace)
            self.metrics.counter("service.errors").inc()
            self.metrics.counter(f"service.errors.{kind}").inc()
            raise

        trace.node_accesses = _delta(before, after)
        trace.page_faults = _delta(before_pf, after_pf)
        for phase, offset, elapsed in phase_events:
            trace.spans.append(Span(
                name=SPAN_NAMES.get(phase, phase),
                offset_ms=offset * 1e3,
                duration_ms=elapsed * 1e3,
                meta={
                    "phase": phase,
                    "node_accesses": trace.node_accesses.get(phase, 0),
                    "page_faults": trace.page_faults.get(phase, 0),
                },
            ))
        clip_seconds = getattr(response.detail, "clip_seconds", 0.0)
        if clip_seconds:
            trace.spans.append(Span(
                name="bisector_clipping",
                offset_ms=0.0,  # interleaved with tpnn_probing
                duration_ms=clip_seconds * 1e3,
            ))

        # Serialization: size the payload that would go on the wire.
        ser_start = perf_counter()
        transfer = response.transfer_bytes()
        result_size = len(response.result)
        if isinstance(response, DeltaResponse):
            result_size = len(response.added) + len(response.removed_ids)
        trace.spans.append(Span(
            name="serialization",
            offset_ms=(ser_start - t0) * 1e3,
            duration_ms=(perf_counter() - ser_start) * 1e3,
            meta={"transfer_bytes": transfer},
        ))
        trace.transfer_bytes = transfer
        trace.result_size = result_size
        trace.duration_ms = (perf_counter() - t0) * 1e3
        self.traces.append(trace)
        self._record(kind, trace,
                     delta=getattr(request, "previous_ids", None) is not None)
        return response

    def dispatch_batch(self, requests: Sequence[QueryRequest],
                       executor: Optional[Executor] = None
                       ) -> List[QueryResponse]:
        """Answer a batch of requests, preserving order.

        With an ``executor`` the batch fans out across its workers (the
        per-tick dispatch of a simulated client fleet); without one it
        runs inline.  Either way every query is individually traced.
        """
        self.metrics.counter("service.batches").inc()
        self.metrics.histogram("service.batch_size").record(len(requests))
        if executor is None:
            return [self.answer(r) for r in requests]
        return list(executor.map(self.answer, requests))

    # ------------------------------------------------------------------
    # convenience per-type methods (same names as the server)
    # ------------------------------------------------------------------
    def knn_query(self, location, k: int = 1):
        return self.answer(KNNRequest(tuple(location), k=k))

    def window_query(self, focus, width: float, height: float):
        return self.answer(WindowRequest(tuple(focus), width, height))

    def range_query(self, location, radius: float):
        return self.answer(RangeRequest(tuple(location), radius))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _record(self, kind: str, trace: QueryTrace, delta: bool) -> None:
        m = self.metrics
        m.counter(f"service.queries.{kind}").inc()
        m.counter("service.queries").inc()
        if delta:
            m.counter(f"service.queries.{kind}.delta").inc()
        m.counter("service.bytes_on_wire").inc(trace.transfer_bytes)
        m.histogram(f"service.latency_ms.{kind}").record(trace.duration_ms)
        m.histogram(f"service.transfer_bytes.{kind}").record(
            trace.transfer_bytes)
        m.histogram(f"service.result_size.{kind}").record(trace.result_size)
        for phase, count in trace.node_accesses.items():
            m.counter(f"service.node_accesses.{phase}").inc(count)
        for phase, count in trace.page_faults.items():
            m.counter(f"service.page_faults.{phase}").inc(count)

    def stats_snapshot(self) -> Dict[str, object]:
        """Everything observable about the running service, as JSON data.

        Includes the metrics registry (counters / gauges / histograms),
        the disk layer's phase-attributed access statistics, the buffer
        pool state, the server's epoch and query count, and the derived
        client cache-hit ratio when clients report into the registry.
        """
        disk = self.server.tree.disk
        buffer = disk.buffer
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        updates = counters.get("client.position_updates", 0)
        hits = counters.get("client.cache_answers", 0)
        return {
            "service": {
                "started_at": self._started_at,
                "uptime_seconds": now() - self._started_at,
                "queries": counters.get("service.queries", 0),
                "bytes_on_wire": counters.get("service.bytes_on_wire", 0),
                "cache_hit_ratio": hits / updates if updates else 0.0,
                "traces_retained": len(self.traces),
                "traces_dropped": self.traces.dropped,
            },
            "metrics": snap,
            "disk": disk.stats.as_dict(),
            "buffer": buffer.snapshot() if buffer is not None else None,
            "server": {
                "epoch": self.server.epoch,
                "queries_processed": self.server.queries_processed,
                "num_points": len(self.server.tree),
                "num_pages": self.server.tree.num_pages,
            },
        }

    def recent_traces(self, n: Optional[int] = None) -> List[QueryTrace]:
        return self.traces.recent(n)

    def reset_stats(self) -> None:
        """Zero the registry and the disk counters (buffer stays warm)."""
        self.metrics.reset()
        self.server.reset_io_stats()


def _delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    out = {}
    for phase, count in after.items():
        diff = count - before.get(phase, 0)
        if diff:
            out[phase] = diff
    return out
