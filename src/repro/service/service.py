"""The instrumented query service: a concurrent front-end to the server.

:class:`QueryService` is what a deployment puts between its fleet of
mobile clients and a :class:`~repro.core.server.LocationServer`.  Every
query runs under a propagated trace context
(:func:`repro.obs.context.start_trace`): the service opens the trace,
the layers below — cache probe, scatter-gather shard workers, the
R*-tree's simulated disk — attach their own child spans to it, and the
finished span *tree* is retained as a structured
:class:`~repro.service.tracing.QueryTrace`.  Alongside the trace, each
stage emits structured events into the service's
:class:`~repro.obs.events.EventLog` (query start/finish, cache
hit/miss, shard scatter, retries, breaker transitions, disk faults),
and counters and latency/bytes histograms land in one
:class:`~repro.service.metrics.MetricsRegistry` shared by every layer.

Concurrency model: the service accepts requests from any number of
threads; the index/disk portion of each query runs under the service
lock (the paper's server owns a single simulated disk, whose phase
attribution and buffer state are inherently serial — a
:class:`~repro.service.shard.ShardedServer` parallelizes *inside* that
critical section across its per-shard disks), while cache checks,
serialization accounting, metrics and tracing happen outside it.
:meth:`answer_many` answers a whole batch through an executor — the
per-tick dispatch unit the simulated fleet uses.

With a :class:`~repro.service.cache.ValidityCache` attached, every
cacheable request is first probed against the cached validity regions
(the ``cache_probe`` span): a hit is served with **zero node
accesses** — it never reaches the server, the breaker, or the retry
loop, which also means a warm cache keeps absorbing traffic while the
disk is tripped open.  Misses execute normally and the response is
admitted under the region it carries.

The service quacks like a :class:`LocationServer` where it matters
(``answer``, ``epoch``, updates), so a
:class:`~repro.core.client.MobileClient` can be pointed straight at it
and every query it issues is traced and metered.  It talks to the
server only through the narrow instrumentation interface
(``answer`` / ``io_stats`` / ``set_phase_listener`` / ``disk_snapshot``
/ ``num_points``), so any server implementing it — the single-tree
:class:`LocationServer` or the sharded scatter-gather fleet — slots in
unchanged; :func:`build_service` assembles the whole stack from raw
points.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import warnings
from concurrent.futures import Executor
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.core.api import (
    KNNRequest,
    QueryBudget,
    QueryRequest,
    QueryResponse,
    RangeRequest,
    WindowRequest,
    query_semantics,
)
from repro.core.server import DeltaResponse, LocationServer
from repro.core.validity import CompositeValidityRegion, ValidityDisk
from repro.geometry import Rect
from repro.kernel import ExecutionConfig
from repro.obs.context import TraceContext, emit_event, start_trace
from repro.obs.events import EventLog
from repro.obs.profile import PhaseProfiler
from repro.obs.slo import SLOEngine
from repro.service.continuous import (
    ContinuousConfig,
    Subscription,
    SubscriptionHub,
)
from repro.service.staleness import Mutation
from repro.service.admission import (
    LEVEL_CACHE_ONLY,
    LEVEL_NAMES,
    LEVEL_NORMAL,
    LEVEL_REDUCED,
    LEVEL_REJECT,
    AdmissionConfig,
    AdmissionController,
    AdmissionRejectedError,
)
from repro.service.cache import CacheConfig, ValidityCache
from repro.service.faults import BreakerConfig, CircuitBreaker, CircuitOpenError
from repro.service.metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.service.replica import ReplicaConfig, ReplicaSet
from repro.service.retry import (
    RetryBudget,
    RetryBudgetConfig,
    RetryPolicy,
    is_transient,
)
from repro.service.shard import ShardedServer
from repro.service.staleness import ServedResponse
from repro.service.tracing import (
    QueryTrace,
    TailSamplingConfig,
    TraceBuffer,
    now,
)

__all__ = ["QueryService", "ResilienceConfig", "build_service"]


@dataclass(frozen=True)
class ResilienceConfig:
    """How a :class:`QueryService` behaves when the disk misbehaves.

    ``retry`` governs transparent retries of transient failures;
    ``breaker`` (None disables it) isolates the server once failures
    persist; ``default_budget`` is applied to every request that does
    not carry its own, turning overload into degraded responses rather
    than latency pileups.  ``seed`` makes the retry jitter reproducible.

    ``retry_budget`` (None disables it) caps *total* retries per
    rolling window across all queries, so concurrent failures — a
    replica dying under load — cannot amplify into a retry storm.
    ``admission`` (None disables it) puts the
    :class:`~repro.service.admission.AdmissionController` in front of
    execution: a concurrency/queue gate with deadline-aware fast
    reject and the graded brownout ladder.
    """

    retry: RetryPolicy = RetryPolicy()
    breaker: Optional[BreakerConfig] = BreakerConfig()
    default_budget: Optional[QueryBudget] = None
    seed: int = 0
    retry_budget: Optional[RetryBudgetConfig] = None
    admission: Optional[AdmissionConfig] = None


class QueryService:
    """An instrumented, thread-safe facade over a :class:`LocationServer`."""

    def __init__(self, server: LocationServer,
                 metrics: Optional[MetricsRegistry] = None,
                 trace_capacity: int = 256,
                 resilience: Optional[ResilienceConfig] = None,
                 cache: Optional[ValidityCache] = None,
                 events: Optional[EventLog] = None,
                 continuous: Optional[ContinuousConfig] = None,
                 slo: Optional[SLOEngine] = None,
                 tail: Optional[TailSamplingConfig] = None,
                 profile=False,
                 sleep=time.sleep):
        self.server = server
        self.cache = cache
        self.continuous = continuous
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Layers that meter themselves (shard fan-out workers, replica
        # routing) report into the service registry with their own
        # label dimensions.
        bind = getattr(server, "bind_metrics", None)
        if bind is not None:
            bind(self.metrics)
        #: The SLO engine, if objectives are declared: every finished or
        #: failed query is observed, and its recommended brownout level
        #: becomes the admission controller's floor (see _slo_tick).
        self.slo = slo
        if self.slo is not None and self.slo.metrics is None:
            self.slo.metrics = self.metrics
        self.traces = TraceBuffer(trace_capacity, tail=tail)
        if self.slo is not None and tail is not None:
            self.traces.violation_check = self.slo.latency_violation
        #: The phase profiler (a PhaseProfiler, or truthy for defaults):
        #: finished span trees are folded into per-phase self-time.
        if isinstance(profile, PhaseProfiler):
            self.profiler: Optional[PhaseProfiler] = profile
        else:
            self.profiler = PhaseProfiler() if profile else None
        #: The structured event log every traced stage reports into.
        self.events = events if events is not None else EventLog()
        self.resilience = resilience
        self.breaker: Optional[CircuitBreaker] = None
        if resilience is not None and resilience.breaker is not None:
            self.breaker = CircuitBreaker(resilience.breaker)
        self.retry_budget: Optional[RetryBudget] = None
        if resilience is not None and resilience.retry_budget is not None:
            self.retry_budget = RetryBudget(resilience.retry_budget)
        self.admission: Optional[AdmissionController] = None
        if resilience is not None and resilience.admission is not None:
            self.admission = AdmissionController(resilience.admission)
        self._retry_rng = random.Random(
            resilience.seed if resilience is not None else 0)
        self._rng_lock = threading.Lock()
        self._sleep = sleep
        self._lock = threading.RLock()
        #: Serializes whole mutations (server apply + cache fix-up +
        #: subscription fan-out) so surgical epoch re-stamping and push
        #: ordering both see one-step epoch transitions.
        self._mutation_lock = threading.Lock()
        self._hub: Optional[SubscriptionHub] = None
        self._hub_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started_at = now()

    # ------------------------------------------------------------------
    # the LocationServer surface clients rely on
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.server.epoch

    @property
    def universe(self):
        return self.server.universe

    def insert_object(self, oid: int, x: float, y: float) -> None:
        with self._mutation_lock:
            if getattr(self.server, "concurrent_safe", False):
                self.server.insert_object(oid, x, y)
            else:
                with self._lock:
                    self.server.insert_object(oid, x, y)
            self._after_mutation("insert", oid, x, y)
        self.metrics.counter("service.updates.insert").inc()

    def delete_object(self, oid: int, x: float, y: float) -> bool:
        with self._mutation_lock:
            if getattr(self.server, "concurrent_safe", False):
                removed = self.server.delete_object(oid, x, y)
            else:
                with self._lock:
                    removed = self.server.delete_object(oid, x, y)
            if removed:
                self._after_mutation("delete", oid, x, y)
        self.metrics.counter("service.updates.delete").inc()
        return removed

    def _after_mutation(self, op: str, oid: int, x: float, y: float) -> None:
        """Cache fix-up + subscription fan-out for one applied mutation.

        Runs under the mutation lock: surgical invalidation re-stamps
        survivors to the post-mutation epoch, and subscription pushes
        are enqueued — in mutation order — before the mutating call
        returns.
        """
        if self.cache is not None:
            if self.cache.config.surgical:
                dropped = self.cache.invalidate_mutation(
                    op, oid, x, y, epoch=self.server.epoch)
                self.metrics.counter(
                    "service.cache.surgical_drops").inc(dropped)
            else:  # the blunt baseline: every cached region dies
                self.cache.invalidate_all()
        if self._hub is not None:
            self._hub.notify(Mutation(op, int(oid), float(x), float(y)))

    # ------------------------------------------------------------------
    # continuous queries (server push)
    # ------------------------------------------------------------------
    def subscribe(self, request: QueryRequest, *,
                  queue_capacity: Optional[int] = None) -> Subscription:
        """Register ``request`` as a continuous query (server push).

        The initial fetch runs through the full traced/resilient
        :meth:`answer` path (kNN requests are widened by the configured
        margin); afterwards every applied mutation is folded into the
        subscription state and pushed — as an O(delta) patch carrying
        the complete latest result + region, or an invalidation when
        the margin is exhausted — over the subscription's bounded
        queue.  See :mod:`repro.service.continuous`.
        """
        return self._ensure_hub().subscribe(
            request, queue_capacity=queue_capacity)

    @property
    def hub(self) -> Optional[SubscriptionHub]:
        """The push hub, if any subscription was ever registered."""
        return self._hub

    def _ensure_hub(self) -> SubscriptionHub:
        with self._hub_lock:
            if self._hub is None:
                self._hub = SubscriptionHub(
                    self, config=self.continuous, metrics=self.metrics,
                    events=self.events)
        return self._hub

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed request, tracing and metering it.

        With a :class:`ResilienceConfig`, transient failures (simulated
        page-read errors) are retried with capped exponential backoff
        and full jitter outside the service lock; persistent failure
        streaks trip the circuit breaker, which then rejects requests
        with :class:`~repro.service.faults.CircuitOpenError` until its
        reset timeout allows a probe.  Budget-exhausted (degraded)
        responses are successes: correct results, shrunk regions.
        """
        request = self._with_default_budget(request)
        kind = getattr(request, "kind", type(request).__name__)
        trace_id = (getattr(request, "trace_id", None)
                    or f"q-{next(self._ids)}")
        with start_trace(trace_id=trace_id, events=self.events) as ctx:
            return self._answer_traced(request, kind, ctx)

    def _answer_traced(self, request: QueryRequest, kind: str,
                       ctx: TraceContext) -> QueryResponse:
        """The traced body of :meth:`answer` (one active trace context).

        The service records only its own stages (cache probe, retry
        backoff, serialization) on the context; the layers below attach
        their own child spans — per-shard fan-out workers, the disk's
        phase blocks — through the same propagated context.
        """
        trace = QueryTrace(
            trace_id=ctx.trace_id,
            kind=kind,
            started_at=ctx.started_at,
            monotonic_origin=ctx.origin,
        )
        t0 = ctx.origin
        emit_event("query", event="query.start", kind=kind)

        # Admission first: the brownout level is sampled once per query
        # so one request sees one consistent shedding policy.
        level = LEVEL_NORMAL
        if self.admission is not None:
            level = self.admission.level()
            self.metrics.gauge("service.admission.level").set(level)
            if level >= LEVEL_REJECT:
                self._shed(trace, ctx, kind, AdmissionRejectedError(
                    "brownout: shedding all load"))

        # The cache front door: a hit never touches the server, the
        # breaker, or the retry loop — zero node accesses, by contract.
        cached: Optional[QueryResponse] = None
        if self.cache is not None:
            probe_start = perf_counter()
            cached = self.cache.probe(request, self.server.epoch)
            ctx.add_span(
                "cache_probe",
                offset_ms=(probe_start - t0) * 1e3,
                duration_ms=(perf_counter() - probe_start) * 1e3,
                meta={"hit": cached is not None},
            )
            if cached is not None:
                self.metrics.counter("service.cache.hits").inc()
                self.metrics.counter("service.cache.hits",
                                     labels={"query_kind": kind}).inc()
                emit_event("cache", event="cache.hit", kind=kind)
            else:
                self.metrics.counter("service.cache.misses").inc()
                emit_event("cache", event="cache.miss", kind=kind)

        if cached is not None:
            response = self._serve_cached(request, cached)
            if level >= LEVEL_CACHE_ONLY:
                response = self._brownout_shrink(request, response, kind)
            node_accesses: Dict[str, int] = {}
            page_faults: Dict[str, int] = {}
        else:
            # A miss under a cache-only brownout never executes — that
            # is the whole point of the level: the disk is saturated.
            if level >= LEVEL_CACHE_ONLY:
                self._shed(trace, ctx, kind, AdmissionRejectedError(
                    "brownout: cache-only, request missed"))
            acquired = False
            exec_start = t0
            if self.admission is not None:
                budget = getattr(request, "budget", None)
                deadline = budget.deadline_ms if budget is not None else None
                gate_start = perf_counter()
                try:
                    wait_ms = self.admission.try_acquire(deadline_ms=deadline)
                except AdmissionRejectedError as exc:
                    # Fast reject: meter how fast (the <1ms contract).
                    self.metrics.histogram(
                        "service.admission.reject_ms").record(
                            (perf_counter() - gate_start) * 1e3)
                    self._shed(trace, ctx, kind, exc)
                acquired = True
            retry = (self.resilience.retry
                     if self.resilience is not None else None)
            attempt = 0
            # Everything past the acquire runs under the finally that
            # releases the slot — a failure anywhere here must not leak
            # admission concurrency.
            try:
                if acquired:
                    self.metrics.counter("service.admission.accepted").inc()
                    if wait_ms > 0.0:
                        ctx.add_span("admission_wait",
                                     offset_ms=(gate_start - t0) * 1e3,
                                     duration_ms=wait_ms)
                        self.metrics.histogram(
                            "service.admission.wait_ms").record(wait_ms)
                    if level >= LEVEL_REDUCED:
                        request = self._brownout_budget(request, kind)
                    exec_start = perf_counter()
                while True:
                    if self.breaker is not None:
                        try:
                            self.breaker.before_call()
                        except CircuitOpenError as exc:
                            self.metrics.counter(
                                "service.breaker.rejections").inc()
                            emit_event("breaker", event="breaker.reject",
                                       kind=kind)
                            self._fail(trace, ctx, kind, exc)
                    try:
                        (response, node_accesses, page_faults,
                         epoch) = self._execute_once(request)
                    except Exception as exc:
                        transient = is_transient(exc)
                        if self.breaker is not None and transient:
                            trips_before = self.breaker.trips
                            self.breaker.record_failure()
                            if self.breaker.trips > trips_before:
                                emit_event("breaker", event="breaker.trip",
                                           trips=self.breaker.trips)
                            if self.breaker.trips:
                                self.metrics.gauge(
                                    "service.breaker.trips").set(
                                        self.breaker.trips)
                        retryable = (
                            transient and retry is not None
                            and attempt + 1 < retry.max_attempts
                            # Retrying into an open breaker or an
                            # overloaded gate only deepens the problem.
                            and not isinstance(exc, (AdmissionRejectedError,
                                                     CircuitOpenError)))
                        if (retryable and self.retry_budget is not None
                                and not self.retry_budget.try_spend()):
                            retryable = False
                            self.metrics.counter(
                                "service.retry_budget.exhausted").inc()
                            emit_event("retry",
                                       event="retry.budget_exhausted",
                                       kind=kind)
                        if retryable:
                            with self._rng_lock:
                                delay = retry.backoff_s(attempt,
                                                        self._retry_rng)
                            self.metrics.counter("service.retries").inc()
                            self.metrics.counter(
                                "service.retries",
                                labels={"query_kind": kind}).inc()
                            trace.retries += 1
                            ctx.add_span(
                                "retry_backoff",
                                offset_ms=(perf_counter() - t0) * 1e3,
                                duration_ms=delay * 1e3,
                                meta={"attempt": attempt + 1,
                                      "error":
                                      f"{type(exc).__name__}: {exc}"},
                            )
                            emit_event("retry", event="query.retry",
                                       attempt=attempt + 1,
                                       delay_ms=delay * 1e3,
                                       error=f"{type(exc).__name__}: {exc}")
                            if delay > 0.0:
                                self._sleep(delay)
                            attempt += 1
                            continue
                        self._fail(trace, ctx, kind, exc)
                    else:
                        if self.breaker is not None:
                            recoveries_before = self.breaker.recoveries
                            self.breaker.record_success()
                            if self.breaker.recoveries > recoveries_before:
                                emit_event("breaker", event="breaker.recover",
                                           recoveries=self.breaker.recoveries)
                        break
            finally:
                if acquired:
                    self.admission.release(
                        (perf_counter() - exec_start) * 1e3)
            if self.cache is not None:
                self.cache.admit(request, response, epoch)
        if self.cache is not None:
            self.metrics.gauge("service.cache.size").set(len(self.cache))

        trace.node_accesses = node_accesses
        trace.page_faults = page_faults
        clip_seconds = getattr(response.detail, "clip_seconds", 0.0)
        if clip_seconds:
            ctx.add_span(
                "bisector_clipping",
                offset_ms=0.0,  # interleaved with tpnn_probing
                duration_ms=clip_seconds * 1e3,
            )

        # Serialization: size the payload that would go on the wire.
        ser_start = perf_counter()
        transfer = response.transfer_bytes()
        result_size = len(response.result)
        if isinstance(response, DeltaResponse):
            result_size = len(response.added) + len(response.removed_ids)
        ctx.add_span(
            "serialization",
            offset_ms=(ser_start - t0) * 1e3,
            duration_ms=(perf_counter() - ser_start) * 1e3,
            meta={"transfer_bytes": transfer},
        )
        trace.transfer_bytes = transfer
        trace.result_size = result_size
        trace.degraded = bool(getattr(response.detail, "degraded", False))
        if trace.degraded:
            emit_event("degraded", event="query.degraded", kind=kind)
        trace.duration_ms = (perf_counter() - t0) * 1e3
        trace.spans = ctx.spans()
        self.traces.append(trace)
        if self.profiler is not None:
            self.profiler.record(trace)
        self._record(kind, trace,
                     delta=getattr(request, "previous_ids", None) is not None,
                     detail=response.detail, response=response)
        emit_event("query", event="query.finish", kind=kind,
                   duration_ms=trace.duration_ms,
                   node_accesses=trace.total_node_accesses,
                   result_size=result_size)
        return response

    def _serve_cached(self, request: QueryRequest,
                      cached: QueryResponse) -> QueryResponse:
        """Adapt a cached response to the probing request.

        The validity-region contract guarantees the result *set* is
        identical anywhere inside the region; only the distance order
        of kNN neighbours can differ at the new query point, so that is
        re-ranked (a k·log k in-memory step — still zero node accesses).
        Replica-served entries are :class:`ServedResponse` wrappers; the
        re-ranking preserves their serving annotations.
        """
        inner = getattr(cached, "inner", cached)
        adapted = query_semantics(request).serve_cached(request, inner)
        if adapted is inner:
            return cached
        if inner is cached:
            return adapted
        return cached.with_inner(adapted)

    # ------------------------------------------------------------------
    # admission plumbing
    # ------------------------------------------------------------------
    def _shed(self, trace: QueryTrace, ctx: TraceContext, kind: str,
              exc: AdmissionRejectedError) -> None:
        """Record an admission rejection and raise it — never queued."""
        self.metrics.counter("service.admission.rejected").inc()
        self.metrics.counter("service.admission.rejected",
                             labels={"query_kind": kind}).inc()
        emit_event("admission", event="admission.reject", kind=kind,
                   reason=exc.reason)
        self._fail(trace, ctx, kind, exc)

    def _brownout_budget(self, request: QueryRequest,
                         kind: str) -> QueryRequest:
        """Under a ``reduced`` brownout, clamp the request to the small
        ``brownout_budget`` — reduced kernel probe depth buys capacity,
        and the degraded-region contract keeps the answer correct.
        Only budget-less requests (or ones carrying the service-wide
        default) are clamped; an explicit caller budget wins.
        """
        cfg = self.resilience.admission
        budget = getattr(request, "budget", None)
        default = self.resilience.default_budget
        if cfg.brownout_budget is None or (
                budget is not None and budget is not default):
            return request
        try:
            clamped = replace(request, budget=cfg.brownout_budget)
        except TypeError:
            # Not a dataclass request (an exotic/invalid type): leave it
            # unclamped and let execution fail it through the traced path.
            return request
        self.metrics.counter("service.admission.brownout.reduced").inc()
        emit_event("admission", event="admission.brownout",
                   level="reduced", kind=kind)
        return clamped

    def _brownout_shrink(self, request: QueryRequest,
                         response: QueryResponse,
                         kind: str) -> QueryResponse:
        """Extra conservative region shrink on cache hits served under a
        ``cache_only`` brownout: intersect the cached region with a disk
        around the query point whose radius is the region's half-extent
        scaled by ``cache_only_shrink``.  A subset of a valid region is
        valid — the shrink only makes brownout-served answers expire
        sooner, pushing the re-query to after the overload.
        """
        cfg = self.resilience.admission
        factor = cfg.cache_only_shrink
        loc = query_semantics(request).location(request)
        region = response.region
        try:
            box = region.mbr()
        except (AttributeError, ValueError):
            return response
        if box is None or loc is None or factor >= 1.0:
            return response
        half = 0.5 * min(box.xmax - box.xmin, box.ymax - box.ymin)
        disk = ValidityDisk((float(loc[0]), float(loc[1])),
                            max(half * factor, 0.0))
        shrunk = CompositeValidityRegion([region, disk])
        self.metrics.counter("service.admission.brownout.cache_only").inc()
        emit_event("admission", event="admission.brownout",
                   level="cache_only", kind=kind)
        if isinstance(response, ServedResponse):
            out = response.with_inner(response.inner)
            out.region = shrunk
            out.brownout_level = LEVEL_CACHE_ONLY
            return out
        return ServedResponse(response, region=shrunk,
                              brownout_level=LEVEL_CACHE_ONLY)

    # ------------------------------------------------------------------
    # resilience plumbing
    # ------------------------------------------------------------------
    def _with_default_budget(self, request: QueryRequest) -> QueryRequest:
        """Apply the configured default budget to budget-less requests."""
        if (self.resilience is None
                or self.resilience.default_budget is None
                or getattr(request, "budget", None) is not None):
            return request
        return replace(request, budget=self.resilience.default_budget)

    def _execute_once(self, request: QueryRequest):
        """One pass through the server; returns the response, this
        attempt's phase-attributed access deltas, and the dataset epoch
        the answer is valid for.  The storage layer records disk-level
        spans itself through the active trace context.

        A ``concurrent_safe`` server (the :class:`ReplicaSet`) manages
        its own locking and measures its access deltas inside the
        serving replica's critical section, so the service lock — which
        would serialize the whole fleet — is skipped and the deltas are
        read off the :class:`ServedResponse`.  A stale-served answer is
        valid for the *primary* epoch its shrink accounted for
        (``valid_for_epoch``), which is the epoch the cache admits under.
        """
        if getattr(self.server, "concurrent_safe", False):
            epoch = self.server.epoch
            response = self.server.answer(request)
            valid_epoch = getattr(response, "valid_for_epoch", None)
            if valid_epoch is None:
                valid_epoch = epoch
            node_accesses = dict(getattr(response, "node_accesses",
                                         None) or {})
            page_faults = dict(getattr(response, "page_faults", None) or {})
            return response, node_accesses, page_faults, valid_epoch
        with self._lock:
            epoch = self.server.epoch
            before = self.server.node_accesses_by_phase()
            before_pf = self.server.page_faults_by_phase()
            response = self.server.answer(request)
            after = self.server.node_accesses_by_phase()
            after_pf = self.server.page_faults_by_phase()
        return (response, _delta(before, after), _delta(before_pf, after_pf),
                epoch)

    def _fail(self, trace: QueryTrace, ctx: TraceContext, kind: str,
              exc: Exception) -> None:
        """Record a failed query and re-raise its error."""
        trace.duration_ms = ctx.elapsed_ms()
        trace.error = f"{type(exc).__name__}: {exc}"
        trace.spans = ctx.spans()
        self.traces.append(trace)
        if self.profiler is not None:
            self.profiler.record(trace)
        self.metrics.counter("service.errors").inc()
        self.metrics.counter("service.errors",
                             labels={"query_kind": kind}).inc()
        emit_event("query", event="query.error", kind=kind,
                   error=trace.error)
        # Admission sheds are the *mitigation*, not the symptom: counting
        # them against availability would lock the brownout in (shed →
        # bad → burn → shed).  Everything else — including breaker
        # rejections — burns the error budget.
        if self.slo is not None and not isinstance(exc,
                                                   AdmissionRejectedError):
            self.slo.observe(kind, latency_ms=trace.duration_ms, error=True)
            self._slo_tick()
        raise exc

    def answer_many(self, requests: Sequence[QueryRequest],
                    executor: Optional[Executor] = None
                    ) -> List[QueryResponse]:
        """Answer a batch of requests, preserving order.

        With an ``executor`` the batch fans out across its workers (the
        per-tick dispatch of a simulated client fleet); without one it
        runs inline.  Either way every query is individually traced.
        The whole batch is validated against the query-type registry up
        front, so an unregistered request fails the batch before any
        work is dispatched.
        """
        for r in requests:
            query_semantics(r)  # TypeError before any query runs
        self.metrics.counter("service.batches").inc()
        self.metrics.histogram("service.batch_size").record(len(requests))
        if executor is None:
            return [self.answer(r) for r in requests]
        return list(executor.map(self.answer, requests))

    #: Back-compat alias; ``answer_many`` is the canonical name.
    dispatch_batch = answer_many

    # ------------------------------------------------------------------
    # convenience per-type methods (same names as the server)
    # ------------------------------------------------------------------
    def knn_query(self, location, k: int = 1):
        return self.answer(KNNRequest(tuple(location), k=k))

    def window_query(self, focus, width: float, height: float):
        return self.answer(WindowRequest(tuple(focus), width, height))

    def range_query(self, location, radius: float):
        return self.answer(RangeRequest(tuple(location), radius))

    def rknn_query(self, location, k: int = 1):
        from repro.core.rknn import RKNNRequest
        return self.answer(RKNNRequest(tuple(location), k=k))

    def probknn_query(self, location, uncertainty: float, k: int = 1):
        from repro.core.probknn import ProbKNNRequest
        return self.answer(ProbKNNRequest(tuple(location),
                                          uncertainty=uncertainty, k=k))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _record(self, kind: str, trace: QueryTrace, delta: bool,
                detail=None, response=None) -> None:
        m = self.metrics
        by_kind = {"query_kind": kind}
        # Unlabeled series are the pre-aggregated totals (what
        # stats_snapshot and the bench trails read); the labeled series
        # of the same family carry the dimensional breakdown.
        m.counter("service.queries").inc()
        m.counter("service.queries", labels=by_kind).inc()
        if delta:
            m.counter("service.queries.delta", labels=by_kind).inc()
        if trace.degraded:
            m.counter("service.degraded").inc()
            m.counter("service.degraded", labels=by_kind).inc()
        m.counter("service.bytes_on_wire").inc(trace.transfer_bytes)
        m.histogram(
            "service.latency_ms",
            labels={"query_kind": kind,
                    "degraded": "true" if trace.degraded else "false"},
            buckets=DEFAULT_LATENCY_BUCKETS_MS).record(trace.duration_ms)
        m.histogram("service.transfer_bytes", labels=by_kind).record(
            trace.transfer_bytes)
        m.histogram("service.result_size", labels=by_kind).record(
            trace.result_size)
        for phase, count in trace.node_accesses.items():
            m.counter("service.node_accesses",
                      labels={"phase": phase}).inc(count)
        for phase, count in trace.page_faults.items():
            m.counter("service.page_faults",
                      labels={"phase": phase}).inc(count)
        # Per-shard breakdowns are metered by the sharded server itself
        # (bind_metrics), with shard/backend labels; the service only
        # records the fan-out shape here.
        fanout = getattr(detail, "per_shard_node_accesses", None)
        if fanout is not None:
            m.counter("service.shard.fanouts").inc()
            m.histogram("service.shard.fanout_width").record(len(fanout))
        # Replica-served responses carry their serving annotations.
        rid = getattr(response, "replica_id", None)
        staleness = 0
        if rid is not None:
            by_replica = {"replica": str(rid)}
            m.counter("service.replica.queries", labels=by_replica).inc()
            staleness = getattr(response, "staleness", 0)
            if staleness:
                m.counter("service.replica.stale_served").inc()
                m.counter("service.replica.stale_served",
                          labels=by_replica).inc()
                m.histogram("service.replica.staleness",
                            labels=by_replica).record(staleness)
            failovers = getattr(response, "failovers", 0)
            if failovers:
                m.counter("service.replica.failovers").inc(failovers)
        if self.slo is not None:
            self.slo.observe(kind, latency_ms=trace.duration_ms,
                             error=False, staleness=staleness)
            self._slo_tick()

    def _slo_tick(self) -> None:
        """Fold the SLO engine's recommendation into admission control.

        ``maybe_evaluate`` is rate-limited by the engine's own clock, so
        this is cheap to call per query; when the recommended brownout
        level changes, it becomes the admission controller's floor —
        burn rate drives the ladder even when queue depth looks healthy.
        """
        level = self.slo.maybe_evaluate()
        if level is None or self.admission is None:
            return
        if level != self.admission.slo_level:
            previous = self.admission.slo_level
            self.admission.set_slo_level(level)
            self.events.emit("slo", event="slo.brownout",
                             previous=LEVEL_NAMES[previous],
                             level=LEVEL_NAMES[level])

    def stats_snapshot(self) -> Dict[str, object]:
        """Everything observable about the running service, as JSON data.

        Includes the metrics registry (counters / gauges / histograms —
        read as one consistent point-in-time snapshot under a single
        registry lock), the disk layer's phase-attributed access
        statistics, the buffer pool state, the server-side validity
        cache, the per-shard breakdown when the server is sharded, the
        server's epoch and query count, and the derived client
        cache-hit ratio when clients report into the registry.
        """
        disk_info = self.server.disk_snapshot()
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        updates = counters.get("client.position_updates", 0)
        hits = counters.get("client.cache_answers", 0)
        queries = counters.get("service.queries", 0)
        degraded = counters.get("service.degraded", 0)
        out = {
            "service": {
                "started_at": self._started_at,
                "uptime_seconds": now() - self._started_at,
                "queries": queries,
                "bytes_on_wire": counters.get("service.bytes_on_wire", 0),
                "cache_hit_ratio": hits / updates if updates else 0.0,
                "traces_retained": len(self.traces),
                "traces_dropped": self.traces.dropped,
                "trace_sampling": self.traces.sampling_stats(),
            },
            "events": self.events.stats(),
            "resilience": {
                "retries": counters.get("service.retries", 0),
                "errors": counters.get("service.errors", 0),
                "degraded": degraded,
                "degraded_ratio": degraded / queries if queries else 0.0,
                "breaker": (self.breaker.snapshot()
                            if self.breaker is not None else None),
            },
            "metrics": snap,
            "disk": disk_info["stats"],
            "buffer": disk_info.get("buffer"),
            "cache": (self.cache.snapshot()
                      if self.cache is not None else None),
            "continuous": (self._hub.snapshot()
                           if self._hub is not None else None),
            "server": {
                "epoch": self.server.epoch,
                "queries_processed": self.server.queries_processed,
                "num_points": self.server.num_points,
                "num_pages": self.server.num_pages,
            },
        }
        if self.retry_budget is not None:
            out["resilience"]["retry_budget"] = self.retry_budget.snapshot()
        if self.admission is not None:
            out["admission"] = self.admission.snapshot()
        if self.slo is not None:
            out["slo"] = self.slo.snapshot()
        if self.profiler is not None:
            out["profile"] = self.profiler.snapshot()
        if hasattr(self.server, "replica_snapshot"):
            out["replica_set"] = self.server.snapshot()
        if "shards" in disk_info:
            out["shards"] = disk_info["shards"]
        if "faults_injected" in disk_info:
            out["faults_injected"] = disk_info["faults_injected"]
        return out

    def recent_traces(self, n: Optional[int] = None) -> List[QueryTrace]:
        return self.traces.recent(n)

    def reset_stats(self) -> None:
        """Zero the registry and the disk counters (buffer stays warm)."""
        self.metrics.reset()
        self.server.reset_io_stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the server's resources (worker pools, replica fleets).

        Idempotent — the layers below guard their own teardown — and
        also reachable as a context manager (``with build_service(...)``).
        """
        if self._hub is not None:
            self._hub.close()
        close = getattr(self.server, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    out = {}
    for phase, count in after.items():
        diff = count - before.get(phase, 0)
        if diff:
            out[phase] = diff
    return out


def build_service(points: Sequence, *,
                  shards: int = 1,
                  replicas: int = 1,
                  replica: Optional[ReplicaConfig] = None,
                  universe: Optional[Rect] = None,
                  capacity: Optional[int] = None,
                  fill: float = 0.7,
                  buffer_fraction: float = 0.0,
                  execution: Optional[ExecutionConfig] = None,
                  cache: Optional[CacheConfig] = None,
                  metrics: Optional[MetricsRegistry] = None,
                  trace_capacity: int = 256,
                  resilience: Optional[ResilienceConfig] = None,
                  events: Optional[EventLog] = None,
                  continuous: Optional[ContinuousConfig] = None,
                  slo: Optional[SLOEngine] = None,
                  tail: Optional[TailSamplingConfig] = None,
                  profile=False,
                  cache_capacity: Optional[int] = None,
                  cache_grid: Optional[int] = None,
                  max_workers: Optional[int] = None) -> QueryService:
    """Assemble the full serving stack over raw ``(x, y)`` data.

    The one-stop entry point of the public API (see docs/API.md):

    * ``shards=1`` builds the paper's single R*-tree
      :class:`LocationServer`; ``shards=K`` (K > 1) builds a K×K
      :class:`~repro.service.shard.ShardedServer` scatter-gather fleet.
    * ``replicas=N`` (N > 1, or any N with an explicit ``replica``
      config) fronts N such servers with a
      :class:`~repro.service.replica.ReplicaSet` — consistent-hash
      routing, per-replica breaker ejection, transparent failover and
      bounded-stale reads per ``replica`` (a
      :class:`~repro.service.replica.ReplicaConfig`).  Replication
      composes with sharding: each replica is its own ``shards``-way
      fleet.
    * ``execution`` — an :class:`~repro.kernel.ExecutionConfig` —
      selects the geometry kernel (``scalar`` / ``soa`` / ``numpy`` /
      ``auto``) and, for sharded servers, the fan-out backend
      (``thread`` or ``process``) and worker count.  A ``process``
      backend over a single-tree server is a documented no-op: the
      paper's server owns one simulated disk and runs serially.
    * ``cache`` — a :class:`~repro.service.cache.CacheConfig` — attaches
      a server-side :class:`~repro.service.cache.ValidityCache`; None
      disables it.
    * ``resilience`` — a :class:`ResilienceConfig` — governs retries,
      the retry budget, the circuit breaker, the default query budget
      and admission control.
    * ``continuous`` — a
      :class:`~repro.service.continuous.ContinuousConfig` — tunes the
      server-push subscription tier (kNN candidate margin, per-
      subscription queue bound); the tier itself is created lazily on
      the first :meth:`QueryService.subscribe` call.
    * ``slo`` — an :class:`~repro.obs.slo.SLOEngine` — observes every
      query outcome, exports ``slo_*`` gauges, and drives the
      admission brownout ladder by error-budget burn rate; ``tail`` —
      a :class:`~repro.service.tracing.TailSamplingConfig` — switches
      the trace ring to tail-based retention; ``profile`` (a
      :class:`~repro.obs.profile.PhaseProfiler` or truthy) folds span
      trees into the per-phase self-time profile behind
      ``/profile/flame``.

    Everything else is threaded through unchanged (index node
    ``capacity`` and ``fill``, LRU ``buffer_fraction`` per disk,
    metrics registry, trace-ring size).

    ``cache_capacity`` / ``cache_grid`` / ``max_workers`` are the
    pre-1.3 spellings, deprecated in favour of ``cache=CacheConfig(...)``
    and ``execution=ExecutionConfig(workers=...)`` (removal planned for
    v2.0).
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    if replicas < 1:
        raise ValueError("replicas must be positive")
    if cache_capacity is not None or cache_grid is not None:
        if cache is not None:
            raise TypeError(
                "pass either cache=CacheConfig(...) or the legacy "
                "cache_capacity/cache_grid, not both")
        warnings.warn(
            "cache_capacity/cache_grid are deprecated; pass "
            "cache=CacheConfig(capacity=..., grid=...) instead "
            "(removal planned for v2.0)",
            DeprecationWarning, stacklevel=2)
        if cache_capacity is not None and cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if cache_capacity:
            cache = CacheConfig(capacity=cache_capacity,
                                grid=cache_grid if cache_grid else 16)
    if max_workers is not None:
        if execution is not None:
            raise TypeError(
                "pass either execution=ExecutionConfig(...) or the "
                "legacy max_workers, not both")
        warnings.warn(
            "max_workers is deprecated; pass "
            "execution=ExecutionConfig(workers=...) instead "
            "(removal planned for v2.0)",
            DeprecationWarning, stacklevel=2)
        execution = ExecutionConfig(workers=max_workers)
    if replicas > 1 or replica is not None:
        server = ReplicaSet.from_points(
            points, replicas=replicas, shards=shards, universe=universe,
            capacity=capacity, fill=fill, buffer_fraction=buffer_fraction,
            execution=execution, config=replica)
    elif shards == 1:
        kernel = execution.resolved_kernel() if execution is not None else None
        server = LocationServer.from_points(
            points, universe=universe, capacity=capacity, fill=fill,
            buffer_fraction=buffer_fraction, kernel=kernel)
    else:
        server = ShardedServer.from_points(
            points, grid=shards, universe=universe, capacity=capacity,
            fill=fill, buffer_fraction=buffer_fraction,
            execution=execution)
    validity_cache = None
    if cache is not None and cache.capacity > 0:
        validity_cache = ValidityCache(server.universe, cache)
    return QueryService(server, metrics=metrics,
                        trace_capacity=trace_capacity,
                        resilience=resilience, cache=validity_cache,
                        events=events, continuous=continuous,
                        slo=slo, tail=tail, profile=profile)
