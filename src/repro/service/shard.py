"""The sharded server: scatter-gather over a grid of R*-trees.

One R*-tree over the whole dataset serializes every query on one
simulated disk.  :class:`ShardedServer` partitions the universe into a
K×K grid and builds an **independent** :class:`LocationServer` (own
tree, own disk, own buffer) per non-empty cell, so a query fans out
over a worker pool and only touches the shards that can contribute.

The interesting part is keeping the paper's validity-region contract
across the merge.  Per query type:

* **kNN** — shards are ranked by MINDIST of the query to their data
  MBRs; the nearest shard runs first and its k-th neighbour distance
  prunes every shard whose MINDIST exceeds it (such a shard cannot
  contribute a neighbour).  The survivors are queried through the pool
  and merged to the global top-k.  The merged validity region is the
  **intersection** of the per-shard regions — inside it every shard's
  local top-k set is frozen, so the candidate union is frozen — further
  clipped by a safety disk of radius ``min((c_{k+1} - c_k)/2, min over
  pruned shards of (MINDIST - d_k)/2)`` where ``c_i`` are the sorted
  candidate distances: moving by δ changes any point-to-query distance
  by at most δ, so inside the disk neither a reorder across the k-th
  candidate boundary nor an entry from a pruned shard is possible.
* **window** — a shard can affect the result at the focus iff the focus
  lies in its data MBR inflated by the half-extents (the Minkowski
  hull of its points' window rectangles).  Exactly those shards are
  queried and their conservative rectangles intersected; every
  *non-contributing* shard whose inflated MBR still intersects that
  rectangle is excluded by an axis **cut** that separates the focus
  from the inflated MBR — zero node accesses for shards the window
  cannot reach.
* **range** — shards with ``MINDIST <= radius`` are queried; the merged
  validity disk radius is the minimum of the per-shard radii and, for
  every pruned shard, its slack ``MINDIST - radius``.

Degraded-mode budgets are split across shards: a request's
``max_node_accesses`` is divided evenly over the shards being queried
(each shard meters its own disk), and any shard exhausting its slice
degrades the merged response exactly like the single-tree server
would — the merged region simply intersects that shard's conservative
safe disk.

The class implements the same narrow instrumentation interface as
:class:`LocationServer` (``answer``, ``io_stats``, ``num_points``,
``set_phase_listener``, ``disk_snapshot``, …), so the service layer —
cache, tracing, metrics, resilience — composes with it unchanged.
"""

from __future__ import annotations

import atexit
import functools
import math
import multiprocessing
import os
import threading
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import (
    QueryBudget,
    QueryDetail,
    QueryRequest,
    query_semantics,
)
from repro.core.range_validity import RangeValidityRegion
from repro.core.server import (
    KNNResponse,
    LocationServer,
    RangeResponse,
    WindowResponse,
)
from repro.core.validity import (
    CompositeValidityRegion,
    ValidityDisk,
    WindowValidityRegion,
)
from repro.geometry import Point, Rect
from repro.index.bulk import bulk_load_str
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.kernel import ExecutionConfig
from repro.kernel.backends import get_kernel
from repro.obs.context import attach, current_trace, emit_event
from repro.obs.context import span as obs_span
from repro.service.framing import RequestFrame, decode_response, encode_request
from repro.service.procpool import worker_init, worker_run
from repro.storage.counters import AccessStats
from repro.storage.serialize import tree_to_bytes

__all__ = [
    "ShardedServer",
    "Shard",
    "ShardedKNNDetail",
    "ShardedWindowDetail",
    "ShardedRangeDetail",
]


@dataclass
class Shard:
    """One grid cell's independent location server."""

    sid: int
    cell: Tuple[int, int]
    bounds: Rect
    server: LocationServer

    @property
    def data_mbr(self) -> Rect:
        """MBR of the shard's actual points (tighter than ``bounds``)."""
        return self.server.tree.root.mbr

    @property
    def num_points(self) -> int:
        return self.server.num_points


# ----------------------------------------------------------------------
# merged detail records (the sharded arm of the QueryDetail hierarchy)
# ----------------------------------------------------------------------
def _merged_influence(shard_details) -> List[LeafEntry]:
    out: List[LeafEntry] = []
    seen = set()
    for _sid, detail in shard_details:
        for entry in getattr(detail, "influence_set", []) or []:
            if entry.oid not in seen:
                seen.add(entry.oid)
                out.append(entry)
    return out


@dataclass
class ShardedKNNDetail(QueryDetail):
    """How a scatter-gathered kNN answer came together."""

    kind = "knn"

    query: Tuple[float, float]
    k: int
    neighbors: List[LeafEntry]
    #: Radius of the cross-shard safety disk clipped into the merged
    #: region (``None`` when no clipping was needed).
    safety_radius: Optional[float]
    shards_total: int
    shards_queried: int
    shards_pruned: int
    #: Node accesses each queried shard charged to this query.
    per_shard_node_accesses: Dict[int, int]
    #: ``(shard id, that shard's own detail)``, MINDIST order.
    shard_details: List[Tuple[int, QueryDetail]] = field(default_factory=list)
    num_tp_queries: int = 0
    degraded: bool = False

    @property
    def influence_set(self) -> List[LeafEntry]:
        return _merged_influence(self.shard_details)


@dataclass
class ShardedWindowDetail(QueryDetail):
    """How a scatter-gathered window answer came together."""

    kind = "window"

    focus: Tuple[float, float]
    window: Rect
    result: List[LeafEntry]
    #: The merged validity rectangle (same contract as the single-tree
    #: :class:`~repro.core.window_validity.WindowValidityResult`).
    conservative_region: Rect
    shards_total: int
    shards_queried: int
    shards_pruned: int
    #: Shards excluded by an axis cut instead of a query.
    shards_cut: int
    per_shard_node_accesses: Dict[int, int]
    shard_details: List[Tuple[int, QueryDetail]] = field(default_factory=list)
    degraded: bool = False

    @property
    def influence_set(self) -> List[LeafEntry]:
        return _merged_influence(self.shard_details)


@dataclass
class ShardedRangeDetail(QueryDetail):
    """How a scatter-gathered range answer came together."""

    kind = "range"

    focus: Tuple[float, float]
    radius: float
    result: List[LeafEntry]
    #: The merged validity disk radius (may be ``math.inf``).
    validity_radius: float
    shards_total: int
    shards_queried: int
    shards_pruned: int
    per_shard_node_accesses: Dict[int, int]
    shard_details: List[Tuple[int, QueryDetail]] = field(default_factory=list)
    degraded: bool = False

    @property
    def influence_set(self) -> List[LeafEntry]:
        return _merged_influence(self.shard_details)


def _close_at_exit(server_ref: "weakref.ref") -> None:
    """The atexit hook shutting down a leaked process pool (weakly
    bound: a server that was garbage-collected needs no cleanup)."""
    server = server_ref()
    if server is not None:
        server.close()


def _cut_away(rect: Rect, box: Rect, p) -> Rect:
    """The largest sub-rectangle of ``rect`` containing ``p`` but not
    overlapping ``box``'s span on one axis.

    ``p`` must lie outside ``box``, so at least one axis side separates
    them; the cut keeping the most area wins.
    """
    candidates = []
    if p[0] < box.xmin:
        candidates.append(Rect(rect.xmin, rect.ymin,
                               min(rect.xmax, box.xmin), rect.ymax))
    if p[0] > box.xmax:
        candidates.append(Rect(max(rect.xmin, box.xmax), rect.ymin,
                               rect.xmax, rect.ymax))
    if p[1] < box.ymin:
        candidates.append(Rect(rect.xmin, rect.ymin,
                               rect.xmax, min(rect.ymax, box.ymin)))
    if p[1] > box.ymax:
        candidates.append(Rect(rect.xmin, max(rect.ymin, box.ymax),
                               rect.xmax, rect.ymax))
    if not candidates:
        return rect
    return max(candidates, key=Rect.area)


class ShardedServer:
    """A grid of independent location servers answering as one.

    Drop-in for :class:`LocationServer` wherever the narrow server
    interface is used (the service layer, the benchmarks): same
    ``answer(request)`` entry point, same response classes, same
    validity-region guarantee on every merged response.
    """

    def __init__(self, shards: Sequence[Shard], universe: Rect,
                 grid: int, capacity: Optional[int] = None,
                 max_workers: Optional[int] = None,
                 execution: Optional[ExecutionConfig] = None,
                 buffer_fraction: float = 0.0):
        self.universe = universe
        self.grid = grid
        self._capacity = capacity
        self._by_cell: Dict[Tuple[int, int], Shard] = {
            s.cell: s for s in shards
        }
        self.queries_processed = 0
        self.epoch = 0
        if max_workers is not None:
            warnings.warn(
                "ShardedServer(max_workers=...) is deprecated; pass "
                "execution=ExecutionConfig(workers=...) instead "
                "(removal planned for v2.0)",
                DeprecationWarning, stacklevel=2)
            if execution is not None:
                raise TypeError(
                    "pass either execution= or the deprecated "
                    "max_workers=, not both")
            execution = ExecutionConfig(workers=int(max_workers))
        self.execution = (execution if execution is not None
                          else ExecutionConfig())
        self._kernel = get_kernel(self.execution.resolved_kernel())
        if execution is not None:
            # An explicit config owns kernel selection for every shard.
            for s in self._by_cell.values():
                s.server.use_kernel(self._kernel)
        self._buffer_fraction = float(buffer_fraction)
        workers = self.execution.workers
        if workers is None:
            workers = min(max(len(self._by_cell), 1),
                          os.cpu_count() or 4)
        self._max_workers = max(1, int(workers))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._proc_pool: Optional[ProcessPoolExecutor] = None
        self._proc_epoch = -1
        self._atexit_cb = None
        #: Set by bind_metrics: per-shard work is metered with
        #: shard/backend (and any extra, e.g. replica) labels.
        self._metrics = None
        self._metric_labels: Dict[str, str] = {}

    def bind_metrics(self, registry, extra_labels=None) -> None:
        """Report per-shard counters into ``registry`` with labels.

        Every shard job — thread-pool or process-pool — increments
        ``service.shard.queries{shard=,backend=}`` and adds its node
        accesses to ``service.shard.node_accesses{...}``.
        ``extra_labels`` ride along on every series (a fronting
        :class:`~repro.service.replica.ReplicaSet` adds ``replica``).
        """
        self._metrics = registry
        self._metric_labels = dict(extra_labels or {})

    def _meter_shard(self, sid: int, node_accesses: int) -> None:
        if self._metrics is None:
            return
        labels = dict(self._metric_labels,
                      shard=str(sid), backend=self.execution.backend)
        self._metrics.counter("service.shard.queries", labels=labels).inc()
        if node_accesses:
            self._metrics.counter("service.shard.node_accesses",
                                  labels=labels).inc(node_accesses)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Sequence, grid: int = 4,
                    universe: Optional[Rect] = None,
                    capacity: Optional[int] = None, fill: float = 0.7,
                    buffer_fraction: float = 0.0,
                    max_workers: Optional[int] = None,
                    execution: Optional[ExecutionConfig] = None
                    ) -> "ShardedServer":
        """Partition ``(x, y)`` data into a ``grid``×``grid`` fleet.

        Object ids are the sequence positions (matching
        :meth:`LocationServer.from_points`), preserved globally across
        shards.  ``execution`` selects the scatter backend and the
        geometry kernel every shard server runs.
        """
        if grid < 1:
            raise ValueError("grid must be positive")
        pts = [(float(p[0]), float(p[1])) for p in points]
        if not pts:
            raise ValueError("cannot shard an empty dataset")
        if universe is None:
            universe = Rect.from_points(pts)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for oid, p in enumerate(pts):
            buckets.setdefault(universe.grid_index(p, grid, grid),
                               []).append(oid)
        shards: List[Shard] = []
        for sid, cell in enumerate(sorted(buckets)):
            oids = buckets[cell]
            tree = bulk_load_str([pts[i] for i in oids], capacity=capacity,
                                 fill=fill, oids=oids)
            if buffer_fraction > 0.0:
                tree.attach_lru_buffer(buffer_fraction)
            shards.append(Shard(
                sid=sid,
                cell=cell,
                bounds=universe.grid_cell(cell[0], cell[1], grid, grid),
                server=LocationServer(tree, universe),
            ))
        return cls(shards, universe, grid, capacity=capacity,
                   max_workers=max_workers, execution=execution,
                   buffer_fraction=buffer_fraction)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[Shard]:
        return sorted(self._by_cell.values(), key=lambda s: s.sid)

    @property
    def num_shards(self) -> int:
        return len(self._by_cell)

    def _live(self) -> List[Shard]:
        return [s for s in self.shards if s.num_points > 0]

    def close(self) -> None:
        """Shut down the scatter-gather worker pools.

        Idempotent: closing twice (or closing a server that never built
        a pool) is a no-op.  A process-backend server also registers an
        ``atexit`` hook when its pool is first built, so fork workers
        are reaped at interpreter exit even if the owner forgets to
        close — the hook holds only a weak reference and unregisters
        itself here, so a closed server is collectable.
        """
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._proc_pool is not None:
                self._proc_pool.shutdown(wait=True)
                self._proc_pool = None
                self._proc_epoch = -1
            if self._atexit_cb is not None:
                atexit.unregister(self._atexit_cb)
                self._atexit_cb = None

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # updates (bump the epoch: outstanding validity regions die)
    # ------------------------------------------------------------------
    def insert_object(self, oid: int, x: float, y: float) -> None:
        """Add a data point, creating its grid cell's shard on demand."""
        cell = self.universe.grid_index((x, y), self.grid, self.grid)
        shard = self._by_cell.get(cell)
        if shard is None:
            tree = RStarTree(capacity=self._capacity)
            sid = 1 + max((s.sid for s in self._by_cell.values()),
                          default=-1)
            shard = Shard(
                sid=sid,
                cell=cell,
                bounds=self.universe.grid_cell(cell[0], cell[1],
                                               self.grid, self.grid),
                server=LocationServer(tree, self.universe,
                                      kernel=self._kernel),
            )
            self._by_cell[cell] = shard
        shard.server.insert_object(oid, x, y)
        self.epoch += 1

    def delete_object(self, oid: int, x: float, y: float) -> bool:
        """Remove a data point from its cell's shard."""
        cell = self.universe.grid_index((x, y), self.grid, self.grid)
        shard = self._by_cell.get(cell)
        if shard is None:
            return False
        removed = shard.server.delete_object(oid, x, y)
        if removed:
            self.epoch += 1
        return removed

    # ------------------------------------------------------------------
    # the unified entry point (mirrors LocationServer.answer)
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest):
        """Answer any typed query request by scatter-gather.

        Under an active trace context the whole scatter-gather runs in
        a ``shard_fanout`` span; each queried shard hangs its own
        ``shard_<sid>`` child (with the disk-phase spans beneath it),
        so the fan-out renders as real parallel tracks in exporters.
        """
        with obs_span("shard_fanout") as fan:
            response = self._dispatch(request)
            if fan is not None:
                detail = response.detail
                fan.meta.update({
                    "shards_queried": getattr(detail, "shards_queried", 0),
                    "shards_pruned": getattr(detail, "shards_pruned", 0),
                    "node_accesses": sum(getattr(
                        detail, "per_shard_node_accesses", {}).values()),
                })
            return response

    def _dispatch(self, request: QueryRequest):
        return query_semantics(request).shard_execute(self, request)

    def dataset_entries(self) -> List[LeafEntry]:
        """Every live entry across all shards (no simulated I/O).

        The centralized :meth:`~repro.core.api.QuerySemantics.execute`
        fallback answers snapshot-style query types (reverse-kNN,
        probabilistic kNN) from this merged view.
        """
        out: List[LeafEntry] = []
        for s in self._live():
            out.extend(s.server.tree.points())
        return out

    # ------------------------------------------------------------------
    # scatter-gather plumbing
    # ------------------------------------------------------------------
    def _run(self, jobs):
        """Run thunks on the worker pool (inline when it cannot help).

        Pool threads do not inherit the caller's trace context, so it
        is captured here and explicitly re-attached inside each worker
        — per-shard spans stay parented under the query's trace.
        """
        if self._max_workers <= 1 or len(jobs) <= 1:
            return [job() for job in jobs]
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard")
            pool = self._pool
        ctx = current_trace()

        def handoff(job):
            def run():
                with attach(ctx):
                    return job()
            return run

        return [f.result() for f in [pool.submit(handoff(job))
                                     for job in jobs]]

    # ------------------------------------------------------------------
    # process-pool scatter
    # ------------------------------------------------------------------
    def _ensure_proc_pool(self) -> ProcessPoolExecutor:
        """The lazily-built process pool, rebuilt after data updates.

        Workers load every shard's pre-serialized R*-tree exactly once
        at initialization (``tree_to_bytes`` images through the pool
        initializer); an epoch bump invalidates the pool, so the next
        query ships fresh snapshots.
        """
        with self._pool_lock:
            if (self._proc_pool is not None
                    and self._proc_epoch != self.epoch):
                self._proc_pool.shutdown(wait=True)
                self._proc_pool = None
            if self._proc_pool is None:
                blobs = {s.sid: tree_to_bytes(s.server.tree)
                         for s in self._live()}
                universe = (self.universe.xmin, self.universe.ymin,
                            self.universe.xmax, self.universe.ymax)
                try:
                    mp_ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    mp_ctx = multiprocessing.get_context()
                self._proc_pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=mp_ctx,
                    initializer=worker_init,
                    initargs=(blobs, universe, self._kernel.name,
                              self._buffer_fraction))
                self._proc_epoch = self.epoch
                if self._atexit_cb is None:
                    # Reap fork workers at interpreter exit; weakly bound
                    # so the hook never keeps a dropped server alive.
                    self._atexit_cb = functools.partial(
                        _close_at_exit, weakref.ref(self))
                    atexit.register(self._atexit_cb)
            return self._proc_pool

    def _scatter_process(self, kind: str, params: Tuple,
                         jobs: List[Tuple[Shard, Tuple]],
                         budget: Optional[QueryBudget]):
        """Scatter shard jobs over the process pool.

        Jobs are chunked into one request frame per worker (MINDIST
        order is preserved); every decoded job result is folded back
        into the parent's world: the response objects are rebuilt from
        the frame, the per-phase I/O deltas are merged into the shard's
        own counters, and the worker's span tree is re-injected into
        the live trace — shifted by the parent's elapsed time at
        submission, so process workers render like thread workers.

        Returns ``(shard, response, node_accesses)`` triples exactly
        like :meth:`_metered`.
        """
        pool = self._ensure_proc_pool()
        ctx = current_trace()
        trace_id = ctx.trace_id if ctx is not None else None
        deadline = budget.deadline_ms if budget is not None else None
        max_na = budget.max_node_accesses if budget is not None else None
        chunks = [jobs[i::self._max_workers]
                  for i in range(min(self._max_workers, len(jobs)))]
        chunks = [c for c in chunks if c]
        shift_ms = ctx.elapsed_ms() if ctx is not None else 0.0
        futures = []
        for chunk in chunks:
            frame = RequestFrame(
                kind=kind,
                params=params,
                jobs=[job for _shard, job in chunk],
                deadline_ms=deadline,
                max_node_accesses=max_na,
                trace_id=trace_id,
            )
            futures.append(pool.submit(worker_run, encode_request(frame)))
        by_sid = {s.sid: s for s in self._live()}
        out = []
        for chunk, future in zip(chunks, futures):
            for job in decode_response(future.result(), self.universe):
                shard = by_sid[job.sid]
                stats = shard.server.io_stats
                stats.node_accesses.update(job.node_accesses)
                stats.page_faults.update(job.page_faults)
                if ctx is not None:
                    self._inject_spans(ctx, job.spans, shift_ms)
                # The worker's counters merge back here — the one place
                # process-backend shard work is visible to the registry.
                self._meter_shard(shard.sid, sum(job.node_accesses.values()))
                out.append((shard, job.response,
                            sum(job.node_accesses.values())))
        # Preserve the caller's job order (MINDIST order), not the
        # chunk interleave.
        rank = {job[0].sid: i for i, job in enumerate(jobs)}
        out.sort(key=lambda item: rank[item[0].sid])
        return out

    @staticmethod
    def _inject_spans(ctx, spans, shift_ms: float) -> None:
        """Replay a worker's span tree under the active trace context.

        Span ids are process-local, so parent links arrive as indices
        and are remapped to the fresh ids ``add_span`` assigns; offsets
        shift from the worker's trace origin to the parent's.
        """
        new_ids: Dict[int, str] = {}
        for i, (name, offset_ms, duration_ms, parent_idx, meta) in (
                enumerate(spans)):
            parent_id = new_ids.get(parent_idx)
            span_ = ctx.add_span(name, offset_ms + shift_ms, duration_ms,
                                 meta=meta, parent_id=parent_id)
            new_ids[i] = span_.span_id

    def _metered(self, shard: Shard, fn):
        """Run ``fn`` under a per-shard child span and report the node
        accesses it cost the shard."""
        with obs_span(f"shard_{shard.sid}",
                      meta={"sid": shard.sid}) as span_:
            before = shard.server.io_stats.total_node_accesses
            response = fn()
            after = shard.server.io_stats.total_node_accesses
            if span_ is not None:
                span_.meta["node_accesses"] = after - before
        self._meter_shard(shard.sid, after - before)
        return shard, response, after - before

    @staticmethod
    def _split_budget(budget: Optional[QueryBudget],
                      ways: int) -> Optional[QueryBudget]:
        if budget is None or ways <= 1:
            return budget
        if budget.max_node_accesses is None:
            return budget
        return QueryBudget(
            deadline_ms=budget.deadline_ms,
            max_node_accesses=max(1, budget.max_node_accesses // ways),
        )

    # ------------------------------------------------------------------
    # kNN
    # ------------------------------------------------------------------
    def _knn(self, location, k: int = 1, vertex_policy: str = "fifo",
             budget: Optional[QueryBudget] = None) -> KNNResponse:
        loc = (float(location[0]), float(location[1]))
        live = self._live()
        if not live:
            raise ValueError("kNN query over an empty sharded dataset")
        # Ordering and pruning compare *squared* MINDIST — identical
        # order, and sqrt stays off the scatter hot path.
        order = sorted(live, key=lambda s: s.data_mbr.mindist_sq(loc))

        # The nearest shard runs inline: its k-th distance is the
        # pruning bound for everyone else.
        first = order[0]
        sub_budget = self._split_budget(budget, len(order))
        first_k = min(k, first.num_points)
        queried = [self._metered(
            first, lambda: first.server._knn(
                loc, k=first_k, vertex_policy=vertex_policy,
                budget=sub_budget))]
        if first_k == k and len(queried[0][1].neighbors) >= k:
            last = queried[0][1].neighbors[-1]
            d2_bound = (last.x - loc[0]) ** 2 + (last.y - loc[1]) ** 2
        else:
            d2_bound = math.inf

        survivors = [s for s in order[1:]
                     if s.data_mbr.mindist_sq(loc) <= d2_bound]
        pruned = [s for s in order[1:]
                  if s.data_mbr.mindist_sq(loc) > d2_bound]
        emit_event("shard", event="shard.scatter", kind="knn",
                   visited=[first.sid] + [s.sid for s in survivors],
                   pruned=[s.sid for s in pruned])
        if survivors and self.execution.backend == "process":
            queried.extend(self._scatter_process(
                "knn", (loc[0], loc[1], vertex_policy),
                [(s, (s.sid, min(k, s.num_points))) for s in survivors],
                sub_budget))
        else:
            queried.extend(self._run([
                (lambda s=s: self._metered(
                    s, lambda: s.server._knn(
                        loc, k=min(k, s.num_points),
                        vertex_policy=vertex_policy, budget=sub_budget)))
                for s in survivors
            ]))

        # Gather: global top-k of the candidate union (squared keys —
        # the ordering is the same, sqrt waits until the safety radius).
        candidates = sorted(
            ((e.x - loc[0]) ** 2 + (e.y - loc[1]) ** 2, e.oid, e)
            for _s, resp, _na in queried for e in resp.neighbors)
        top = candidates[:k]
        neighbors = [e for _d2, _oid, e in top]

        # The safety disk: freeze the cross-shard candidate ordering and
        # keep every pruned shard out of reach.
        rho: Optional[float] = None
        if len(candidates) > k:
            rho = (math.sqrt(candidates[k][0])
                   - math.sqrt(candidates[k - 1][0])) / 2.0
        if pruned:
            d_k = math.sqrt(top[-1][0])
            slack = min((math.sqrt(s.data_mbr.mindist_sq(loc)) - d_k) / 2.0
                        for s in pruned)
            rho = slack if rho is None else min(rho, slack)

        components = [resp.region for _s, resp, _na in queried]
        if rho is not None:
            components.append(ValidityDisk(loc, max(rho, 0.0)))
        region = (components[0] if len(components) == 1
                  else CompositeValidityRegion(components))

        shard_details = [(s.sid, resp.detail) for s, resp, _na in queried]
        detail = ShardedKNNDetail(
            query=loc,
            k=k,
            neighbors=neighbors,
            safety_radius=None if rho is None else max(rho, 0.0),
            shards_total=len(live),
            shards_queried=len(queried),
            shards_pruned=len(pruned),
            per_shard_node_accesses={s.sid: na for s, _r, na in queried},
            shard_details=shard_details,
            num_tp_queries=sum(
                getattr(d, "num_tp_queries", 0) for _sid, d in shard_details),
            degraded=any(
                getattr(d, "degraded", False) for _sid, d in shard_details),
        )
        self.queries_processed += 1
        return KNNResponse(neighbors=neighbors, region=region, detail=detail)

    # ------------------------------------------------------------------
    # window
    # ------------------------------------------------------------------
    def _window(self, focus, width: float, height: float,
                budget: Optional[QueryBudget] = None) -> WindowResponse:
        f = (float(focus[0]), float(focus[1]))
        hw, hh = width / 2.0, height / 2.0
        live = self._live()
        # A shard can contribute iff the focus lies in the Minkowski
        # hull of its points' window rectangles.
        contributing = [s for s in live
                        if s.data_mbr.inflated(hw, hh).contains_point(f)]
        others = [s for s in live if not
                  s.data_mbr.inflated(hw, hh).contains_point(f)]

        sub_budget = self._split_budget(budget, len(contributing))
        emit_event("shard", event="shard.scatter", kind="window",
                   visited=[s.sid for s in contributing],
                   pruned=[s.sid for s in others])
        if contributing and self.execution.backend == "process":
            queried = self._scatter_process(
                "window", (f[0], f[1], width, height),
                [(s, (s.sid,)) for s in contributing], sub_budget)
        else:
            queried = self._run([
                (lambda s=s: self._metered(
                    s, lambda: s.server._window(f, width, height,
                                                budget=sub_budget)))
                for s in contributing
            ])

        rect = self.universe
        for _s, resp, _na in queried:
            overlap = rect.intersection(resp.region.rect)
            if overlap is None:  # numerically disjoint: collapse to f
                overlap = Rect(f[0], f[1], f[0], f[1])
            rect = overlap

        # Exclude every unqueried shard the rectangle could still reach.
        cuts = 0
        for s in others:
            hull = s.data_mbr.inflated(hw, hh)
            if hull.intersects(rect):
                rect = _cut_away(rect, hull, f)
                cuts += 1

        result = sorted((e for _s, resp, _na in queried
                         for e in resp.result), key=lambda e: e.oid)
        shard_details = [(s.sid, resp.detail) for s, resp, _na in queried]
        detail = ShardedWindowDetail(
            focus=f,
            window=Rect(f[0] - hw, f[1] - hh, f[0] + hw, f[1] + hh),
            result=result,
            conservative_region=rect,
            shards_total=len(live),
            shards_queried=len(queried),
            shards_pruned=len(others),
            shards_cut=cuts,
            per_shard_node_accesses={s.sid: na for s, _r, na in queried},
            shard_details=shard_details,
            degraded=any(
                getattr(d, "degraded", False) for _sid, d in shard_details),
        )
        self.queries_processed += 1
        return WindowResponse(result=result,
                              region=WindowValidityRegion(rect),
                              detail=detail)

    # ------------------------------------------------------------------
    # range
    # ------------------------------------------------------------------
    def _range(self, location, radius: float,
               budget: Optional[QueryBudget] = None) -> RangeResponse:
        loc = (float(location[0]), float(location[1]))
        live = self._live()
        r2 = radius * radius
        reachable = [s for s in live
                     if s.data_mbr.mindist_sq(loc) <= r2]
        pruned = [s for s in live if s.data_mbr.mindist_sq(loc) > r2]

        sub_budget = self._split_budget(budget, len(reachable))
        emit_event("shard", event="shard.scatter", kind="range",
                   visited=[s.sid for s in reachable],
                   pruned=[s.sid for s in pruned])
        if reachable and self.execution.backend == "process":
            queried = self._scatter_process(
                "range", (loc[0], loc[1], radius),
                [(s, (s.sid,)) for s in reachable], sub_budget)
        else:
            queried = self._run([
                (lambda s=s: self._metered(
                    s, lambda: s.server._range(loc, radius,
                                               budget=sub_budget)))
                for s in reachable
            ])

        validity_radius = math.inf
        for _s, resp, _na in queried:
            validity_radius = min(validity_radius,
                                  resp.detail.validity_radius)
        for s in pruned:
            validity_radius = min(
                validity_radius,
                math.sqrt(s.data_mbr.mindist_sq(loc)) - radius)
        validity_radius = max(validity_radius, 0.0)

        result = sorted((e for _s, resp, _na in queried
                         for e in resp.result), key=lambda e: e.oid)
        shard_details = [(s.sid, resp.detail) for s, resp, _na in queried]
        detail = ShardedRangeDetail(
            focus=loc,
            radius=radius,
            result=result,
            validity_radius=validity_radius,
            shards_total=len(live),
            shards_queried=len(queried),
            shards_pruned=len(pruned),
            per_shard_node_accesses={s.sid: na for s, _r, na in queried},
            shard_details=shard_details,
            degraded=any(
                getattr(d, "degraded", False) for _sid, d in shard_details),
        )
        self.queries_processed += 1
        return RangeResponse(
            result=result,
            region=RangeValidityRegion(Point(loc[0], loc[1]),
                                       validity_radius),
            detail=detail,
        )

    # ------------------------------------------------------------------
    # instrumentation — the same narrow interface as LocationServer
    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> AccessStats:
        """A merged *snapshot* of every shard's counters (fresh object)."""
        merged = AccessStats()
        for s in self.shards:
            merged.merge(s.server.io_stats)
        return merged

    def reset_io_stats(self) -> None:
        for s in self.shards:
            s.server.reset_io_stats()

    @property
    def num_points(self) -> int:
        return sum(s.num_points for s in self.shards)

    @property
    def num_pages(self) -> int:
        return sum(s.server.num_pages for s in self.shards)

    def node_accesses_by_phase(self) -> Dict[str, int]:
        return self.io_stats.node_accesses_by_phase()

    def page_faults_by_phase(self) -> Dict[str, int]:
        return self.io_stats.page_faults_by_phase()

    def set_phase_listener(self, listener):
        """Install (or clear) the listener on every shard's disk.

        Shard queries run on pool threads, so a listener observing a
        sharded server must be thread-safe.  Returns the listener it
        replaced on the first shard (they are installed uniformly).
        """
        previous = None
        for i, s in enumerate(self.shards):
            old = s.server.set_phase_listener(listener)
            if i == 0:
                previous = old
        return previous

    def disk_snapshot(self) -> Dict[str, object]:
        """Aggregated disk state plus the per-shard breakdown."""
        return {
            "stats": self.io_stats.as_dict(),
            "buffer": None,
            "shards": self.shard_snapshot(),
        }

    def shard_snapshot(self) -> List[Dict[str, object]]:
        """JSON-serializable per-shard topology and I/O accounting."""
        out = []
        for s in self.shards:
            out.append({
                "sid": s.sid,
                "cell": list(s.cell),
                "num_points": s.num_points,
                "num_pages": s.server.num_pages,
                "queries_processed": s.server.queries_processed,
                "node_accesses": s.server.io_stats.total_node_accesses,
                "page_faults": s.server.io_stats.total_page_faults,
            })
        return out
