"""Admission control: concurrency gating, fast reject, brownout ladder.

Overload protection for the query service.  Without it, a traffic
spike piles requests onto the executor until every query misses its
deadline — the classic queued-then-expired collapse.  The
:class:`AdmissionController` in front of the execution path enforces:

* a **concurrency gate** — at most ``max_concurrency`` queries execute
  at once; up to ``max_queue_depth`` more may wait, but never longer
  than ``queue_timeout_ms``;
* **deadline-aware fast reject** — a request whose estimated queue wait
  (EWMA service latency × queue position) already exceeds its deadline
  is rejected *immediately*, in microseconds, instead of being queued
  and expiring: the caller gets back-pressure while it is still
  actionable;
* a **brownout ladder** — as the load factor
  ``(inflight + queued) / max_concurrency`` climbs, the service sheds
  load in grades rather than falling over:

  ========  ===================  ==========================================
  level     name                 behaviour
  ========  ===================  ==========================================
  0         ``normal``           full service
  1         ``reduced``          budget-less requests get the (small)
                                 ``brownout_budget`` — reduced kernel probe
                                 levels, degraded (shrunk-region) responses
  2         ``cache_only``       cache hits are served (with an extra
                                 conservative region shrink); misses are
                                 fast-rejected
  3         ``reject``           everything is fast-rejected
  ========  ===================  ==========================================

:class:`AdmissionRejectedError` carries the duck-typed ``transient``
flag, so a :class:`~repro.core.client.MobileClient` with ``max_stale``
turns an overload rejection into a bounded-stale cached answer — the
"overloaded degraded response" end to end.  Like
:class:`~repro.service.faults.CircuitOpenError`, it is deliberately
never retried by the service itself: retrying into an overloaded gate
only deepens the overload.

The controller is pure mechanism (no metrics, no events); the service
layer meters every decision it makes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional

from repro.core.api import QueryBudget

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejectedError",
    "LEVEL_NORMAL",
    "LEVEL_REDUCED",
    "LEVEL_CACHE_ONLY",
    "LEVEL_REJECT",
    "LEVEL_NAMES",
]

LEVEL_NORMAL = 0
LEVEL_REDUCED = 1
LEVEL_CACHE_ONLY = 2
LEVEL_REJECT = 3
LEVEL_NAMES = ("normal", "reduced", "cache_only", "reject")


class AdmissionRejectedError(RuntimeError):
    """The admission gate shed this request (fast, before any queueing).

    ``transient = True`` lets clients fall back to their bounded-stale
    cache; the service itself never retries an admission rejection.
    """

    transient = True

    def __init__(self, reason: str, retry_after_s: float = 0.0):
        super().__init__(f"admission rejected: {reason}")
        self.reason = reason
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class AdmissionConfig:
    """Shape of the admission gate and its brownout ladder.

    ``reduce_at`` / ``cache_only_at`` / ``reject_at`` are load factors
    (``(inflight + queued) / max_concurrency``) at which the ladder
    steps up; they must be non-decreasing.  ``brownout_budget`` is
    applied to budget-less requests at the ``reduced`` level;
    ``cache_only_shrink`` scales the extra conservative region shrink
    applied to cache hits served at the ``cache_only`` level.
    """

    max_concurrency: int = 32
    max_queue_depth: int = 64
    queue_timeout_ms: float = 50.0
    reduce_at: float = 1.0
    cache_only_at: float = 1.5
    reject_at: float = 2.0
    brownout_budget: QueryBudget = field(
        default_factory=lambda: QueryBudget(max_node_accesses=64))
    cache_only_shrink: float = 0.5
    #: EWMA weight of the newest latency sample (wait estimation).
    ewma_alpha: float = 0.2

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if self.queue_timeout_ms < 0:
            raise ValueError("queue_timeout_ms must be non-negative")
        if not (0.0 < self.reduce_at <= self.cache_only_at <= self.reject_at):
            raise ValueError("brownout thresholds must be positive and "
                             "non-decreasing: reduce_at <= cache_only_at "
                             "<= reject_at")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not (0.0 < self.cache_only_shrink <= 1.0):
            raise ValueError("cache_only_shrink must be in (0, 1]")


class AdmissionController:
    """The thread-safe gate itself: slots, queue, load-factor ladder."""

    def __init__(self, config: Optional[AdmissionConfig] = None,
                 clock=perf_counter):
        self.config = config if config is not None else AdmissionConfig()
        self._clock = clock
        self._cv = threading.Condition(threading.Lock())
        self.inflight = 0
        self.queued = 0
        #: EWMA of observed execution latency (ms); None until a sample.
        self._ewma_ms: Optional[float] = None
        #: Test/operations hook: pin the brownout level regardless of load.
        self.forced_level: Optional[int] = None
        #: Floor set by the SLO engine (burn-rate-driven brownout): the
        #: effective level is the max of the load-factor ladder and this
        #: floor, so budget burn sheds load even while queues look fine.
        self.slo_level = LEVEL_NORMAL
        # Decision tallies (the service mirrors these into its registry).
        self.accepted = 0
        self.rejected_queue_full = 0
        self.rejected_deadline = 0
        self.rejected_timeout = 0

    # ------------------------------------------------------------------
    # the brownout ladder
    # ------------------------------------------------------------------
    def load_factor(self) -> float:
        with self._cv:
            return (self.inflight + self.queued) / self.config.max_concurrency

    def level(self) -> int:
        """The current brownout level (``LEVEL_*``)."""
        return self._level_for(self.load_factor())

    def _level_for(self, load: float) -> int:
        if self.forced_level is not None:
            return self.forced_level
        if load >= self.config.reject_at:
            level = LEVEL_REJECT
        elif load >= self.config.cache_only_at:
            level = LEVEL_CACHE_ONLY
        elif load >= self.config.reduce_at:
            level = LEVEL_REDUCED
        else:
            level = LEVEL_NORMAL
        return max(level, self.slo_level)

    def set_slo_level(self, level: int) -> None:
        """Set the SLO-driven brownout floor (``LEVEL_*``; clamped)."""
        with self._cv:
            self.slo_level = max(LEVEL_NORMAL, min(LEVEL_REJECT, int(level)))

    # ------------------------------------------------------------------
    # the gate
    # ------------------------------------------------------------------
    def try_acquire(self, deadline_ms: Optional[float] = None) -> float:
        """Take an execution slot; returns the time queued (ms).

        Raises :class:`AdmissionRejectedError` — without ever sleeping —
        when the queue is full or the estimated wait already exceeds
        ``deadline_ms``; raises it after at most ``queue_timeout_ms``
        (further capped by the deadline) when no slot frees up in time.
        """
        t0 = self._clock()
        cfg = self.config
        with self._cv:
            if self.inflight < cfg.max_concurrency and self.queued == 0:
                self.inflight += 1
                self.accepted += 1
                return 0.0
            # Fast-reject paths: no sleep, no queueing.
            if self.queued >= cfg.max_queue_depth:
                self.rejected_queue_full += 1
                raise AdmissionRejectedError(
                    "queue full", retry_after_s=self._est_wait_ms() / 1e3)
            est = self._est_wait_ms()
            if deadline_ms is not None and est > deadline_ms:
                self.rejected_deadline += 1
                raise AdmissionRejectedError(
                    f"estimated wait {est:.1f}ms exceeds deadline "
                    f"{deadline_ms:.1f}ms", retry_after_s=est / 1e3)
            # Queue, bounded by the timeout and the deadline.
            wait_budget_ms = cfg.queue_timeout_ms
            if deadline_ms is not None:
                wait_budget_ms = min(wait_budget_ms, deadline_ms)
            self.queued += 1
            try:
                while self.inflight >= cfg.max_concurrency:
                    remaining_s = (wait_budget_ms / 1e3
                                   - (self._clock() - t0))
                    if remaining_s <= 0 or not self._cv.wait(remaining_s):
                        self.rejected_timeout += 1
                        raise AdmissionRejectedError(
                            f"queued {((self._clock() - t0) * 1e3):.1f}ms "
                            "without a slot")
                self.inflight += 1
                self.accepted += 1
            finally:
                self.queued -= 1
            return (self._clock() - t0) * 1e3

    def release(self, latency_ms: Optional[float] = None) -> None:
        """Return a slot; ``latency_ms`` feeds the wait estimator."""
        with self._cv:
            self.inflight = max(0, self.inflight - 1)
            if latency_ms is not None:
                alpha = self.config.ewma_alpha
                self._ewma_ms = (latency_ms if self._ewma_ms is None
                                 else (1 - alpha) * self._ewma_ms
                                 + alpha * latency_ms)
            self._cv.notify()

    def _est_wait_ms(self) -> float:
        """Expected queue wait for a new arrival (lock held by caller)."""
        if self._ewma_ms is None:
            return 0.0  # no signal yet: optimistic, let the timeout decide
        return self._ewma_ms * (self.queued + 1) / self.config.max_concurrency

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._cv:
            est = self._est_wait_ms()
            load = ((self.inflight + self.queued)
                    / self.config.max_concurrency)
            return {
                "inflight": self.inflight,
                "queued": self.queued,
                "max_concurrency": self.config.max_concurrency,
                "max_queue_depth": self.config.max_queue_depth,
                "load_factor": load,
                "level": LEVEL_NAMES[self._level_for(load)],
                "slo_level": LEVEL_NAMES[self.slo_level],
                "accepted": self.accepted,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_deadline": self.rejected_deadline,
                "rejected_timeout": self.rejected_timeout,
                "ewma_latency_ms": self._ewma_ms,
                "estimated_wait_ms": est,
            }
