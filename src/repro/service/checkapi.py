"""The public-API drift check: ``python -m repro.service.checkapi``.

The canonical public surface is ``repro.__all__``; docs/API.md is its
contract with users.  CI runs this module so the two cannot drift
apart silently: it fails when

* a name in ``repro.__all__`` does not actually resolve on the package
  (a stale or misspelled export),
* a name in ``repro.__all__`` is not documented in docs/API.md (added
  an export without documenting it), or
* docs/API.md declares a name in its "Public surface" section that the
  package no longer exports (removed/renamed an export without
  updating the docs).

docs/API.md declares the surface with single-backtick code spans
(`` `build_service` ``); only the section between the markers
``<!-- api:begin -->`` and ``<!-- api:end -->`` is parsed, so prose
elsewhere in the document can mention internals freely.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Optional, Set

import repro

#: Markers bounding the machine-checked section of docs/API.md.
BEGIN = "<!-- api:begin -->"
END = "<!-- api:end -->"

_CODE_SPAN = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def documented_names(api_md: str) -> Set[str]:
    """Names declared inside the marked section of docs/API.md."""
    try:
        start = api_md.index(BEGIN) + len(BEGIN)
        stop = api_md.index(END, start)
    except ValueError:
        raise SystemExit(
            f"docs/API.md is missing the {BEGIN} / {END} markers that "
            "delimit the canonical public surface")
    return set(_CODE_SPAN.findall(api_md[start:stop]))


def check(api_md_path: Optional[Path] = None) -> List[str]:
    """Every drift problem found (empty means the API is in sync)."""
    if api_md_path is None:
        api_md_path = (Path(repro.__file__).resolve()
                       .parent.parent.parent / "docs" / "API.md")
    problems: List[str] = []
    exported = [n for n in repro.__all__ if n != "__version__"]
    for name in exported:
        if not hasattr(repro, name):
            problems.append(
                f"repro.__all__ lists {name!r} but repro has no such "
                "attribute")
    if not api_md_path.is_file():
        problems.append(f"docs/API.md not found at {api_md_path}")
        return problems
    declared = documented_names(api_md_path.read_text())
    for name in exported:
        if name not in declared:
            problems.append(
                f"{name!r} is exported by repro.__all__ but not "
                "documented in docs/API.md — document it between the "
                "api:begin/api:end markers")
    for name in sorted(declared):
        if name not in exported:
            problems.append(
                f"{name!r} is documented in docs/API.md but not "
                "exported by repro.__all__ — remove it from the docs "
                "or restore the export")
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("public API drift detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"public API in sync: {len(repro.__all__) - 1} exported names "
          "documented in docs/API.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
