"""Structured per-query tracing.

A :class:`QueryTrace` records everything one query did inside the
service: the wall-clock spans of each processing stage (index descent,
TPNN vertex probing, bisector clipping, serialization…), the
phase-attributed node accesses and page faults the simulated disk
charged to it, the payload it shipped, and the result size.  Traces are
plain data — :meth:`QueryTrace.as_dict` is JSON-serializable — and the
service retains the most recent ones in a bounded ring buffer.

Span names are normalized through :data:`SPAN_NAMES` so the disk-level
phase vocabulary ("nn", "tpnn", "result", "influence") surfaces under
the stage names the paper's processing pipeline uses.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "QueryTrace", "SPAN_NAMES", "TraceBuffer"]

#: Disk phase name → trace span name.
SPAN_NAMES = {
    "nn": "index_descent",
    "result": "index_descent",
    "tpnn": "tpnn_probing",
    "influence": "influence_probing",
}


@dataclass
class Span:
    """One timed stage of a query's server-side processing."""

    name: str
    #: Seconds after the trace started that this span began.
    offset_ms: float
    duration_ms: float
    #: Free-form annotations (node accesses in the span's phase, …).
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "name": self.name,
            "offset_ms": self.offset_ms,
            "duration_ms": self.duration_ms,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


@dataclass
class QueryTrace:
    """The full record of one query through the service."""

    trace_id: str
    kind: str
    #: Unix timestamp the query arrived.
    started_at: float
    duration_ms: float = 0.0
    spans: List[Span] = field(default_factory=list)
    #: Node accesses this query caused, by disk phase.
    node_accesses: Dict[str, int] = field(default_factory=dict)
    #: Page faults this query caused, by disk phase.
    page_faults: Dict[str, int] = field(default_factory=dict)
    transfer_bytes: int = 0
    result_size: int = 0
    #: Set when the request failed; the exception text.
    error: Optional[str] = None
    #: Transparent retries the service performed for this query.
    retries: int = 0
    #: True when the response shipped a degraded (shrunk) validity
    #: region because the query budget ran out.
    degraded: bool = False

    @property
    def total_node_accesses(self) -> int:
        return sum(self.node_accesses.values())

    def span(self, name: str) -> Optional[Span]:
        """The first span called ``name``, if any."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def as_dict(self) -> Dict[str, object]:
        out = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "started_at": self.started_at,
            "duration_ms": self.duration_ms,
            "spans": [s.as_dict() for s in self.spans],
            "node_accesses": dict(self.node_accesses),
            "page_faults": dict(self.page_faults),
            "transfer_bytes": self.transfer_bytes,
            "result_size": self.result_size,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.retries:
            out["retries"] = self.retries
        if self.degraded:
            out["degraded"] = True
        return out


class TraceBuffer:
    """A thread-safe ring buffer of the most recent query traces."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("trace capacity must be non-negative")
        self._capacity = capacity
        self._traces: List[QueryTrace] = []
        self._lock = threading.Lock()
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Traces discarded because the buffer was full."""
        return self._dropped

    def append(self, trace: QueryTrace) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._traces.append(trace)
            if len(self._traces) > self._capacity:
                del self._traces[:len(self._traces) - self._capacity]
                self._dropped += 1

    def recent(self, n: Optional[int] = None) -> List[QueryTrace]:
        """The most recent ``n`` traces (all retained ones by default)."""
        with self._lock:
            traces = list(self._traces)
        return traces if n is None else traces[-n:]

    def __len__(self) -> int:
        return len(self._traces)


def now() -> float:
    """Unix time — a hook point so tests can avoid real clocks."""
    return time.time()
