"""Structured per-query tracing.

A :class:`QueryTrace` records everything one query did inside the
service: the span **tree** of each processing stage (cache probe,
per-shard scatter-gather children, index descent, TPNN vertex probing,
bisector clipping, serialization…), the phase-attributed node accesses
and page faults the simulated disk charged to it, the payload it
shipped, and the result size.  Traces are plain data —
:meth:`QueryTrace.as_dict` is JSON-serializable — and the service
retains the most recent ones in a bounded ring buffer with id lookup
(:meth:`TraceBuffer.find`), the store behind the ``/traces/<id>``
endpoint.

Spans are produced by the :mod:`repro.obs.context` propagation layer
(the :class:`~repro.obs.context.Span` class is re-exported here for
back-compat); :data:`SPAN_NAMES` normalizes the disk-level phase
vocabulary ("nn", "tpnn", "result", "influence") onto the stage names
the paper's processing pipeline uses.

Clocks: span offsets/durations are **monotonic** (``perf_counter``
relative to :attr:`QueryTrace.monotonic_origin`) while
:attr:`QueryTrace.started_at` is a wall-clock epoch; exporters combine
the two to reconstruct absolute timestamps without mixing clocks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.context import PHASE_SPAN_NAMES, Span

__all__ = ["Span", "QueryTrace", "SPAN_NAMES", "TraceBuffer"]

#: Disk phase name → trace span name (shared with :mod:`repro.obs`).
SPAN_NAMES = PHASE_SPAN_NAMES


@dataclass
class QueryTrace:
    """The full record of one query through the service."""

    trace_id: str
    kind: str
    #: Unix timestamp the query arrived (wall clock).
    started_at: float
    #: ``perf_counter()`` value span offsets are measured against; with
    #: ``started_at`` this yields correct absolute span timestamps.
    monotonic_origin: float = 0.0
    duration_ms: float = 0.0
    spans: List[Span] = field(default_factory=list)
    #: Node accesses this query caused, by disk phase.
    node_accesses: Dict[str, int] = field(default_factory=dict)
    #: Page faults this query caused, by disk phase.
    page_faults: Dict[str, int] = field(default_factory=dict)
    transfer_bytes: int = 0
    result_size: int = 0
    #: Set when the request failed; the exception text.
    error: Optional[str] = None
    #: Transparent retries the service performed for this query.
    retries: int = 0
    #: True when the response shipped a degraded (shrunk) validity
    #: region because the query budget ran out.
    degraded: bool = False

    @property
    def total_node_accesses(self) -> int:
        return sum(self.node_accesses.values())

    def span(self, name: str) -> Optional[Span]:
        """The first span called ``name``, if any."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def children(self, parent: Optional[Span]) -> List[Span]:
        """The direct children of ``parent`` (trace-root spans for None)."""
        parent_id = parent.span_id if parent is not None else None
        ids = {s.span_id for s in self.spans if s.span_id is not None}
        out = []
        for s in self.spans:
            if parent_id is None:
                if s.parent_id is None or s.parent_id not in ids:
                    out.append(s)
            elif s.parent_id == parent_id:
                out.append(s)
        return out

    def as_dict(self) -> Dict[str, object]:
        out = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "started_at": self.started_at,
            "monotonic_origin": self.monotonic_origin,
            "duration_ms": self.duration_ms,
            "spans": [s.as_dict() for s in self.spans],
            "node_accesses": dict(self.node_accesses),
            "page_faults": dict(self.page_faults),
            "transfer_bytes": self.transfer_bytes,
            "result_size": self.result_size,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.retries:
            out["retries"] = self.retries
        if self.degraded:
            out["degraded"] = True
        return out


class TraceBuffer:
    """A thread-safe ring buffer of the most recent query traces.

    ``capacity=0`` is a true no-op sink: :meth:`append` returns without
    taking the lock (or touching anything), so high-QPS fleets can
    disable trace retention without contention.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("trace capacity must be non-negative")
        self._capacity = capacity
        #: Fast-path flag read without the lock on every append.
        self._enabled = capacity > 0
        self._traces: List[QueryTrace] = []
        self._lock = threading.Lock()
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Traces discarded because the buffer was full."""
        return self._dropped

    def append(self, trace: QueryTrace) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._traces.append(trace)
            if len(self._traces) > self._capacity:
                del self._traces[:len(self._traces) - self._capacity]
                self._dropped += 1

    def find(self, trace_id: str) -> Optional[QueryTrace]:
        """The retained trace with ``trace_id`` (newest wins), or None."""
        with self._lock:
            for trace in reversed(self._traces):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def recent(self, n: Optional[int] = None) -> List[QueryTrace]:
        """The most recent ``n`` traces (all retained ones by default)."""
        with self._lock:
            traces = list(self._traces)
        return traces if n is None else traces[-n:]

    def __len__(self) -> int:
        return len(self._traces)


def now() -> float:
    """Unix time — a hook point so tests can avoid real clocks."""
    return time.time()
