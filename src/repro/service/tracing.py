"""Structured per-query tracing.

A :class:`QueryTrace` records everything one query did inside the
service: the span **tree** of each processing stage (cache probe,
per-shard scatter-gather children, index descent, TPNN vertex probing,
bisector clipping, serialization…), the phase-attributed node accesses
and page faults the simulated disk charged to it, the payload it
shipped, and the result size.  Traces are plain data —
:meth:`QueryTrace.as_dict` is JSON-serializable — and the service
retains the most recent ones in a bounded ring buffer with id lookup
(:meth:`TraceBuffer.find`), the store behind the ``/traces/<id>``
endpoint.

Spans are produced by the :mod:`repro.obs.context` propagation layer
(the :class:`~repro.obs.context.Span` class is re-exported here for
back-compat); :data:`SPAN_NAMES` normalizes the disk-level phase
vocabulary ("nn", "tpnn", "result", "influence") onto the stage names
the paper's processing pipeline uses.

Clocks: span offsets/durations are **monotonic** (``perf_counter``
relative to :attr:`QueryTrace.monotonic_origin`) while
:attr:`QueryTrace.started_at` is a wall-clock epoch; exporters combine
the two to reconstruct absolute timestamps without mixing clocks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.context import PHASE_SPAN_NAMES, Span

__all__ = ["Span", "QueryTrace", "SPAN_NAMES", "TailSamplingConfig",
           "TraceBuffer"]

#: Disk phase name → trace span name (shared with :mod:`repro.obs`).
SPAN_NAMES = PHASE_SPAN_NAMES


@dataclass
class QueryTrace:
    """The full record of one query through the service."""

    trace_id: str
    kind: str
    #: Unix timestamp the query arrived (wall clock).
    started_at: float
    #: ``perf_counter()`` value span offsets are measured against; with
    #: ``started_at`` this yields correct absolute span timestamps.
    monotonic_origin: float = 0.0
    duration_ms: float = 0.0
    spans: List[Span] = field(default_factory=list)
    #: Node accesses this query caused, by disk phase.
    node_accesses: Dict[str, int] = field(default_factory=dict)
    #: Page faults this query caused, by disk phase.
    page_faults: Dict[str, int] = field(default_factory=dict)
    transfer_bytes: int = 0
    result_size: int = 0
    #: Set when the request failed; the exception text.
    error: Optional[str] = None
    #: Transparent retries the service performed for this query.
    retries: int = 0
    #: True when the response shipped a degraded (shrunk) validity
    #: region because the query budget ran out.
    degraded: bool = False
    #: Why the tail sampler kept this trace ("error" / "degraded" /
    #: "slow" / "slo:<name>" / "sampled"); None without tail sampling.
    retention_reason: Optional[str] = None

    @property
    def total_node_accesses(self) -> int:
        return sum(self.node_accesses.values())

    def span(self, name: str) -> Optional[Span]:
        """The first span called ``name``, if any."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def children(self, parent: Optional[Span]) -> List[Span]:
        """The direct children of ``parent`` (trace-root spans for None)."""
        parent_id = parent.span_id if parent is not None else None
        ids = {s.span_id for s in self.spans if s.span_id is not None}
        out = []
        for s in self.spans:
            if parent_id is None:
                if s.parent_id is None or s.parent_id not in ids:
                    out.append(s)
            elif s.parent_id == parent_id:
                out.append(s)
        return out

    def as_dict(self) -> Dict[str, object]:
        out = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "started_at": self.started_at,
            "monotonic_origin": self.monotonic_origin,
            "duration_ms": self.duration_ms,
            "spans": [s.as_dict() for s in self.spans],
            "node_accesses": dict(self.node_accesses),
            "page_faults": dict(self.page_faults),
            "transfer_bytes": self.transfer_bytes,
            "result_size": self.result_size,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.retries:
            out["retries"] = self.retries
        if self.degraded:
            out["degraded"] = True
        if self.retention_reason is not None:
            out["retention_reason"] = self.retention_reason
        return out


@dataclass(frozen=True)
class TailSamplingConfig:
    """Tail-based retention policy for a :class:`TraceBuffer`.

    Decisions are made at trace *end* (tail-based): errored, degraded,
    slow (``>= slow_ms``) and SLO-violating traces are always kept;
    healthy traces keep a deterministic 1-in-``keep_1_in``.  Traces sit
    in a ``decision_window``-deep pending deque before the verdict is
    applied, so the most recent traces are always findable (live
    debugging) even when they would be downsampled.
    """

    keep_1_in: int = 10
    slow_ms: Optional[float] = None
    decision_window: int = 64

    def __post_init__(self):
        if self.keep_1_in < 1:
            raise ValueError("keep_1_in must be >= 1 (keep 1-in-N)")
        if self.slow_ms is not None and self.slow_ms <= 0:
            raise ValueError("slow_ms must be positive")
        if self.decision_window < 0:
            raise ValueError("decision_window must be non-negative")


class TraceBuffer:
    """A thread-safe ring buffer of the most recent query traces.

    ``capacity=0`` is a true no-op sink: :meth:`append` returns without
    taking the lock (or touching anything), so high-QPS fleets can
    disable trace retention without contention.

    With a :class:`TailSamplingConfig` the buffer becomes a
    **tail-based sampler**: the retention decision is made when the
    trace *ends* (so it can see the outcome), recorded as
    ``retention_reason`` on the trace and its root span, and applied
    only once the trace ages out of the pending decision window — the
    newest ``decision_window`` traces are always findable regardless of
    their verdict.  ``violation_check`` (set by the service when an
    SLO engine is attached) is called as ``(kind, duration_ms)`` and
    returns the name of a violated latency SLO, or None.
    """

    def __init__(self, capacity: int = 256,
                 tail: Optional[TailSamplingConfig] = None):
        if capacity < 0:
            raise ValueError("trace capacity must be non-negative")
        self._capacity = capacity
        #: Fast-path flag read without the lock on every append.
        self._enabled = capacity > 0
        self.tail = tail
        #: Hook: (kind, duration_ms) -> violated latency-SLO name | None.
        self.violation_check = None
        self._traces: List[QueryTrace] = []
        self._pending: List[QueryTrace] = []
        self._lock = threading.Lock()
        self._dropped = 0
        self._healthy_seen = 0
        self._downsampled = 0
        self._retained_by_reason: Dict[str, int] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Traces discarded because the buffer was full."""
        return self._dropped

    def append(self, trace: QueryTrace) -> None:
        if not self._enabled:
            return
        if self.tail is None:
            with self._lock:
                self._retain_locked(trace)
            return
        with self._lock:
            reason = self._decide_locked(trace)
            if reason is not None:
                trace.retention_reason = reason
                self._retained_by_reason[reason.split(":")[0]] = (
                    self._retained_by_reason.get(reason.split(":")[0], 0) + 1)
                self._annotate_root(trace, reason)
            self._pending.append(trace)
            overflow = len(self._pending) - self.tail.decision_window
            if overflow > 0:
                decided, self._pending = (self._pending[:overflow],
                                          self._pending[overflow:])
                for aged in decided:
                    if aged.retention_reason is None:
                        self._downsampled += 1
                    else:
                        self._retain_locked(aged)

    def _retain_locked(self, trace: QueryTrace) -> None:
        self._traces.append(trace)
        if len(self._traces) > self._capacity:
            del self._traces[:len(self._traces) - self._capacity]
            self._dropped += 1

    def _decide_locked(self, trace: QueryTrace) -> Optional[str]:
        """The tail verdict: why this finished trace must be kept."""
        if trace.error is not None:
            return "error"
        if trace.degraded:
            return "degraded"
        tail = self.tail
        if tail.slow_ms is not None and trace.duration_ms >= tail.slow_ms:
            return "slow"
        check = self.violation_check
        if check is not None:
            violated = check(trace.kind, trace.duration_ms)
            if violated:
                return f"slo:{violated}"
        # Healthy: deterministic 1-in-N (the first, the N+1th, …).
        self._healthy_seen += 1
        if (self._healthy_seen - 1) % tail.keep_1_in == 0:
            return "sampled"
        return None

    @staticmethod
    def _annotate_root(trace: QueryTrace, reason: str) -> None:
        ids = {s.span_id for s in trace.spans if s.span_id is not None}
        for s in trace.spans:
            if s.parent_id is None or s.parent_id not in ids:
                s.meta["retention_reason"] = reason
                break

    def find(self, trace_id: str) -> Optional[QueryTrace]:
        """The retained trace with ``trace_id`` (newest wins), or None.

        Pending (not-yet-committed) traces are searched first: the
        newest traces are always reachable under tail sampling.
        """
        with self._lock:
            for trace in reversed(self._pending):
                if trace.trace_id == trace_id:
                    return trace
            for trace in reversed(self._traces):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def recent(self, n: Optional[int] = None) -> List[QueryTrace]:
        """The most recent ``n`` traces (all retained ones by default)."""
        with self._lock:
            traces = self._traces + self._pending
        return traces if n is None else traces[-n:]

    def sampling_stats(self) -> Dict[str, object]:
        """Tail-sampling accounting (all zeros without a tail config)."""
        with self._lock:
            return {
                "tail_sampling": self.tail is not None,
                "pending": len(self._pending),
                "retained": len(self._traces),
                "healthy_seen": self._healthy_seen,
                "downsampled": self._downsampled,
                "retained_by_reason": dict(self._retained_by_reason),
            }

    def __len__(self) -> int:
        return len(self._traces) + len(self._pending)


def now() -> float:
    """Unix time — a hook point so tests can avoid real clocks."""
    return time.time()
