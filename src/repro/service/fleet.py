"""A simulated fleet of mobile clients driving the query service.

The benchmark harness needs concurrent load, not one client in a loop:
millions of subscribers means many position updates arriving in the
same instant.  :class:`ClientFleet` models that with one
:class:`~repro.core.client.MobileClient` per simulated user, each
following its own random-waypoint trajectory, all pointed at one
:class:`~repro.service.service.QueryService`.

Dispatch is **batched per tick**: at every tick the fleet collects one
position update from every client and submits the whole batch to a
``ThreadPoolExecutor``; the next tick starts only when the batch has
drained — the synchronous position-report round a real ingest tier
would run.  Client-side cache checks run concurrently in the pool;
queries that miss go through the service (and are traced/metered
there).
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.client import ClientStats, MobileClient
from repro.mobility import random_waypoint
from repro.service.service import QueryService

__all__ = ["FleetConfig", "FleetReport", "ClientFleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the simulated workload."""

    num_clients: int = 8
    #: Query mix: fraction of clients per query type.  Remaining
    #: clients (after the explicit shares) issue range queries.
    knn_share: float = 0.5
    window_share: float = 0.3
    rknn_share: float = 0.0
    probknn_share: float = 0.0
    k: int = 3
    window_width: float = 0.1
    window_height: float = 0.1
    range_radius: float = 0.05
    probknn_uncertainty: float = 0.02
    speed: float = 0.01
    #: Fraction of clients using the §7 incremental (delta) protocol.
    incremental_share: float = 0.0
    #: Fraction of clients running as continuous-query subscribers
    #: (server push; see :mod:`repro.service.continuous`).  Subscribed
    #: clients never use the delta protocol — pushes supersede it.
    subscription_share: float = 0.0
    seed: int = 0
    #: Per-client staleness bound for graceful degradation
    #: (:class:`~repro.core.client.MobileClient` ``max_stale``); ``None``
    #: keeps the fail-fast behaviour.
    max_stale: Optional[int] = None
    #: Count client failures and keep the run going instead of
    #: propagating the first exception (chaos runs want the tally).
    continue_on_error: bool = False

    def __post_init__(self):
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        shares = (self.knn_share + self.window_share
                  + self.rknn_share + self.probknn_share)
        if (min(self.knn_share, self.window_share, self.rknn_share,
                self.probknn_share) < 0.0 or shares > 1.0 + 1e-9):
            raise ValueError("query-mix shares must be >= 0 and sum to <= 1")
        if self.probknn_uncertainty <= 0.0:
            raise ValueError("probknn_uncertainty must be positive")
        if not 0.0 <= self.incremental_share <= 1.0:
            raise ValueError("incremental_share must be in [0, 1]")
        if not 0.0 <= self.subscription_share <= 1.0:
            raise ValueError("subscription_share must be in [0, 1]")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be None or >= 0")


@dataclass
class FleetReport:
    """What one fleet run produced."""

    ticks: int
    num_clients: int
    #: Aggregate of every client's protocol accounting.
    stats: ClientStats
    #: ``service.stats_snapshot()`` taken at the end of the run.
    snapshot: Dict[str, object]
    #: Per-kind client counts actually simulated.
    mix: Dict[str, int] = field(default_factory=dict)
    #: Client-visible failures swallowed under ``continue_on_error``.
    errors: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        return self.stats.query_saving


class _SimulatedClient:
    """One user: a mobile client plus the trajectory it follows."""

    def __init__(self, client: MobileClient, kind: str, positions, cfg):
        self.client = client
        self.kind = kind
        self._positions = positions
        self._cfg = cfg

    def step(self, tick: int) -> None:
        pos = self._positions[tick]
        if self.kind == "knn":
            self.client.knn(pos, k=self._cfg.k)
        elif self.kind == "window":
            self.client.window(pos, self._cfg.window_width,
                               self._cfg.window_height)
        elif self.kind == "rknn":
            self.client.rknn(pos, k=self._cfg.k)
        elif self.kind == "probknn":
            self.client.probknn(pos, self._cfg.probknn_uncertainty,
                                k=self._cfg.k)
        else:
            self.client.range(pos, self._cfg.range_radius)


class ClientFleet:
    """Drives a fleet of simulated clients against a query service."""

    def __init__(self, service: QueryService,
                 config: Optional[FleetConfig] = None):
        self.service = service
        self.config = config if config is not None else FleetConfig()
        self._clients: List[_SimulatedClient] = []

    def _build(self, ticks: int) -> None:
        cfg = self.config
        universe = self.service.universe
        rng = random.Random(cfg.seed)
        n_knn = round(cfg.num_clients * cfg.knn_share)
        n_window = round(cfg.num_clients * cfg.window_share)
        n_rknn = round(cfg.num_clients * cfg.rknn_share)
        n_probknn = round(cfg.num_clients * cfg.probknn_share)
        for sim in self._clients:  # drop any prior run's subscriptions
            sim.client.close()
        self._clients = []
        for i in range(cfg.num_clients):
            kind = ("knn" if i < n_knn
                    else "window" if i < n_knn + n_window
                    else "rknn" if i < n_knn + n_window + n_rknn
                    else "probknn"
                    if i < n_knn + n_window + n_rknn + n_probknn
                    else "range")
            # Short-circuit keeps the rng draw sequence (and with it
            # the incremental assignment) unchanged at share 0.
            subscribed = (cfg.subscription_share > 0.0
                          and rng.random() < cfg.subscription_share
                          and hasattr(self.service, "subscribe"))
            incremental = (not subscribed
                           and rng.random() < cfg.incremental_share
                           and kind != "range")
            trajectory = random_waypoint(universe, ticks, speed=cfg.speed,
                                         seed=cfg.seed * 100003 + i)
            positions = [step.position for step in trajectory]
            client = MobileClient(self.service, incremental=incremental,
                                  metrics=self.service.metrics,
                                  max_stale=cfg.max_stale,
                                  subscribe=subscribed)
            self._clients.append(_SimulatedClient(client, kind, positions,
                                                  cfg))

    def run(self, ticks: int, max_workers: int = 8) -> FleetReport:
        """Simulate ``ticks`` rounds of batched position updates.

        Every tick submits one update per client to a pool of
        ``max_workers`` threads and waits for the batch to drain.
        """
        if ticks < 1:
            raise ValueError("need at least one tick")
        self._build(ticks)
        cfg = self.config
        metrics = self.service.metrics
        metrics.gauge("fleet.clients").set(len(self._clients))
        metrics.gauge("fleet.workers").set(max_workers)
        errors = 0
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            for tick in range(ticks):
                futures = [pool.submit(sim.step, tick)
                           for sim in self._clients]
                for future in futures:
                    if cfg.continue_on_error:
                        if future.exception() is not None:
                            errors += 1
                            metrics.counter("fleet.errors").inc()
                    else:
                        future.result()  # propagate the first failure
                metrics.counter("fleet.ticks").inc()
        return FleetReport(
            ticks=ticks,
            num_clients=len(self._clients),
            stats=self.aggregate_stats(),
            snapshot=self.service.stats_snapshot(),
            mix=self._mix(),
            errors=errors,
        )

    def aggregate_stats(self) -> ClientStats:
        total = ClientStats()
        for sim in self._clients:
            stats = sim.client.stats
            total.position_updates += stats.position_updates
            total.server_queries += stats.server_queries
            total.cache_answers += stats.cache_answers
            total.bytes_received += stats.bytes_received
            total.stale_answers += stats.stale_answers
            total.pushes_applied += stats.pushes_applied
            total.subscription_moves += stats.subscription_moves
        return total

    def _mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for sim in self._clients:
            mix[sim.kind] = mix.get(sim.kind, 0) + 1
        return mix

    @property
    def clients(self) -> Sequence[_SimulatedClient]:
        return tuple(self._clients)
