"""Worker-process side of the process-pool shard backend.

Each pool worker is initialized exactly once with the serialized
R*-tree of every shard (:func:`repro.storage.serialize.tree_to_bytes`
images) and rebuilds them into private :class:`LocationServer`
instances — after that, queries cross the process boundary only as the
compact frames of :mod:`repro.service.framing`.

The worker keeps the parent's observability contract:

* it opens a trace with the request's ``trace_id`` and runs each shard
  job under its own ``shard_<sid>`` span, so the disk-phase spans the
  query produces keep their usual shape;
* the recorded span tree travels back in the response frame (parent
  links as local indices) and the parent re-injects it into the live
  trace with a time-base shift — process workers render in exporters
  exactly like thread workers;
* per-phase node-access/page-fault deltas are measured around each job
  and merged into the parent-side shard counters at decode time
  (:meth:`~repro.service.shard.ShardedServer._scatter_process`), so
  ``io_stats``, phase breakdowns, shard snapshots *and* the dimensional
  ``service.shard.*{shard=,backend="process"}`` registry series stay
  accurate under the process backend — the worker never talks to a
  registry itself.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.api import QueryBudget
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.obs.context import span as obs_span
from repro.obs.context import start_trace
from repro.service.framing import (
    RequestFrame,
    decode_request,
    encode_response,
)
from repro.storage.serialize import tree_from_bytes

__all__ = ["worker_init", "worker_run"]

#: Per-process shard servers, keyed by shard id (set by worker_init).
_SERVERS: Dict[int, LocationServer] = {}
_UNIVERSE: Optional[Rect] = None


def worker_init(blobs: Dict[int, bytes],
                universe: Tuple[float, float, float, float],
                kernel: Optional[str],
                buffer_fraction: float = 0.0) -> None:
    """Pool initializer: rebuild every shard tree once per worker.

    ``blobs`` maps shard id to its ``tree_to_bytes`` image; the trees
    are reassembled page-for-page, so worker-side traversal (and the
    node accesses it charges) is identical to the parent's.
    """
    global _UNIVERSE
    _SERVERS.clear()
    _UNIVERSE = Rect(*universe)
    for sid, blob in blobs.items():
        tree = tree_from_bytes(blob, source=f"shard-{sid}")
        if buffer_fraction > 0.0:
            tree.attach_lru_buffer(buffer_fraction)
        _SERVERS[sid] = LocationServer(tree, _UNIVERSE, kernel=kernel)


def _budget(frame: RequestFrame) -> Optional[QueryBudget]:
    if frame.deadline_ms is None and frame.max_node_accesses is None:
        return None
    return QueryBudget(deadline_ms=frame.deadline_ms,
                       max_node_accesses=frame.max_node_accesses)


def _snapshot(server: LocationServer) -> Tuple[Dict[str, int],
                                               Dict[str, int]]:
    stats = server.io_stats
    return (dict(stats.node_accesses), dict(stats.page_faults))


def _deltas(before, after) -> Tuple[Dict[str, int], Dict[str, int]]:
    na = {phase: count - before[0].get(phase, 0)
          for phase, count in after[0].items()
          if count - before[0].get(phase, 0)}
    pf = {phase: count - before[1].get(phase, 0)
          for phase, count in after[1].items()
          if count - before[1].get(phase, 0)}
    return na, pf


def _run_job(frame: RequestFrame, job: Tuple,
             budget: Optional[QueryBudget]):
    sid = job[0]
    server = _SERVERS[sid]
    if frame.kind == "knn":
        qx, qy, policy = frame.params
        return sid, server._knn((qx, qy), k=job[1], vertex_policy=policy,
                                budget=budget)
    if frame.kind == "window":
        fx, fy, width, height = frame.params
        return sid, server._window((fx, fy), width, height, budget=budget)
    x, y, radius = frame.params
    return sid, server._range((x, y), radius, budget=budget)


def worker_run(data: bytes) -> bytes:
    """Evaluate one request frame; returns the response frame."""
    frame = decode_request(data)
    budget = _budget(frame)
    results = []
    for job in frame.jobs:
        sid = job[0]
        server = _SERVERS[sid]
        before = _snapshot(server)
        # A private trace per job: its span collection is exactly the
        # job's span tree, ready for re-injection parent-side.
        with start_trace(frame.trace_id or None) as ctx:
            with obs_span(f"shard_{sid}", meta={"sid": sid,
                                                "process": True}) as sp:
                sid, response = _run_job(frame, job, budget)
                na, pf = _deltas(before, _snapshot(server))
                if sp is not None:
                    sp.meta["node_accesses"] = sum(na.values())
            spans = ctx.spans()
        index = {s.span_id: i for i, s in enumerate(spans)}
        wire_spans = [(s.name, s.offset_ms, s.duration_ms,
                       index.get(s.parent_id, -1), s.meta)
                      for s in spans]
        results.append((sid, response, na, pf, wire_spans))
    return encode_response(frame.kind, results)
