"""Binary request/response framing for the process-pool shard backend.

Worker processes cannot share the parent's object graph, so scattered
shard queries cross the boundary as compact struct-packed frames —
the same wire philosophy as the response ``transfer_bytes()`` model
(20-byte ``<Idd`` point entries, fixed-size rectangles and disks),
extended with the envelope a real shard RPC needs:

* **request frame** — magic/version/kind header, the query parameters,
  the split budget (NaN/-1 encode "unlimited"), the trace id (so the
  worker's spans join the parent's trace), and one ``(sid, k)`` job
  per shard in the chunk;
* **response frame** — per job: the shard id, a degraded flag, the
  per-phase node-access/page-fault deltas the job charged, the span
  tree it recorded (JSON-encoded meta, parent links as local indices),
  and the kind-specific payload from which the parent rebuilds the
  full typed response (result entries, influence pairs/objects,
  region geometry, probe counters).

Every multi-byte integer is little-endian; entries are the paper's
20-byte ``<Idd`` records throughout.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.nn_validity import NNValidityResult
from repro.core.range_validity import RangeValidityResult
from repro.core.server import (
    KNNResponse,
    RangeResponse,
    WindowResponse,
)
from repro.core.window_validity import WindowValidityResult
from repro.geometry import ConvexPolygon, Point, Rect
from repro.geometry.rectilinear import RectilinearRegion
from repro.index.entry import LeafEntry

__all__ = [
    "RequestFrame",
    "JobResult",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
]

REQUEST_MAGIC = b"RPQF"
RESPONSE_MAGIC = b"RPRF"
FRAMING_VERSION = 1

_KINDS = ("knn", "window", "range")

_REQ_HEADER = struct.Struct("<4sHBH")   # magic, version, kind, njobs
_RESP_HEADER = struct.Struct("<4sHBH")
_BUDGET = struct.Struct("<dq")          # deadline_ms (NaN=None), max_na (-1=None)
_ENTRY = struct.Struct("<Idd")          # oid, x, y — the paper's point entry
_RECT = struct.Struct("<dddd")
_POINT = struct.Struct("<dd")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_SPAN_FIXED = struct.Struct("<ddi")     # offset_ms, duration_ms, parent idx


@dataclass
class RequestFrame:
    """One scatter chunk: a query plus the shard jobs that evaluate it."""

    kind: str
    #: Query parameters: ``(qx, qy, vertex_policy)`` for kNN,
    #: ``(fx, fy, width, height)`` for window, ``(x, y, radius)`` for range.
    params: Tuple
    #: Per-shard jobs: ``(sid, k)`` for kNN, ``(sid,)`` otherwise.
    jobs: List[Tuple]
    deadline_ms: Optional[float] = None
    max_node_accesses: Optional[int] = None
    trace_id: Optional[str] = None


@dataclass
class JobResult:
    """One decoded per-shard answer from a response frame."""

    sid: int
    response: object
    node_accesses: Dict[str, int] = field(default_factory=dict)
    page_faults: Dict[str, int] = field(default_factory=dict)
    #: ``(name, offset_ms, duration_ms, parent_local_index, meta)``
    spans: List[Tuple[str, float, float, int, Dict]] = field(
        default_factory=list)


# ----------------------------------------------------------------------
# low-level helpers
# ----------------------------------------------------------------------
def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    return _U16.pack(len(raw)) + raw


def _unpack_str(data: bytes, off: int) -> Tuple[str, int]:
    (n,) = _U16.unpack_from(data, off)
    off += _U16.size
    return data[off:off + n].decode("utf-8"), off + n


def _pack_entries(entries: Sequence[LeafEntry]) -> bytes:
    parts = [_U32.pack(len(entries))]
    parts.extend(_ENTRY.pack(e.oid, e.x, e.y) for e in entries)
    return b"".join(parts)


def _unpack_entries(data: bytes, off: int) -> Tuple[List[LeafEntry], int]:
    (n,) = _U32.unpack_from(data, off)
    off += _U32.size
    out = []
    for _ in range(n):
        oid, x, y = _ENTRY.unpack_from(data, off)
        out.append(LeafEntry(oid, x, y))
        off += _ENTRY.size
    return out, off


def _pack_opt_entry(entry: Optional[LeafEntry]) -> bytes:
    if entry is None:
        return _U8.pack(0)
    return _U8.pack(1) + _ENTRY.pack(entry.oid, entry.x, entry.y)


def _unpack_opt_entry(data: bytes, off: int
                      ) -> Tuple[Optional[LeafEntry], int]:
    (flag,) = _U8.unpack_from(data, off)
    off += _U8.size
    if not flag:
        return None, off
    oid, x, y = _ENTRY.unpack_from(data, off)
    return LeafEntry(oid, x, y), off + _ENTRY.size


def _pack_rect(rect: Rect) -> bytes:
    return _RECT.pack(rect.xmin, rect.ymin, rect.xmax, rect.ymax)


def _unpack_rect(data: bytes, off: int) -> Tuple[Rect, int]:
    xmin, ymin, xmax, ymax = _RECT.unpack_from(data, off)
    return Rect(xmin, ymin, xmax, ymax), off + _RECT.size


def _pack_counter(counts: Dict[str, int]) -> bytes:
    parts = [_U16.pack(len(counts))]
    for name, value in counts.items():
        parts.append(_pack_str(name))
        parts.append(_I64.pack(value))
    return b"".join(parts)


def _unpack_counter(data: bytes, off: int) -> Tuple[Dict[str, int], int]:
    (n,) = _U16.unpack_from(data, off)
    off += _U16.size
    out: Dict[str, int] = {}
    for _ in range(n):
        name, off = _unpack_str(data, off)
        (value,) = _I64.unpack_from(data, off)
        off += _I64.size
        out[name] = value
    return out, off


# ----------------------------------------------------------------------
# request frames
# ----------------------------------------------------------------------
def encode_request(frame: RequestFrame) -> bytes:
    kind_code = _KINDS.index(frame.kind)
    parts = [_REQ_HEADER.pack(REQUEST_MAGIC, FRAMING_VERSION, kind_code,
                              len(frame.jobs))]
    deadline = (math.nan if frame.deadline_ms is None
                else float(frame.deadline_ms))
    max_na = (-1 if frame.max_node_accesses is None
              else int(frame.max_node_accesses))
    parts.append(_BUDGET.pack(deadline, max_na))
    parts.append(_pack_str(frame.trace_id or ""))
    if frame.kind == "knn":
        qx, qy, policy = frame.params
        parts.append(_POINT.pack(qx, qy))
        parts.append(_pack_str(policy))
        for sid, k in frame.jobs:
            parts.append(_U32.pack(sid))
            parts.append(_U32.pack(k))
    elif frame.kind == "window":
        fx, fy, width, height = frame.params
        parts.append(_RECT.pack(fx, fy, width, height))
        for (sid,) in frame.jobs:
            parts.append(_U32.pack(sid))
    else:
        x, y, radius = frame.params
        parts.append(struct.pack("<ddd", x, y, radius))
        for (sid,) in frame.jobs:
            parts.append(_U32.pack(sid))
    return b"".join(parts)


def decode_request(data: bytes) -> RequestFrame:
    magic, version, kind_code, njobs = _REQ_HEADER.unpack_from(data, 0)
    if magic != REQUEST_MAGIC:
        raise ValueError("not a shard request frame")
    if version != FRAMING_VERSION:
        raise ValueError(f"unsupported request frame version {version}")
    off = _REQ_HEADER.size
    deadline, max_na = _BUDGET.unpack_from(data, off)
    off += _BUDGET.size
    trace_id, off = _unpack_str(data, off)
    kind = _KINDS[kind_code]
    jobs: List[Tuple] = []
    if kind == "knn":
        qx, qy = _POINT.unpack_from(data, off)
        off += _POINT.size
        policy, off = _unpack_str(data, off)
        params: Tuple = (qx, qy, policy)
        for _ in range(njobs):
            (sid,) = _U32.unpack_from(data, off)
            off += _U32.size
            (k,) = _U32.unpack_from(data, off)
            off += _U32.size
            jobs.append((sid, k))
    elif kind == "window":
        fx, fy, width, height = _RECT.unpack_from(data, off)
        off += _RECT.size
        params = (fx, fy, width, height)
        for _ in range(njobs):
            (sid,) = _U32.unpack_from(data, off)
            off += _U32.size
            jobs.append((sid,))
    else:
        x, y, radius = struct.unpack_from("<ddd", data, off)
        off += 24
        params = (x, y, radius)
        for _ in range(njobs):
            (sid,) = _U32.unpack_from(data, off)
            off += _U32.size
            jobs.append((sid,))
    return RequestFrame(
        kind=kind,
        params=params,
        jobs=jobs,
        deadline_ms=None if math.isnan(deadline) else deadline,
        max_node_accesses=None if max_na < 0 else max_na,
        trace_id=trace_id or None,
    )


# ----------------------------------------------------------------------
# response frames
# ----------------------------------------------------------------------
def _pack_spans(spans) -> bytes:
    parts = [_U16.pack(len(spans))]
    for name, offset_ms, duration_ms, parent_idx, meta in spans:
        parts.append(_pack_str(name))
        parts.append(_SPAN_FIXED.pack(offset_ms, duration_ms, parent_idx))
        raw = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _unpack_spans(data: bytes, off: int):
    (n,) = _U16.unpack_from(data, off)
    off += _U16.size
    spans = []
    for _ in range(n):
        name, off = _unpack_str(data, off)
        offset_ms, duration_ms, parent_idx = _SPAN_FIXED.unpack_from(
            data, off)
        off += _SPAN_FIXED.size
        (mlen,) = _U32.unpack_from(data, off)
        off += _U32.size
        meta = json.loads(data[off:off + mlen].decode("utf-8"))
        off += mlen
        spans.append((name, offset_ms, duration_ms, parent_idx, meta))
    return spans, off


def _pack_knn_payload(response: KNNResponse) -> bytes:
    detail = response.detail
    parts = [_pack_entries(detail.neighbors)]
    parts.append(_U32.pack(len(detail.influence_pairs)))
    for res, inf in detail.influence_pairs:
        parts.append(_ENTRY.pack(res.oid, res.x, res.y))
        parts.append(_ENTRY.pack(inf.oid, inf.x, inf.y))
    vertices = detail.region.vertices
    parts.append(_U32.pack(len(vertices)))
    parts.extend(_POINT.pack(v.x, v.y) for v in vertices)
    parts.append(struct.pack(
        "<ddIIdd", detail.query.x, detail.query.y,
        detail.num_tp_queries, detail.num_confirmations,
        detail.clip_seconds,
        math.nan if detail.safe_radius is None else detail.safe_radius))
    return b"".join(parts)


def _unpack_knn_payload(data: bytes, off: int, degraded: bool,
                        universe: Rect) -> Tuple[KNNResponse, int]:
    neighbors, off = _unpack_entries(data, off)
    (npairs,) = _U32.unpack_from(data, off)
    off += _U32.size
    pairs = []
    for _ in range(npairs):
        r_oid, r_x, r_y = _ENTRY.unpack_from(data, off)
        off += _ENTRY.size
        i_oid, i_x, i_y = _ENTRY.unpack_from(data, off)
        off += _ENTRY.size
        pairs.append((LeafEntry(r_oid, r_x, r_y), LeafEntry(i_oid, i_x, i_y)))
    (nverts,) = _U32.unpack_from(data, off)
    off += _U32.size
    vertices = []
    for _ in range(nverts):
        x, y = _POINT.unpack_from(data, off)
        vertices.append(Point(x, y))
        off += _POINT.size
    qx, qy, num_tp, num_confirm, clip_seconds, safe_radius = (
        struct.unpack_from("<ddIIdd", data, off))
    off += struct.calcsize("<ddIIdd")
    detail = NNValidityResult(
        query=Point(qx, qy),
        neighbors=neighbors,
        influence_pairs=pairs,
        region=ConvexPolygon(vertices),
        num_tp_queries=num_tp,
        num_confirmations=num_confirm,
        clip_seconds=clip_seconds,
        degraded=degraded,
        safe_radius=None if math.isnan(safe_radius) else safe_radius,
    )
    response = KNNResponse(neighbors=neighbors,
                           region=detail.validity_region(universe),
                           detail=detail)
    return response, off


def _pack_window_payload(response: WindowResponse) -> bytes:
    detail = response.detail
    parts = [_pack_entries(detail.result),
             _pack_entries(detail.inner_influence),
             _pack_entries(detail.outer_influence),
             _POINT.pack(detail.focus.x, detail.focus.y),
             _pack_rect(detail.window),
             _pack_rect(detail.inner_region),
             _pack_rect(detail.conservative_region),
             _pack_rect(detail.exact_region.base),
             _U16.pack(len(detail.exact_region.holes))]
    parts.extend(_pack_rect(h) for h in detail.exact_region.holes)
    parts.append(_U8.pack(1 if detail.exact_region_is_lower_bound else 0))
    return b"".join(parts)


def _unpack_window_payload(data: bytes, off: int, degraded: bool
                           ) -> Tuple[WindowResponse, int]:
    result, off = _unpack_entries(data, off)
    inner_influence, off = _unpack_entries(data, off)
    outer_influence, off = _unpack_entries(data, off)
    fx, fy = _POINT.unpack_from(data, off)
    off += _POINT.size
    window, off = _unpack_rect(data, off)
    inner_region, off = _unpack_rect(data, off)
    conservative, off = _unpack_rect(data, off)
    base, off = _unpack_rect(data, off)
    (nholes,) = _U16.unpack_from(data, off)
    off += _U16.size
    holes = []
    for _ in range(nholes):
        hole, off = _unpack_rect(data, off)
        holes.append(hole)
    (lower,) = _U8.unpack_from(data, off)
    off += _U8.size
    detail = WindowValidityResult(
        focus=Point(fx, fy),
        window=window,
        result=result,
        inner_influence=inner_influence,
        outer_influence=outer_influence,
        inner_region=inner_region,
        conservative_region=conservative,
        exact_region=RectilinearRegion(base, holes),
        exact_region_is_lower_bound=bool(lower),
        degraded=degraded,
    )
    response = WindowResponse(result=result,
                              region=detail.validity_region(),
                              detail=detail)
    return response, off


def _pack_range_payload(response: RangeResponse) -> bytes:
    detail = response.detail
    return b"".join([
        _pack_entries(detail.result),
        _pack_opt_entry(detail.inner_influence),
        _pack_opt_entry(detail.outer_influence),
        struct.pack("<ddd", detail.focus.x, detail.focus.y, detail.radius),
        _F64.pack(detail.validity_radius),
    ])


def _unpack_range_payload(data: bytes, off: int, degraded: bool
                          ) -> Tuple[RangeResponse, int]:
    result, off = _unpack_entries(data, off)
    inner_influence, off = _unpack_opt_entry(data, off)
    outer_influence, off = _unpack_opt_entry(data, off)
    fx, fy, radius = struct.unpack_from("<ddd", data, off)
    off += 24
    (validity_radius,) = _F64.unpack_from(data, off)
    off += _F64.size
    detail = RangeValidityResult(
        focus=Point(fx, fy),
        radius=radius,
        result=result,
        inner_influence=inner_influence,
        outer_influence=outer_influence,
        validity_radius=validity_radius,
        degraded=degraded,
    )
    response = RangeResponse(result=result,
                             region=detail.validity_region(),
                             detail=detail)
    return response, off


_PACKERS = {
    "knn": _pack_knn_payload,
    "window": _pack_window_payload,
    "range": _pack_range_payload,
}


def encode_response(kind: str, results: Sequence[Tuple]) -> bytes:
    """Encode worker results.

    ``results`` items are ``(sid, response, na_by_phase, pf_by_phase,
    spans)`` with spans as ``(name, offset_ms, duration_ms,
    parent_local_index, meta)`` tuples.
    """
    pack_payload = _PACKERS[kind]
    parts = [_RESP_HEADER.pack(RESPONSE_MAGIC, FRAMING_VERSION,
                               _KINDS.index(kind), len(results))]
    for sid, response, na, pf, spans in results:
        parts.append(_U32.pack(sid))
        parts.append(_U8.pack(1 if getattr(response.detail, "degraded",
                                           False) else 0))
        parts.append(_pack_counter(na))
        parts.append(_pack_counter(pf))
        parts.append(_pack_spans(spans))
        parts.append(pack_payload(response))
    return b"".join(parts)


def decode_response(data: bytes, universe: Rect) -> List[JobResult]:
    """Decode a worker response frame back into typed responses."""
    magic, version, kind_code, njobs = _RESP_HEADER.unpack_from(data, 0)
    if magic != RESPONSE_MAGIC:
        raise ValueError("not a shard response frame")
    if version != FRAMING_VERSION:
        raise ValueError(f"unsupported response frame version {version}")
    kind = _KINDS[kind_code]
    off = _RESP_HEADER.size
    out: List[JobResult] = []
    for _ in range(njobs):
        (sid,) = _U32.unpack_from(data, off)
        off += _U32.size
        (flags,) = _U8.unpack_from(data, off)
        off += _U8.size
        degraded = bool(flags & 1)
        na, off = _unpack_counter(data, off)
        pf, off = _unpack_counter(data, off)
        spans, off = _unpack_spans(data, off)
        if kind == "knn":
            response, off = _unpack_knn_payload(data, off, degraded,
                                                universe)
        elif kind == "window":
            response, off = _unpack_window_payload(data, off, degraded)
        else:
            response, off = _unpack_range_payload(data, off, degraded)
        out.append(JobResult(sid=sid, response=response,
                             node_accesses=na, page_faults=pf,
                             spans=spans))
    return out
