"""repro.obs — the end-to-end telemetry pipeline.

One query, one trace: a :class:`TraceContext` carrying a ``trace_id``
and the current span flows — via :mod:`contextvars`, with explicit
handoff across thread pools — from the mobile client through the query
service, the validity cache, the sharded scatter-gather workers, the
location server, the R*-tree descent and down to the simulated disk's
phase blocks.  Every layer hangs child spans and structured events off
whatever context is active, so a completed query's trace is a real
parent/child span **tree** (per-shard children, disk-level leaves)
instead of a flat list of service-side timings.

The pieces:

* :mod:`repro.obs.context` — :class:`TraceContext`, ``start_trace`` /
  ``span`` / ``attach`` / ``current_trace``: propagation itself.
* :mod:`repro.obs.events` — :class:`EventLog`, a bounded, thread-safe,
  per-category-sampled structured event sink (JSONL).
* :mod:`repro.obs.exporters` — Prometheus text exposition for a
  :class:`~repro.service.metrics.MetricsRegistry`, the Chrome
  ``trace_event`` (Perfetto-loadable) exporter, and ``span_tree``.
* :mod:`repro.obs.http` — :class:`ObservabilityServer`, a stdlib
  ``http.server`` endpoint serving ``/metrics``, ``/traces/<id>``,
  ``/events``, ``/slo``, ``/profile/flame``, ``/healthz``/``/readyz``
  and friends for a running
  :class:`~repro.service.service.QueryService`.
* :mod:`repro.obs.slo` — :class:`SLOEngine` / :class:`SLOConfig`:
  declarative availability/latency/staleness objectives tracked with
  multi-window multi-burn-rate alerting, driving the admission
  controller's brownout ladder.
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`: span trees folded
  into per-phase self-time tables and collapsed-stack flamegraphs.

See docs/OBSERVABILITY.md for the trace-context model, the event
schema, and how to open an exported trace in Perfetto.
"""

from repro.obs.context import (
    Span,
    TraceContext,
    attach,
    current_trace,
    emit_event,
    new_trace_id,
    span,
    start_trace,
)
from repro.obs.events import EventLog
from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    span_tree,
    write_chrome_trace,
)
from repro.obs.http import ObservabilityServer
from repro.obs.profile import PhaseProfiler, collapse_trace
from repro.obs.slo import SLOConfig, SLOEngine

__all__ = [
    "Span",
    "TraceContext",
    "attach",
    "current_trace",
    "emit_event",
    "new_trace_id",
    "span",
    "start_trace",
    "EventLog",
    "chrome_trace",
    "prometheus_text",
    "span_tree",
    "write_chrome_trace",
    "ObservabilityServer",
    "PhaseProfiler",
    "collapse_trace",
    "SLOConfig",
    "SLOEngine",
]
