"""The observability endpoint: stdlib HTTP for metrics, traces, events.

:class:`ObservabilityServer` wraps one
:class:`~repro.service.service.QueryService` and serves its telemetry
over plain ``http.server`` (no dependencies, daemon-threaded, safe to
run beside a live fleet):

=========================  ================================================
``GET /metrics``           Prometheus text exposition of the registry
``GET /traces``            JSON index of retained traces
``GET /traces/<id>``       the trace's span tree as JSON
``GET /traces/<id>/chrome``  the trace as Chrome ``trace_event`` JSON
``GET /events``            the event log tail as JSON Lines
                           (``?n=100&category=fault&trace_id=...``)
``GET /snapshot``          the full ``stats_snapshot()`` JSON
``GET /slo``               SLO burn rates, alerts, brownout recommendation
``GET /profile``           phase-profile table (samples, self/total ms)
``GET /profile/flame``     collapsed-stack flamegraph (``flamegraph.pl``
                           / speedscope input; values in microseconds)
``GET /healthz``           liveness probe: the process serves requests
``GET /readyz``            readiness probe: replicas probed healthy and
                           admission is not rejecting (503 otherwise)
=========================  ================================================

``port=0`` binds an ephemeral port (tests); :attr:`ObservabilityServer.url`
is the base URL once :meth:`start`\\ ed.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.exporters import chrome_trace, prometheus_text, span_tree

__all__ = ["ObservabilityServer"]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    #: Installed by :class:`ObservabilityServer`.
    service = None

    # Silence per-request stderr logging.
    def log_message(self, format, *args):  # noqa: A002
        pass

    def do_GET(self):  # noqa: N802  (http.server's naming)
        try:
            self._route()
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # surface handler bugs as 500s
            self._send(500, f"internal error: {exc}\n")

    def _route(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        if parts == ["healthz"]:
            self._send(200, "ok\n")
        elif parts == ["readyz"]:
            ready, detail = self._readiness()
            self._send_json(200 if ready else 503, detail)
        elif parts == ["slo"]:
            engine = getattr(self.service, "slo", None)
            if engine is None:
                self._send_json(404, {"error": "no SLO engine configured"})
            else:
                engine.maybe_evaluate()
                self._send_json(200, engine.snapshot())
        elif parts == ["profile"]:
            profiler = getattr(self.service, "profiler", None)
            if profiler is None:
                self._send_json(404, {"error": "phase profiling disabled"})
            else:
                self._send_json(200, profiler.snapshot())
        elif parts == ["profile", "flame"]:
            profiler = getattr(self.service, "profiler", None)
            if profiler is None:
                self._send_json(404, {"error": "phase profiling disabled"})
            else:
                self._send(200, profiler.flamegraph())
        elif parts == ["metrics"]:
            self._send(200, prometheus_text(self.service.metrics),
                       content_type=PROMETHEUS_CONTENT_TYPE)
        elif parts == ["snapshot"]:
            self._send_json(200, self.service.stats_snapshot())
        elif parts == ["events"]:
            n = int(query["n"][0]) if "n" in query else None
            events = self.service.events.tail(
                n,
                category=query.get("category", [None])[0],
                trace_id=query.get("trace_id", [None])[0])
            body = "".join(json.dumps(e, sort_keys=True) + "\n"
                           for e in events)
            self._send(200, body, content_type="application/x-ndjson")
        elif parts == ["traces"]:
            index = [{"trace_id": t.trace_id, "kind": t.kind,
                      "started_at": t.started_at,
                      "duration_ms": t.duration_ms,
                      "error": t.error}
                     for t in self.service.recent_traces()]
            self._send_json(200, index)
        elif len(parts) in (2, 3) and parts[0] == "traces":
            trace = self.service.traces.find(parts[1])
            if trace is None:
                self._send_json(404, {"error": f"no trace {parts[1]!r} "
                                      "in the retention window"})
            elif len(parts) == 3 and parts[2] == "chrome":
                self._send_json(200, chrome_trace(trace))
            elif len(parts) == 2:
                self._send_json(200, span_tree(trace))
            else:
                self._send_json(404, {"error": f"unknown trace view "
                                      f"{parts[2]!r}"})
        else:
            self._send_json(404, {"error": f"unknown path {parsed.path!r}"})

    def _readiness(self):
        """Readiness = at least one healthy serving path AND admission is
        not in full-reject brownout.  Liveness (``/healthz``) stays a plain
        "the process answers"; this one is allowed to say no."""
        detail = {"ready": True}
        admission = getattr(self.service, "admission", None)
        if admission is not None:
            snap = admission.snapshot()
            detail["admission"] = {"level": snap.get("level"),
                                   "slo_level": snap.get("slo_level")}
            if snap.get("level") == "reject":
                detail["ready"] = False
                detail["reason"] = "admission is rejecting all queries"
        probe = getattr(self.service.server, "probe_health", None)
        if probe is not None:
            rows = probe()
            detail["replicas"] = rows
            if not any(r.get("status") == "ok" for r in rows):
                detail["ready"] = False
                detail["reason"] = "no replica passed its health probe"
        return detail["ready"], detail

    def _send(self, status: int, body: str,
              content_type: str = "text/plain; charset=utf-8") -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, data) -> None:
        self._send(status, json.dumps(data, indent=2, sort_keys=True) + "\n",
                   content_type="application/json")


class ObservabilityServer:
    """Serve a query service's telemetry over stdlib HTTP.

    >>> obs = ObservabilityServer(service, port=0)
    >>> obs.start()
    >>> obs.url            # e.g. 'http://127.0.0.1:49213'
    >>> obs.stop()
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 9464):
        self.service = service
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (resolves 0 → ephemeral after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread; returns self."""
        if self._httpd is not None:
            return self
        handler = type("BoundHandler", (_Handler,),
                       {"service": self.service})
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-http",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
