"""The structured event log: bounded, thread-safe, sampled JSONL.

An :class:`EventLog` is the audit trail of a running service: query
starts and finishes, cache hits and misses, shard visits and prunes,
retries, breaker transitions, injected disk faults.  Events are plain
dicts (JSON-serializable by construction), retained in a bounded ring,
and **sampled per category** so a fleet doing thousands of queries a
second can keep, say, 1-in-100 ``query`` events while recording every
``fault`` — the log survives load instead of thrashing it.

Sampling is deterministic (a per-category counter, keep-every-Nth),
so a replayed run logs the same events.  Appends outside the retained
window are counted, never silently lost: :meth:`EventLog.stats`
reports emitted / sampled-out / dropped per category.

``capacity=0`` turns the log into a counting no-op sink: nothing is
retained, nothing is locked on the hot path beyond one counter update.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from typing import Dict, List, Mapping, Optional

from repro.obs.context import current_trace

__all__ = ["EventLog"]


class EventLog:
    """A bounded, thread-safe, per-category-sampled event sink.

    ``sample`` maps a category to its keep rate as "1 in N": a category
    mapped to ``10`` retains every 10th event (the first, the 11th, …).
    Unmapped categories keep everything.  ``capacity`` bounds the
    retained ring; older events are dropped (and counted) as new ones
    arrive.
    """

    def __init__(self, capacity: int = 4096,
                 sample: Optional[Mapping[str, int]] = None):
        if capacity < 0:
            raise ValueError("event capacity must be non-negative")
        self.capacity = capacity
        self.sample: Dict[str, int] = dict(sample) if sample else {}
        for category, n in self.sample.items():
            if int(n) < 1:
                raise ValueError(
                    f"sample rate for {category!r} must be >= 1 (keep 1-in-N)")
            self.sample[category] = int(n)
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity if capacity else None)
        self._seq = 0
        self._emitted: Dict[str, int] = {}
        self._sampled_out: Dict[str, int] = {}
        self._dropped = 0

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def emit(self, category: str, *, trace_id: Optional[str] = None,
             span_id: Optional[str] = None, **fields) -> bool:
        """Record one event; returns True when it was retained.

        ``trace_id`` defaults to the active trace context's, so events
        emitted under a trace are correlated automatically.
        """
        if trace_id is None:
            ctx = current_trace()
            if ctx is not None:
                trace_id = ctx.trace_id
                if span_id is None:
                    span_id = ctx.span_id
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._emitted[category] = self._emitted.get(category, 0) + 1
            keep_nth = self.sample.get(category, 1)
            if keep_nth > 1 and (self._emitted[category] - 1) % keep_nth:
                self._sampled_out[category] = (
                    self._sampled_out.get(category, 0) + 1)
                return False
            if self.capacity == 0:
                self._dropped += 1
                return False
            event: Dict[str, object] = {
                "seq": seq,
                "ts": _now(),
                "category": category,
            }
            if trace_id is not None:
                event["trace_id"] = trace_id
            if span_id is not None:
                event["span_id"] = span_id
            event.update(fields)
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
            return True

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def tail(self, n: Optional[int] = None,
             category: Optional[str] = None,
             trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        """The most recent ``n`` retained events (filtered, oldest first)."""
        with self._lock:
            events = list(self._events)
        if category is not None:
            events = [e for e in events if e["category"] == category]
        if trace_id is not None:
            events = [e for e in events if e.get("trace_id") == trace_id]
        return events if n is None else events[-n:]

    def to_jsonl(self, n: Optional[int] = None,
                 category: Optional[str] = None) -> str:
        """The tail as JSON Lines (one event per line)."""
        out = io.StringIO()
        for event in self.tail(n, category=category):
            out.write(json.dumps(event, sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def stats(self) -> Dict[str, object]:
        """Accounting: per-category emitted/sampled-out, drops, size."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._events),
                "emitted": dict(self._emitted),
                "sampled_out": dict(self._sampled_out),
                "dropped": self._dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def _now() -> float:
    """Wall-clock epoch — a hook point so tests can avoid real clocks."""
    return time.time()
