"""Trace-context propagation: one trace id from client to disk.

A :class:`TraceContext` names the trace (``trace_id``) and the span
under which new work should hang (``span_id``); the active context
lives in a :mod:`contextvars` variable, so any layer — the validity
cache, a shard worker, the simulated disk — can open a child span or
emit a correlated event without the caller threading anything through
its signature.

Thread pools do not inherit context automatically; the scatter-gather
path captures the active context with :func:`current_trace` before
submitting and re-activates it in each worker with :func:`attach` — the
explicit handoff that keeps per-shard spans parented under the query's
fan-out span.

Timestamps: every span records a **monotonic** offset/duration
(``perf_counter`` relative to the trace's origin) while the trace keeps
one wall-clock epoch, so exporters can reconstruct absolute times
without ever mixing the two clocks.

This module is dependency-free (stdlib only) on purpose: the storage
layer imports it, and it must never import the storage layer back.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter, time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "PHASE_SPAN_NAMES",
    "current_trace",
    "start_trace",
    "span",
    "attach",
    "emit_event",
    "new_trace_id",
]

#: Disk phase name → trace span name (the stage vocabulary the paper's
#: processing pipeline uses; unknown phases surface under their own name).
PHASE_SPAN_NAMES = {
    "nn": "index_descent",
    "result": "index_descent",
    "tpnn": "tpnn_probing",
    "influence": "influence_probing",
}


@dataclass
class Span:
    """One timed stage of a query's processing.

    ``span_id``/``parent_id`` place the span in its trace's tree;
    spans with ``parent_id is None`` are children of the trace root.
    """

    name: str
    #: Milliseconds after the trace's monotonic origin this span began.
    offset_ms: float
    duration_ms: float
    #: Free-form annotations (node accesses in the span's phase, …).
    meta: Dict[str, object] = field(default_factory=dict)
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        out = {
            "name": self.name,
            "offset_ms": self.offset_ms,
            "duration_ms": self.duration_ms,
        }
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


class _TraceState:
    """The shared, thread-safe record of one in-flight trace."""

    __slots__ = ("trace_id", "started_at", "origin", "events",
                 "_lock", "_spans", "_next_id")

    def __init__(self, trace_id: str, events=None):
        self.trace_id = trace_id
        #: Wall-clock epoch the trace started (for absolute timestamps).
        self.started_at = time()
        #: Monotonic origin every span offset is measured against.
        self.origin = perf_counter()
        #: Duck-typed event sink (see :class:`repro.obs.events.EventLog`).
        self.events = events
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 0

    def next_span_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"s{self._next_id}"

    def add(self, span_: Span) -> None:
        with self._lock:
            self._spans.append(span_)

    def spans(self) -> List[Span]:
        """The spans recorded so far, in chronological (start) order."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.offset_ms)


@dataclass(frozen=True)
class TraceContext:
    """The active trace and the span new child work hangs under."""

    trace_id: str
    #: The current span (parent of children opened under this context);
    #: ``None`` at the trace root.
    span_id: Optional[str]
    _state: _TraceState

    @property
    def started_at(self) -> float:
        """Wall-clock epoch of the trace start."""
        return self._state.started_at

    @property
    def origin(self) -> float:
        """``perf_counter()`` value at the trace start."""
        return self._state.origin

    @property
    def events(self):
        return self._state.events

    def elapsed_ms(self) -> float:
        return (perf_counter() - self._state.origin) * 1e3

    def spans(self) -> List[Span]:
        """All spans recorded on this trace so far (start order)."""
        return self._state.spans()

    def add_span(self, name: str, offset_ms: float, duration_ms: float,
                 meta: Optional[Dict[str, object]] = None,
                 parent_id: Optional[str] = None) -> Span:
        """Record a pre-measured span (for after-the-fact accounting)."""
        span_ = Span(name=name, offset_ms=offset_ms,
                     duration_ms=duration_ms,
                     meta=dict(meta) if meta else {},
                     span_id=self._state.next_span_id(),
                     parent_id=(parent_id if parent_id is not None
                                else self.span_id))
        self._state.add(span_)
        return span_


_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_obs_trace", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def current_trace() -> Optional[TraceContext]:
    """The active trace context of this thread/task, if any."""
    return _CURRENT.get()


@contextmanager
def start_trace(trace_id: Optional[str] = None,
                events=None) -> Iterator[TraceContext]:
    """Begin (and activate) a new trace; yields its root context.

    Every span opened — by any layer, on any thread holding the
    context — lands in the yielded context's span collection.
    """
    state = _TraceState(trace_id if trace_id is not None else new_trace_id(),
                        events=events)
    ctx = TraceContext(trace_id=state.trace_id, span_id=None, _state=state)
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@contextmanager
def span(name: str,
         meta: Optional[Dict[str, object]] = None) -> Iterator[Optional[Span]]:
    """Open a child span under the active context (no-op without one).

    Yields the in-flight :class:`Span` so callers can annotate
    ``span.meta``; offset and duration are filled in on exit.  Yields
    ``None`` when no trace is active — the zero-overhead fast path.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        yield None
        return
    state = ctx._state
    span_ = Span(name=name, offset_ms=0.0, duration_ms=0.0,
                 meta=dict(meta) if meta else {},
                 span_id=state.next_span_id(), parent_id=ctx.span_id)
    child = TraceContext(trace_id=ctx.trace_id, span_id=span_.span_id,
                         _state=state)
    start = perf_counter()
    token = _CURRENT.set(child)
    try:
        yield span_
    finally:
        _CURRENT.reset(token)
        end = perf_counter()
        span_.offset_ms = (start - state.origin) * 1e3
        span_.duration_ms = (end - start) * 1e3
        state.add(span_)


@contextmanager
def attach(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Re-activate a captured context (the pool-thread handoff).

    ``attach(None)`` is a no-op, so call sites can hand off
    ``current_trace()`` unconditionally.
    """
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def emit_event(category: str, **fields) -> None:
    """Emit a structured event against the active trace's sink.

    A no-op without an active trace or when the trace has no event
    sink; the event is stamped with the trace and current span ids.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return
    events = ctx._state.events
    if events is None:
        return
    events.emit(category, trace_id=ctx.trace_id, span_id=ctx.span_id,
                **fields)
