"""Phase profiling: span trees folded into self-time tables and flames.

Every finished :class:`~repro.service.tracing.QueryTrace` already
carries a span tree — ``cache_probe``, ``shard_fanout`` and its
per-shard workers, ``disk_read`` phase blocks, kernel batches.  The
:class:`PhaseProfiler` is a sampling hook over that stream: traces are
collapsed into stacks (root frame = query kind, child frames = span
names), each frame charged its **self time** (duration minus direct
children), and equal stacks aggregated across traces.

Two read shapes come out:

* :meth:`PhaseProfiler.phase_table` — per-phase totals (calls,
  self-time, total time), the "where do the milliseconds go" table;
* :meth:`PhaseProfiler.flamegraph` — the collapsed-stack text format
  (``kind;shard_fanout;shard;disk_read 1234`` — one stack per line,
  value in integer microseconds of self time) consumed directly by
  ``flamegraph.pl``, speedscope, or any FlameGraph-compatible viewer;
  served at ``/profile/flame`` and via ``python -m repro obs --flame``.

Numbered fan-out frames (``shard_3``, ``replica_1``) are normalized to
their family name (``shard``, ``replica``) by default so stack
cardinality stays bounded at fleet width; disable with
``normalize=False`` to keep per-shard attribution.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["PhaseProfiler", "collapse_trace"]

_NUMBERED = re.compile(r"^(shard|replica)_\d+$")


def _frame(name: str, normalize: bool) -> str:
    if normalize:
        m = _NUMBERED.match(name)
        if m:
            return m.group(1)
    return name


def collapse_trace(trace, normalize: bool = True
                   ) -> Dict[Tuple[str, ...], float]:
    """One trace's spans as {stack tuple: self-time ms}.

    The root frame is the trace's query kind; span stacks follow
    parent links (flat legacy spans hang off the root).  A span's self
    time is its duration minus its direct children's durations,
    clamped at zero (children overlapping their parent's end, as
    process-backend wire spans can, never go negative).  Trace time
    not covered by any root span is charged to the root frame itself.
    """
    spans = list(trace.spans)
    by_id = {s.span_id: s for s in spans if s.span_id is not None}
    children: Dict[Optional[str], List] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)

    root = _frame(trace.kind, normalize)
    stacks: Dict[Tuple[str, ...], float] = {}

    def add(stack: Tuple[str, ...], ms: float) -> None:
        stacks[stack] = stacks.get(stack, 0.0) + max(ms, 0.0)

    def walk(span, prefix: Tuple[str, ...]) -> None:
        stack = prefix + (_frame(span.name, normalize),)
        kids = children.get(span.span_id, []) if span.span_id else []
        child_ms = sum(k.duration_ms for k in kids)
        add(stack, span.duration_ms - child_ms)
        for kid in kids:
            walk(kid, stack)

    roots = children.get(None, [])
    for span in roots:
        walk(span, (root,))
    add((root,), trace.duration_ms - sum(s.duration_ms for s in roots))
    return stacks


class PhaseProfiler:
    """Aggregates collapsed span stacks across sampled traces.

    ``sample_1_in`` keeps every Nth trace (deterministic counter, so a
    replayed run profiles the same queries); ``max_stacks`` bounds the
    table — overflow stacks fold into a single ``(other)`` frame so
    the profile stays honest about what it dropped.
    """

    def __init__(self, sample_1_in: int = 1, max_stacks: int = 512,
                 normalize: bool = True):
        if sample_1_in < 1:
            raise ValueError("sample_1_in must be >= 1 (keep 1-in-N)")
        if max_stacks < 1:
            raise ValueError("max_stacks must be positive")
        self.sample_1_in = int(sample_1_in)
        self.max_stacks = int(max_stacks)
        self.normalize = normalize
        self._lock = threading.Lock()
        #: stack tuple → [samples, self_ms]
        self._stacks: Dict[Tuple[str, ...], List[float]] = {}
        self._seen = 0
        self._sampled = 0
        self._overflowed = 0

    # ------------------------------------------------------------------
    # the write path (called by the service per retained trace)
    # ------------------------------------------------------------------
    def record(self, trace) -> None:
        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self.sample_1_in:
                return
            self._sampled += 1
            for stack, ms in collapse_trace(trace, self.normalize).items():
                entry = self._stacks.get(stack)
                if entry is None:
                    if len(self._stacks) >= self.max_stacks:
                        self._overflowed += 1
                        stack = ("(other)",)
                        entry = self._stacks.get(stack)
                        if entry is None:
                            entry = self._stacks[stack] = [0, 0.0]
                    else:
                        entry = self._stacks[stack] = [0, 0.0]
                entry[0] += 1
                entry[1] += ms

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def phase_table(self) -> List[Dict[str, object]]:
        """Per-phase totals, heaviest self-time first.

        A *phase* is a leaf frame name (``cache_probe``, ``disk_read``,
        ``shard``…); ``self_ms`` sums that frame's own time wherever it
        appears, ``total_ms`` adds everything below it too.
        """
        with self._lock:
            stacks = {s: (e[0], e[1]) for s, e in self._stacks.items()}
        phases: Dict[str, Dict[str, float]] = {}
        for stack, (samples, self_ms) in stacks.items():
            leaf = stack[-1]
            row = phases.setdefault(
                leaf, {"samples": 0, "self_ms": 0.0, "total_ms": 0.0})
            row["samples"] += samples
            row["self_ms"] += self_ms
        # total = self + everything appearing beneath this frame.
        for stack, (_, self_ms) in stacks.items():
            for frame in set(stack):
                if frame in phases:
                    phases[frame]["total_ms"] += self_ms
        return [
            {"phase": name, "samples": int(row["samples"]),
             "self_ms": row["self_ms"], "total_ms": row["total_ms"]}
            for name, row in sorted(phases.items(),
                                    key=lambda kv: -kv[1]["self_ms"])
        ]

    def flamegraph(self) -> str:
        """Collapsed-stack text: ``frame;frame;frame <self_us>`` lines."""
        with self._lock:
            stacks = {s: e[1] for s, e in self._stacks.items()}
        lines = [f"{';'.join(stack)} {int(round(ms * 1000.0))}"
                 for stack, ms in sorted(stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            head = {
                "seen": self._seen,
                "sampled": self._sampled,
                "sample_1_in": self.sample_1_in,
                "stacks": len(self._stacks),
                "overflowed": self._overflowed,
            }
        head["phases"] = self.phase_table()
        return head

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._seen = self._sampled = self._overflowed = 0
