"""Declarative SLOs with multi-window, multi-burn-rate budget tracking.

An :class:`SLOEngine` turns raw per-query outcomes into the three
signals an operator (and the admission controller) actually acts on:

* **error-budget burn rate** per rolling window — how fast the
  objective's allowance is being consumed, where ``1.0`` means "exactly
  on target spend";
* **alerts** in the SRE multi-window/multi-burn-rate shape: a *fast*
  page fires only when both the 5-minute and 1-hour windows burn above
  ``fast_burn`` (a short spike alone cannot page, nor can stale history
  alone keep paging); a *slow* ticket pairs the 6-hour and 3-day
  windows at ``slow_burn``;
* a recommended **brownout level** (0 normal → 3 reject) that the
  query service feeds into the
  :class:`~repro.service.admission.AdmissionController` as a floor, so
  budget burn sheds load even while queue depth looks healthy.

The burn→brownout contract (documented in docs/OBSERVABILITY.md):

========  =====================================================
level     condition (any declared SLO)
========  =====================================================
0 normal  no fast alert
1 reduced fast alert firing
2 cache_only fast alert and the 5-minute burn is >= 2x ``fast_burn``
3 reject  fast alert and the long-window error budget is exhausted
========  =====================================================

A slow alert alone never sheds load — it is a ticket, not a page.

Everything runs on an injectable ``clock`` (seconds; defaults to
``time.monotonic``), so tests and simulations drive the windows
deterministically.  The engine never imports the service layer; the
service pushes observations in and reads the recommendation out.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = ["SLOConfig", "SLOEngine", "BROWNOUT_NAMES"]

#: Brownout level names, index-aligned with the admission ladder.
BROWNOUT_NAMES = ("normal", "reduced", "cache_only", "reject")

_OBJECTIVES = ("availability", "latency", "staleness")


@dataclass(frozen=True)
class SLOConfig:
    """One declared objective.

    ``objective`` selects what counts as a *bad* event:

    * ``availability`` — any failed query (except admission sheds,
      which the service excludes as mitigation, not symptom);
    * ``latency`` — a failed query, or a successful one slower than
      ``threshold_ms``;
    * ``staleness`` — a successful query served more than
      ``max_staleness`` epochs stale (failures are not observed: only
      served answers have a staleness).

    ``target`` is the good fraction the objective promises (0.999 →
    a 0.1% error budget).  ``query_kind`` restricts the objective to
    one kind; None observes every query.  The window pairs and burn
    thresholds default to the SRE handbook values.
    """

    name: str
    objective: str = "availability"
    target: float = 0.999
    threshold_ms: float = 50.0
    max_staleness: int = 0
    query_kind: Optional[str] = None
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    fast_windows: Tuple[int, int] = (300, 3600)
    slow_windows: Tuple[int, int] = (21600, 259200)

    def __post_init__(self):
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if self.objective not in _OBJECTIVES:
            raise ValueError(f"objective must be one of {_OBJECTIVES}, "
                             f"not {self.objective!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.objective == "latency" and self.threshold_ms <= 0:
            raise ValueError("threshold_ms must be positive")
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be non-negative")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")
        for pair in (self.fast_windows, self.slow_windows):
            if len(pair) != 2 or pair[0] <= 0 or pair[1] <= pair[0]:
                raise ValueError("window pairs must be (short, long) with "
                                 "0 < short < long")

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target allows."""
        return 1.0 - self.target

    def windows(self) -> Tuple[int, ...]:
        return tuple(self.fast_windows) + tuple(self.slow_windows)


class _WindowCounts:
    """Good/bad tallies over one rolling window, 1-second buckets.

    Running totals are maintained incrementally (prune subtracts), so
    reading the window is O(expired buckets), not O(window length).
    """

    __slots__ = ("window_s", "_buckets", "good", "bad")

    def __init__(self, window_s: int):
        self.window_s = window_s
        #: (bucket_second, good, bad), oldest first.
        self._buckets: Deque[List[int]] = deque()
        self.good = 0
        self.bad = 0

    def record(self, now_s: float, good: int, bad: int) -> None:
        sec = int(now_s)
        if self._buckets and self._buckets[-1][0] == sec:
            self._buckets[-1][1] += good
            self._buckets[-1][2] += bad
        else:
            self._buckets.append([sec, good, bad])
        self.good += good
        self.bad += bad
        self._prune(now_s)

    def totals(self, now_s: float) -> Tuple[int, int]:
        self._prune(now_s)
        return self.good, self.bad

    def _prune(self, now_s: float) -> None:
        floor = int(now_s) - self.window_s
        while self._buckets and self._buckets[0][0] <= floor:
            _, good, bad = self._buckets.popleft()
            self.good -= good
            self.bad -= bad


def _window_label(seconds: int) -> str:
    if seconds % 86400 == 0:
        return f"{seconds // 86400}d"
    if seconds % 3600 == 0:
        return f"{seconds // 3600}h"
    if seconds % 60 == 0:
        return f"{seconds // 60}m"
    return f"{seconds}s"


class SLOEngine:
    """Observes query outcomes, tracks budgets, recommends brownouts.

    ``metrics`` (a :class:`~repro.service.metrics.MetricsRegistry`, or
    None) receives ``slo.*`` gauges on every evaluation; the query
    service assigns its own registry when the engine is attached
    without one.  ``eval_interval_s`` rate-limits
    :meth:`maybe_evaluate`, which the service calls once per query.
    """

    def __init__(self, configs: Sequence[SLOConfig],
                 metrics=None, clock=time.monotonic,
                 eval_interval_s: float = 1.0):
        configs = list(configs)
        if not configs:
            raise ValueError("at least one SLOConfig is required")
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.configs: Tuple[SLOConfig, ...] = tuple(configs)
        self.metrics = metrics
        self._clock = clock
        self.eval_interval_s = float(eval_interval_s)
        self._lock = threading.Lock()
        self._windows: Dict[str, Dict[int, _WindowCounts]] = {
            c.name: {w: _WindowCounts(w) for w in c.windows()}
            for c in configs}
        self._observed: Dict[str, Dict[str, int]] = {
            c.name: {"good": 0, "bad": 0} for c in configs}
        self._last_eval: Optional[float] = None
        self._level = 0
        self._status: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # the write path (called by the service per finished/failed query)
    # ------------------------------------------------------------------
    def observe(self, kind: str, latency_ms: Optional[float] = None,
                error: bool = False, staleness: int = 0,
                ts: Optional[float] = None) -> None:
        """Fold one query outcome into every matching objective."""
        now_s = self._clock() if ts is None else ts
        with self._lock:
            for cfg in self.configs:
                if cfg.query_kind is not None and cfg.query_kind != kind:
                    continue
                if cfg.objective == "availability":
                    bad = error
                elif cfg.objective == "latency":
                    bad = error or (latency_ms is not None
                                    and latency_ms > cfg.threshold_ms)
                else:  # staleness: only served answers are observable
                    if error:
                        continue
                    bad = staleness > cfg.max_staleness
                good_n, bad_n = (0, 1) if bad else (1, 0)
                for counts in self._windows[cfg.name].values():
                    counts.record(now_s, good_n, bad_n)
                tally = self._observed[cfg.name]
                tally["bad" if bad else "good"] += 1

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def maybe_evaluate(self) -> Optional[int]:
        """Evaluate if ``eval_interval_s`` elapsed; None when skipped."""
        now_s = self._clock()
        with self._lock:
            if (self._last_eval is not None
                    and now_s - self._last_eval < self.eval_interval_s):
                return None
        return self.evaluate(now_s)

    def evaluate(self, now: Optional[float] = None) -> int:
        """Recompute burn rates and alerts; returns the brownout level."""
        now_s = self._clock() if now is None else now
        level = 0
        status: Dict[str, Dict[str, object]] = {}
        with self._lock:
            self._last_eval = now_s
            for cfg in self.configs:
                windows = self._windows[cfg.name]
                burn: Dict[int, float] = {}
                for w, counts in windows.items():
                    good, bad = counts.totals(now_s)
                    total = good + bad
                    frac = bad / total if total else 0.0
                    burn[w] = frac / cfg.budget
                fast = (burn[cfg.fast_windows[0]] >= cfg.fast_burn
                        and burn[cfg.fast_windows[1]] >= cfg.fast_burn)
                slow = (burn[cfg.slow_windows[0]] >= cfg.slow_burn
                        and burn[cfg.slow_windows[1]] >= cfg.slow_burn)
                # Budget spent over the longest window, as a fraction of
                # the allowance; remaining can go negative (overspent).
                long_w = windows[cfg.slow_windows[1]]
                good, bad = long_w.totals(now_s)
                total = good + bad
                frac = bad / total if total else 0.0
                remaining = 1.0 - frac / cfg.budget
                slo_level = 0
                if fast:
                    slo_level = 1
                    if burn[cfg.fast_windows[0]] >= 2.0 * cfg.fast_burn:
                        slo_level = 2
                    if remaining <= 0.0:
                        slo_level = 3
                level = max(level, slo_level)
                status[cfg.name] = {
                    "objective": cfg.objective,
                    "target": cfg.target,
                    "burn_rate": {_window_label(w): burn[w]
                                  for w in sorted(burn)},
                    "fast_alert": fast,
                    "slow_alert": slow,
                    "budget_remaining": remaining,
                    "observed": dict(self._observed[cfg.name]),
                    "recommended_level": slo_level,
                }
            self._level = level
            self._status = status
        if self.metrics is not None:
            self._export(status, level)
        return level

    def _export(self, status: Dict[str, Dict[str, object]],
                level: int) -> None:
        m = self.metrics
        for name, s in status.items():
            by_slo = {"slo": name}
            for label, value in s["burn_rate"].items():
                m.gauge("slo.burn_rate",
                        labels={"slo": name, "window": label}).set(value)
            m.gauge("slo.budget_remaining", labels=by_slo).set(
                s["budget_remaining"])
            m.gauge("slo.alert", labels={"slo": name,
                                         "severity": "fast"}).set(
                1.0 if s["fast_alert"] else 0.0)
            m.gauge("slo.alert", labels={"slo": name,
                                         "severity": "slow"}).set(
                1.0 if s["slow_alert"] else 0.0)
        m.gauge("slo.brownout_level").set(level)

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def recommended_level(self) -> int:
        """The brownout level of the most recent evaluation."""
        return self._level

    def latency_violation(self, kind: str,
                          latency_ms: float) -> Optional[str]:
        """The name of a latency SLO ``latency_ms`` violates, if any.

        The tail sampler uses this to pin traces that individually
        breach a declared latency objective.
        """
        for cfg in self.configs:
            if cfg.objective != "latency":
                continue
            if cfg.query_kind is not None and cfg.query_kind != kind:
                continue
            if latency_ms > cfg.threshold_ms:
                return cfg.name
        return None

    def snapshot(self) -> Dict[str, object]:
        """The most recent evaluation, JSON-shaped (the /slo endpoint)."""
        with self._lock:
            return {
                "evaluated_at": self._last_eval,
                "brownout_level": self._level,
                "brownout": BROWNOUT_NAMES[self._level],
                "slos": {name: dict(s) for name, s in self._status.items()},
            }
