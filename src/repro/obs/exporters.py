"""Exporters: Prometheus text exposition and Chrome trace events.

Two dialects out of one telemetry pipeline:

* :func:`prometheus_text` renders a
  :class:`~repro.service.metrics.MetricsRegistry` snapshot in the
  Prometheus text exposition format (version 0.0.4) — counters become
  ``_total`` series, gauges stay plain, histograms with bucket bounds
  surface as native Prometheus histograms (cumulative ``_bucket{le=}``
  series plus ``_sum``/``_count``) and bucketless histograms as
  summaries with ``quantile`` labels.  The registry is dimensional:
  snapshot keys are canonical series keys
  (``service.queries{query_kind="knn"}``), so labels pass straight
  through to the exposition — no metric-name suffix folding.

* :func:`chrome_trace` converts a :class:`~repro.service.tracing.QueryTrace`
  span tree into the Chrome ``trace_event`` JSON format, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Span
  timestamps combine the trace's wall-clock epoch with each span's
  monotonic offset, so absolute times are correct without ever mixing
  the two clocks.  Per-shard subtrees get their own track (tid) so the
  scatter-gather fan-out is visible as actual parallelism.

:func:`span_tree` is the ``/traces/<id>`` JSON shape: the same spans,
nested parent → children.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

__all__ = ["prometheus_text", "chrome_trace", "write_chrome_trace",
           "span_tree"]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: Matches one ``key="value"`` pair inside a canonical series key (the
#: value may contain escaped quotes/backslashes/newlines).  Mirrors
#: :func:`repro.service.metrics.series_key`; kept local so ``repro.obs``
#: stays importable without the service layer.
_SERIES_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def _family(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a canonical series key into (family, labels)."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    family = key[:brace]
    body = key[brace + 1:key.rfind("}")]
    labels = {m.group(1): (m.group(2).replace(r"\n", "\n")
                           .replace(r'\"', '"').replace(r"\\", "\\"))
              for m in _SERIES_LABEL.finditer(body)}
    return family, labels


def _metric_name(family: str, namespace: str) -> str:
    mangled = re.sub(r"[^a-zA-Z0-9_]", "_", family)
    return f"{namespace}_{mangled}" if namespace else mangled


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = (str(labels[key]).replace("\\", r"\\")
                 .replace('"', r'\"').replace("\n", r"\n"))
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _value_str(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(metrics, namespace: str = "repro") -> str:
    """Render a metrics registry in Prometheus text exposition format.

    ``metrics`` is a :class:`~repro.service.metrics.MetricsRegistry`
    (or anything with its ``snapshot()`` shape); the whole exposition
    is produced from **one** consistent snapshot, so cross-metric
    invariants (hits never ahead of probes) hold inside one scrape.
    """
    snap = metrics.snapshot()
    lines: List[str] = []

    def group(values) -> Dict[str, List[Tuple[Dict[str, str], object]]]:
        # Group series keys into families so each family gets one
        # HELP/TYPE header regardless of how many label sets it has.
        families: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
        for key in sorted(values):
            family, labels = _family(key)
            families.setdefault(family, []).append((labels, values[key]))
        return families

    def render_scalar(kind_name: str, prom_type: str, values):
        for family, series in sorted(group(values).items()):
            metric = _metric_name(family, namespace)
            if prom_type == "counter":
                metric += "_total"
            lines.append(f"# HELP {metric} {family} ({kind_name})")
            lines.append(f"# TYPE {metric} {prom_type}")
            for labels, value in series:
                lines.append(f"{metric}{_label_str(labels)} "
                             f"{_value_str(value)}")

    def emit_summary(metric, labels, hist):
        for key, quantile in _QUANTILES:
            q_labels = dict(labels, quantile=quantile)
            lines.append(f"{metric}{_label_str(q_labels)} "
                         f"{_value_str(hist[key])}")
        lines.append(f"{metric}_sum{_label_str(labels)} "
                     f"{_value_str(hist['sum'])}")
        lines.append(f"{metric}_count{_label_str(labels)} "
                     f"{_value_str(hist['count'])}")

    def emit_buckets(metric, labels, hist):
        buckets = hist["buckets"]
        for le in sorted(buckets,
                         key=lambda s: float("inf") if s == "+Inf"
                         else float(s)):
            b_labels = dict(labels, le=le)
            lines.append(f"{metric}_bucket{_label_str(b_labels)} "
                         f"{_value_str(buckets[le])}")
        lines.append(f"{metric}_sum{_label_str(labels)} "
                     f"{_value_str(hist['sum'])}")
        lines.append(f"{metric}_count{_label_str(labels)} "
                     f"{_value_str(hist['count'])}")

    def render_histograms(values):
        for family, series in sorted(group(values).items()):
            metric = _metric_name(family, namespace)
            # A family is a native Prometheus histogram only when every
            # series carries bucket counts; otherwise fall back to the
            # reservoir-quantile summary rendering.
            native = all("buckets" in hist for _, hist in series)
            prom_type = "histogram" if native else "summary"
            lines.append(f"# HELP {metric} {family} (histogram)")
            lines.append(f"# TYPE {metric} {prom_type}")
            for labels, hist in series:
                if native:
                    emit_buckets(metric, labels, hist)
                else:
                    emit_summary(metric, labels, hist)

    render_scalar("counter", "counter", snap.get("counters", {}))
    render_scalar("gauge", "gauge", snap.get("gauges", {}))
    render_histograms(snap.get("histograms", {}))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# span trees and Chrome trace events
# ----------------------------------------------------------------------
def span_tree(trace) -> Dict[str, object]:
    """A trace's spans nested parent → children (the ``/traces/<id>`` shape).

    Spans without a ``parent_id`` (including legacy flat spans) are
    children of the trace root.  Children are ordered by start offset.
    """
    ordered = sorted(trace.spans, key=lambda s: s.offset_ms)
    by_id: Dict[str, Dict[str, object]] = {}
    node_list: List[Tuple[object, Dict[str, object]]] = []
    for s in ordered:
        node = s.as_dict()
        node["children"] = []
        node_list.append((s, node))
        if s.span_id is not None:
            by_id[s.span_id] = node
    roots: List[Dict[str, object]] = []
    for s, node in node_list:
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return {
        "trace_id": trace.trace_id,
        "kind": trace.kind,
        "started_at": trace.started_at,
        "duration_ms": trace.duration_ms,
        "node_accesses": dict(trace.node_accesses),
        "spans": roots,
    }


_SHARD_SPAN = re.compile(r"^shard_(\d+)$")


def _assign_tracks(spans) -> List[int]:
    """tid per span (by position): shard subtrees get their own track,
    everything else renders on tid 1."""
    by_id = {s.span_id: s for s in spans if s.span_id is not None}
    cache: Dict[str, int] = {}

    def track(s) -> int:
        if s.span_id is not None and s.span_id in cache:
            return cache[s.span_id]
        m = _SHARD_SPAN.match(s.name)
        if m:
            tid = 2 + int(m.group(1))
        elif s.parent_id is not None and s.parent_id in by_id:
            tid = track(by_id[s.parent_id])
        else:
            tid = 1
        if s.span_id is not None:
            cache[s.span_id] = tid
        return tid

    return [track(s) for s in spans]


def chrome_trace(trace) -> Dict[str, object]:
    """A trace as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Timestamps are absolute: the trace's wall-clock ``started_at``
    epoch plus each span's monotonic offset, in microseconds.
    """
    base_us = trace.started_at * 1e6
    events: List[Dict[str, object]] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": f"repro trace {trace.trace_id}"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "service"}},
    ]
    spans = list(trace.spans)
    tracks = _assign_tracks(spans)
    named_tracks = {}
    for s, tid in zip(spans, tracks):
        m = _SHARD_SPAN.match(s.name)
        if m and tid not in named_tracks:
            named_tracks[tid] = f"shard {m.group(1)}"
    for tid, name in sorted(named_tracks.items()):
        events.append({"ph": "M", "pid": 1, "tid": tid,
                       "name": "thread_name", "args": {"name": name}})
    # The query itself as the top-level slice.
    events.append({
        "ph": "X", "pid": 1, "tid": 1,
        "name": f"{trace.kind} query",
        "cat": "query",
        "ts": base_us,
        "dur": max(trace.duration_ms, 0.0) * 1e3,
        "args": {"trace_id": trace.trace_id,
                 "node_accesses": dict(trace.node_accesses),
                 "result_size": trace.result_size},
    })
    for s, tid in zip(spans, tracks):
        args: Dict[str, object] = {k: v for k, v in s.meta.items()}
        if s.span_id is not None:
            args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        events.append({
            "ph": "X", "pid": 1, "tid": tid,
            "name": s.name,
            "cat": "span",
            "ts": base_us + s.offset_ms * 1e3,
            "dur": max(s.duration_ms, 0.0) * 1e3,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace, path) -> str:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(trace), fh, indent=2, sort_keys=True)
    return str(path)
