"""The R*-tree [BKSS90].

Supports insertion with forced reinsertion, deletion with tree
condensation, and window queries.  Nearest-neighbour and
time-parameterized queries are layered on top in :mod:`repro.queries`,
using :meth:`RStarTree.read_node` so that every node they touch is
charged to the simulated disk.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Set

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.index.node import Node, entry_mbr
from repro.index.split import rstar_split
from repro.storage import DiskSimulator, PageStore

#: Default page geometry of the paper's experiments: 4 KB pages and
#: 20-byte entries give a node capacity of 204.
DEFAULT_PAGE_SIZE = 4096
DEFAULT_ENTRY_SIZE = 20


class RStarTree:
    """A 2-D R*-tree over point data.

    Parameters
    ----------
    capacity:
        Maximum entries per node.  When omitted it is derived from
        ``page_size // entry_size`` (the paper's 204).
    min_fill_ratio:
        Minimum node occupancy (R* default 0.4).
    reinsert_ratio:
        Fraction of entries removed on the first overflow of a level
        during one insertion (R* default 0.3).
    disk:
        The :class:`DiskSimulator` charged for query-time node reads.
        Structure modifications (build, insert, delete) are not charged:
        the paper's experiments measure query cost only.
    """

    def __init__(self, capacity: Optional[int] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 entry_size: int = DEFAULT_ENTRY_SIZE,
                 min_fill_ratio: float = 0.4,
                 reinsert_ratio: float = 0.3,
                 disk: Optional[DiskSimulator] = None):
        if capacity is None:
            capacity = page_size // entry_size
        if capacity < 4:
            raise ValueError("node capacity must be at least 4")
        if not 0.0 < min_fill_ratio <= 0.5:
            raise ValueError("min_fill_ratio must be in (0, 0.5]")
        self.capacity = capacity
        self.min_fill = max(2, int(math.floor(capacity * min_fill_ratio)))
        self.reinsert_count = max(1, int(math.floor(capacity * reinsert_ratio)))
        self.disk = disk if disk is not None else DiskSimulator()
        self.pages = PageStore()
        self.root = self._new_node(level=0)
        self._size = 0
        self._reinserted_levels: Set[int] = set()
        self._in_insert = False

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _new_node(self, level: int) -> Node:
        return Node(level=level, page_id=self.pages.allocate())

    def _free_node(self, node: Node) -> None:
        self.pages.free(node.page_id)
        self.disk.invalidate(node.page_id)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a root-only tree)."""
        return self.root.level + 1

    @property
    def num_pages(self) -> int:
        return self.pages.num_pages

    def attach_lru_buffer(self, fraction: float) -> int:
        """Install an LRU buffer sized as a fraction of the tree's pages.

        Returns the number of buffer pages (at least 1 when
        ``fraction > 0``), matching the paper's "10 % of the R-tree size".
        """
        pages = max(1, round(self.num_pages * fraction)) if fraction > 0 else 0
        self.disk.set_buffer(pages)
        return pages

    def read_node(self, node: Node) -> None:
        """Charge one query-time access to ``node``."""
        self.disk.read(node.page_id)

    def nodes(self) -> Iterator[Node]:
        """All nodes, top-down (not charged to the disk)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.entries)

    def points(self) -> Iterator[LeafEntry]:
        """All stored data points (not charged to the disk)."""
        for node in self.nodes():
            if node.is_leaf:
                yield from node.entries

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, oid: int, x: float, y: float) -> None:
        """Insert one data point."""
        top_level_call = not self._in_insert
        if top_level_call:
            self._reinserted_levels = set()
            self._in_insert = True
        try:
            self._insert_at_level(LeafEntry(oid, float(x), float(y)), level=0)
        finally:
            if top_level_call:
                self._in_insert = False
        self._size += 1

    def extend(self, points: Sequence) -> None:
        """Insert ``(x, y)`` pairs, assigning sequential object ids."""
        start = self._size
        for i, p in enumerate(points):
            self.insert(start + i, p[0], p[1])

    def _insert_at_level(self, entry, level: int) -> None:
        """Make ``entry`` a child of some node *at* ``level``.

        ``entry`` is a :class:`LeafEntry` (then ``level`` is 0) or an
        orphaned subtree of level ``level - 1`` being re-inserted during
        forced reinsertion or tree condensation.
        """
        path = self._choose_path(entry_mbr(entry), level)
        path[-1].entries.append(entry)
        self._adjust_upward(path)

    def _choose_path(self, mbr: Rect, target_level: int) -> List[Node]:
        """Descend from the root to a node at ``target_level``."""
        node = self.root
        path = [node]
        while node.level > target_level:
            node = self._choose_subtree(node, mbr)
            path.append(node)
        return path

    def _choose_subtree(self, node: Node, mbr: Rect) -> Node:
        """R* ChooseSubtree.

        For the level directly above the leaves the child minimizing
        *overlap* enlargement wins; higher up, minimum area enlargement.
        Ties break on area enlargement, then absolute area.
        """
        children: List[Node] = node.entries  # type: ignore[assignment]
        if node.level == 1:
            best = None
            for child in children:
                enlarged = child.mbr.union(mbr)
                overlap_delta = 0.0
                for other in children:
                    if other is child:
                        continue
                    overlap_delta += (enlarged.overlap_area(other.mbr)
                                      - child.mbr.overlap_area(other.mbr))
                key = (overlap_delta, child.mbr.enlargement(mbr), child.mbr.area())
                if best is None or key < best[0]:
                    best = (key, child)
            return best[1]
        best = None
        for child in children:
            key = (child.mbr.enlargement(mbr), child.mbr.area())
            if best is None or key < best[0]:
                best = (key, child)
        return best[1]

    def _adjust_upward(self, path: List[Node]) -> None:
        """Recompute MBRs bottom-up, resolving overflows as they appear."""
        i = len(path) - 1
        while i >= 0:
            node = path[i]
            node.recompute_mbr()
            if len(node.entries) > self.capacity:
                if node is not self.root and node.level not in self._reinserted_levels:
                    self._reinserted_levels.add(node.level)
                    self._forced_reinsert(node, path[:i + 1])
                    return  # reinsertions re-adjusted every affected path
                self._split_node(node, path, i)
            i -= 1

    def _forced_reinsert(self, node: Node, path_to_node: List[Node]) -> None:
        """Remove the entries farthest from the node centre and re-insert them."""
        center = node.mbr.center()
        node.entries.sort(
            key=lambda e: entry_mbr(e).center().distance_sq_to(center))
        victims = node.entries[-self.reinsert_count:]
        del node.entries[-self.reinsert_count:]
        # Tighten the whole remaining path before re-inserting, so later
        # ChooseSubtree decisions see consistent MBRs.
        for ancestor in reversed(path_to_node):
            ancestor.recompute_mbr()
        # Far-reinsert order (farthest first) per the original paper's
        # recommendation of re-inserting "maximally distant" entries.
        for victim in reversed(victims):
            self._insert_at_level(victim, node.level)

    def _split_node(self, node: Node, path: List[Node], index: int) -> None:
        """Split an overflowing node; grow a new root when needed."""
        group1, group2 = rstar_split(node.entries, self.min_fill)
        node.entries = group1
        node.recompute_mbr()
        sibling = self._new_node(node.level)
        sibling.entries = group2
        sibling.recompute_mbr()
        if index == 0:
            new_root = self._new_node(level=node.level + 1)
            new_root.entries = [node, sibling]
            new_root.recompute_mbr()
            self.root = new_root
        else:
            path[index - 1].entries.append(sibling)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, oid: int, x: float, y: float) -> bool:
        """Remove a data point; returns ``False`` when it is not stored."""
        target = LeafEntry(oid, float(x), float(y))
        path = self._find_leaf(self.root, [], target)
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries.remove(target)
        self._size -= 1
        self._condense(path)
        # Shrink the tree when the root became a trivial inner node.
        while self.root.level > 0 and len(self.root.entries) == 1:
            old_root = self.root
            self.root = self.root.entries[0]
            self._free_node(old_root)
        return True

    def _find_leaf(self, node: Node, path: List[Node],
                   target: LeafEntry) -> Optional[List[Node]]:
        path = path + [node]
        if node.is_leaf:
            return path if target in node.entries else None
        for child in node.entries:
            if child.mbr.contains_point((target.x, target.y)):
                found = self._find_leaf(child, path, target)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[Node]) -> None:
        """CondenseTree: drop underfull nodes, re-insert their entries."""
        orphans: List = []  # (entry, level) pairs
        for i in range(len(path) - 1, 0, -1):
            node = path[i]
            parent = path[i - 1]
            if len(node.entries) < self.min_fill:
                parent.entries.remove(node)
                orphans.extend((e, node.level) for e in node.entries)
                self._free_node(node)
            else:
                node.recompute_mbr()
        self.root.recompute_mbr()
        for entry, level in orphans:
            self._reinserted_levels = set()
            self._insert_at_level(entry, level)

    # ------------------------------------------------------------------
    # window query
    # ------------------------------------------------------------------
    def window(self, rect: Rect) -> List[LeafEntry]:
        """All data points inside the (closed) query rectangle.

        Every visited node — including the root — is charged to the
        simulated disk, matching the paper's node-access counting.
        """
        result: List[LeafEntry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.read_node(node)
            if node.is_leaf:
                for e in node.entries:
                    if rect.contains_point((e.x, e.y)):
                        result.append(e)
            else:
                for child in node.entries:
                    if rect.intersects(child.mbr):
                        stack.append(child)
        return result

    # ------------------------------------------------------------------
    # integrity checking (used heavily by the test-suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` on any structural violation."""
        size = 0
        stack = [(self.root, None)]
        while stack:
            node, expected_level = stack.pop()
            if expected_level is not None:
                assert node.level == expected_level, "level mismatch"
            if node is not self.root:
                assert self.min_fill <= len(node.entries) <= self.capacity, (
                    f"occupancy {len(node.entries)} outside "
                    f"[{self.min_fill}, {self.capacity}]")
            else:
                assert len(node.entries) <= self.capacity
                if node.level > 0:
                    assert len(node.entries) >= 2, "inner root needs >= 2 children"
            assert self.pages.is_live(node.page_id), "node on freed page"
            if node.entries:
                recomputed = Rect.from_rects([entry_mbr(e) for e in node.entries])
                assert node.mbr == recomputed, "MBR not tight"
            if node.is_leaf:
                size += len(node.entries)
            else:
                for child in node.entries:
                    assert node.mbr.contains_rect(child.mbr), "child outside MBR"
                    stack.append((child, node.level - 1))
        assert size == self._size, f"size mismatch: {size} != {self._size}"
