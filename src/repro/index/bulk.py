"""Sort-Tile-Recursive (STR) bulk loading.

The paper builds disk-resident R*-trees over up to a million points.
Rebuilding such trees by repeated insertion for every cardinality of a
parameter sweep would dominate experiment time in pure Python, so the
benchmark harness bulk-loads with STR (Leutenegger et al.), the standard
packing algorithm.  The resulting trees have the same height, page
count and near-identical node extents as insertion-built R*-trees at
the configured fill factor, which is what the cost experiments measure.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.index.entry import LeafEntry
from repro.index.node import Node
from repro.index.rstar import RStarTree
from repro.storage import DiskSimulator


def bulk_load_str(points: Sequence, capacity: Optional[int] = None,
                  fill: float = 0.7,
                  disk: Optional[DiskSimulator] = None,
                  oids: Optional[Sequence[int]] = None,
                  **tree_kwargs) -> RStarTree:
    """Build an :class:`RStarTree` over ``points`` with STR packing.

    Parameters
    ----------
    points:
        ``(x, y)`` pairs; object ids are the sequence positions unless
        ``oids`` supplies them explicitly (a sharded server loads each
        shard with its points' *global* ids).
    fill:
        Target node occupancy (0 < fill <= 1).  0.7 approximates the
        average occupancy of an insertion-built R*-tree.
    """
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    if oids is not None and len(oids) != len(points):
        raise ValueError("oids must match points one-to-one")
    tree = RStarTree(capacity=capacity, disk=disk, **tree_kwargs)
    entries: List[LeafEntry] = [
        LeafEntry(i if oids is None else int(oids[i]),
                  float(p[0]), float(p[1]))
        for i, p in enumerate(points)
    ]
    if not entries:
        return tree
    per_node = max(tree.min_fill, min(tree.capacity, int(round(tree.capacity * fill))))

    # Free the page of the placeholder empty root before packing.
    tree.pages.free(tree.root.page_id)

    level = 0
    nodes = _pack_level(tree, entries, per_node, level,
                        key_of=lambda e: (e.x, e.y))
    while len(nodes) > 1:
        level += 1
        nodes = _pack_level(tree, nodes, per_node, level,
                            key_of=lambda n: n.mbr.center())
    tree.root = nodes[0]
    tree._size = len(entries)
    return tree


def _pack_level(tree: RStarTree, items: List, per_node: int, level: int,
                key_of) -> List[Node]:
    """Tile ``items`` into nodes of about ``per_node`` entries, STR-style.

    Unlike textbook STR, chunk sizes within each vertical slice are
    balanced so that every node respects the tree's ``[min_fill,
    capacity]`` occupancy invariant (a lone root-level node may be
    smaller).
    """
    n = len(items)
    num_nodes = math.ceil(n / per_node)
    num_slices = max(1, math.ceil(math.sqrt(num_nodes)))
    per_slice = math.ceil(n / num_slices)

    items = sorted(items, key=lambda it: key_of(it)[0])
    runs = [items[s:s + per_slice] for s in range(0, n, per_slice)]
    # A trailing sliver of a slice cannot form a legal node on its own;
    # fold it into the previous slice.
    if len(runs) > 1 and len(runs[-1]) < tree.min_fill:
        runs[-2].extend(runs.pop())

    nodes: List[Node] = []
    for run in runs:
        run = sorted(run, key=lambda it: key_of(it)[1])
        start = 0
        for size in _chunk_sizes(len(run), tree.min_fill, per_node, tree.capacity):
            node = Node(level=level, page_id=tree.pages.allocate())
            node.entries = run[start:start + size]
            node.recompute_mbr()
            nodes.append(node)
            start += size
    return nodes


def _chunk_sizes(m: int, min_fill: int, per_node: int, capacity: int) -> List[int]:
    """Split ``m`` items into chunks of size within ``[min_fill, capacity]``.

    Aims for ``per_node`` items per chunk, then walks the chunk count
    down until the evenly-spread sizes respect the minimum fill.  A
    single chunk below ``min_fill`` is returned when ``m`` itself is
    small (legal only for the root, which the caller guarantees).
    """
    if m == 0:
        return []
    chunks = max(math.ceil(m / per_node), math.ceil(m / capacity))
    while chunks > 1 and m // chunks < min_fill:
        chunks -= 1
    if math.ceil(m / chunks) > capacity:
        raise ValueError(
            f"cannot pack {m} items into legal nodes "
            f"(min_fill={min_fill}, capacity={capacity})")
    base, extra = divmod(m, chunks)
    return [base + 1 if i < extra else base for i in range(chunks)]
