"""Structural statistics of a built tree.

The analytical node-access models of Section 5 need, per tree level,
the number of nodes and their average extents.  These statistics are
collected here, outside the hot query paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.index.rstar import RStarTree


@dataclass(frozen=True)
class LevelStats:
    """Aggregate statistics of all nodes at one tree level."""

    level: int
    num_nodes: int
    avg_extent_x: float
    avg_extent_y: float
    avg_fanout: float


def tree_level_stats(tree: RStarTree) -> List[LevelStats]:
    """Per-level statistics, leaf level (0) first."""
    counts: Dict[int, int] = {}
    sum_x: Dict[int, float] = {}
    sum_y: Dict[int, float] = {}
    sum_fanout: Dict[int, int] = {}
    for node in tree.nodes():
        lvl = node.level
        counts[lvl] = counts.get(lvl, 0) + 1
        sum_x[lvl] = sum_x.get(lvl, 0.0) + node.mbr.width
        sum_y[lvl] = sum_y.get(lvl, 0.0) + node.mbr.height
        sum_fanout[lvl] = sum_fanout.get(lvl, 0) + len(node.entries)
    return [
        LevelStats(
            level=lvl,
            num_nodes=counts[lvl],
            avg_extent_x=sum_x[lvl] / counts[lvl],
            avg_extent_y=sum_y[lvl] / counts[lvl],
            avg_fanout=sum_fanout[lvl] / counts[lvl],
        )
        for lvl in sorted(counts)
    ]


def average_occupancy(tree: RStarTree) -> float:
    """Mean node fill ratio across all non-root nodes."""
    total = 0
    nodes = 0
    for node in tree.nodes():
        if node is tree.root:
            continue
        total += len(node.entries)
        nodes += 1
    if nodes == 0:
        return len(tree.root.entries) / tree.capacity if tree.capacity else 0.0
    return total / (nodes * tree.capacity)
