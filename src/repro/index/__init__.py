"""R*-tree spatial index over the simulated disk.

Implements the access method of the paper's experimental setup
[BKSS90]: ChooseSubtree with overlap minimization, the R* topological
split, forced reinsertion, deletion with tree condensation, and STR
bulk loading for building large trees quickly.  One node occupies one
simulated page; the default geometry (4 KB pages, 20-byte entries)
yields the paper's node capacity of 204 entries.
"""

from repro.index.entry import LeafEntry
from repro.index.node import Node
from repro.index.rstar import RStarTree
from repro.index.bulk import bulk_load_str
from repro.index.metrics import LevelStats, tree_level_stats

__all__ = [
    "LeafEntry",
    "Node",
    "RStarTree",
    "bulk_load_str",
    "LevelStats",
    "tree_level_stats",
]
