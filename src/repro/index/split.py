"""The R* node split [BKSS90, Section 4.2].

ChooseSplitAxis picks the axis whose candidate distributions have the
minimum total margin; ChooseSplitIndex then picks the distribution with
minimum MBR overlap (area as tie-break).  Candidate distributions place
the first ``min_fill - 1 + i`` entries (``i = 1 .. capacity - 2*min_fill + 2``)
of an axis-sorted order in the first group.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import Rect
from repro.index.node import entry_mbr


def rstar_split(entries: Sequence, min_fill: int) -> Tuple[List, List]:
    """Partition ``entries`` (length > 1) into two groups, R*-style.

    Both groups are guaranteed to hold at least ``min_fill`` entries.
    """
    if len(entries) < 2 * min_fill:
        raise ValueError(
            f"cannot split {len(entries)} entries with min_fill={min_fill}")

    best = None  # (overlap, area, ordered_entries, split_position)
    for axis in ("x", "y"):
        for ordered in _axis_orders(entries, axis):
            mbrs = [entry_mbr(e) for e in ordered]
            prefix = _running_unions(mbrs)
            suffix = _running_unions(mbrs[::-1])[::-1]
            for k in range(min_fill, len(ordered) - min_fill + 1):
                left, right = prefix[k - 1], suffix[k]
                margin = left.margin() + right.margin()
                overlap = left.overlap_area(right)
                area = left.area() + right.area()
                key = (margin, overlap, area)
                if best is None or key < best[0]:
                    best = (key, list(ordered), k)

    # NOTE: the canonical algorithm first fixes the axis by total margin and
    # only then minimizes overlap within that axis.  Comparing
    # (margin, overlap, area) lexicographically across all candidates is an
    # equivalent-quality simplification used by several open-source R*-trees;
    # it never produces a worse margin axis.
    _, ordered, k = best
    return ordered[:k], ordered[k:]


def _axis_orders(entries: Sequence, axis: str):
    """The two sort orders (by lower and by upper bound) along an axis."""
    if axis == "x":
        lower = sorted(entries, key=lambda e: (entry_mbr(e).xmin, entry_mbr(e).xmax))
        upper = sorted(entries, key=lambda e: (entry_mbr(e).xmax, entry_mbr(e).xmin))
    else:
        lower = sorted(entries, key=lambda e: (entry_mbr(e).ymin, entry_mbr(e).ymax))
        upper = sorted(entries, key=lambda e: (entry_mbr(e).ymax, entry_mbr(e).ymin))
    yield lower
    if upper != lower:
        yield upper


def _running_unions(mbrs: List[Rect]) -> List[Rect]:
    """``result[i]`` is the union of ``mbrs[0..i]``."""
    out: List[Rect] = []
    acc = None
    for mbr in mbrs:
        acc = mbr if acc is None else acc.union(mbr)
        out.append(acc)
    return out
