"""R*-tree nodes."""

from __future__ import annotations

from typing import List, Union

from repro.geometry import Rect
from repro.index.entry import LeafEntry


class Node:
    """One R*-tree node, occupying one simulated disk page.

    ``level`` 0 is the leaf level.  A leaf's ``entries`` are
    :class:`LeafEntry` instances; an inner node's ``entries`` are child
    ``Node`` instances.  ``mbr`` is kept tight by the tree operations.
    """

    __slots__ = ("level", "entries", "mbr", "page_id")

    def __init__(self, level: int, page_id: int):
        self.level = level
        self.entries: List[Union[LeafEntry, "Node"]] = []
        self.mbr: Rect = Rect(0.0, 0.0, 0.0, 0.0)
        self.page_id = page_id

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def recompute_mbr(self) -> None:
        """Tighten ``mbr`` to exactly cover the current entries."""
        if not self.entries:
            self.mbr = Rect(0.0, 0.0, 0.0, 0.0)
            return
        self.mbr = Rect.from_rects([entry_mbr(e) for e in self.entries])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"inner(level={self.level})"
        return f"<Node {kind} page={self.page_id} fanout={len(self.entries)}>"


def entry_mbr(entry: Union[LeafEntry, Node]) -> Rect:
    """MBR of either kind of entry."""
    return entry.mbr
