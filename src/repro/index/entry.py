"""Leaf entries of the R*-tree.

The paper indexes point datasets, so a leaf entry is an object id plus
a point; its MBR is the degenerate rectangle at that point.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.geometry import Point, Rect


class LeafEntry(NamedTuple):
    """A data point stored at the leaf level."""

    oid: int
    x: float
    y: float

    @property
    def point(self) -> Point:
        return Point(self.x, self.y)

    @property
    def mbr(self) -> Rect:
        return Rect(self.x, self.y, self.x, self.y)
