"""The Minskew spatial histogram [APR99].

Minskew partitions the universe into rectangular buckets within which
the point distribution is approximately uniform.  Construction starts
from a regular grid of *initial cells* (the paper uses 10 000) and
greedily performs binary splits — always the split with the largest
reduction in *spatial skew* (the variance of cell frequencies inside a
bucket) — until the budget (500 buckets in the paper) is exhausted.

The paper plugs the histogram into the uniform-data formulae of
Section 5 by replacing the global density with a local one (eq. 5-7):
``N' = sum(b.N)`` over the buckets relevant to the query, divided by
``sum(b.Area)``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Rect


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: an extent and the number of points inside."""

    rect: Rect
    count: float

    @property
    def area(self) -> float:
        return self.rect.area()

    @property
    def density(self) -> float:
        return self.count / self.area if self.area > 0 else 0.0


class MinskewHistogram:
    """A built Minskew histogram supporting the paper's estimations."""

    def __init__(self, buckets: List[Bucket], universe: Rect, total: float):
        self._buckets = buckets
        self.universe = universe
        self.total = total

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, points: Sequence, universe: Rect,
              initial_cells: int = 10_000,
              num_buckets: int = 500) -> "MinskewHistogram":
        """Build from raw points (paper defaults: 10 000 cells, 500 buckets)."""
        side = max(1, int(round(math.sqrt(initial_cells))))
        xs = np.asarray([p[0] for p in points], dtype=float)
        ys = np.asarray([p[1] for p in points], dtype=float)
        # Bin into the grid (points on the top edges go to the last cell).
        ix = np.clip(((xs - universe.xmin) / universe.width * side).astype(int),
                     0, side - 1)
        iy = np.clip(((ys - universe.ymin) / universe.height * side).astype(int),
                     0, side - 1)
        grid = np.zeros((side, side), dtype=float)
        np.add.at(grid, (ix, iy), 1.0)
        return cls.from_grid(grid, universe, num_buckets)

    @classmethod
    def from_grid(cls, grid: np.ndarray, universe: Rect,
                  num_buckets: int) -> "MinskewHistogram":
        """Build from a pre-computed frequency grid."""
        side_x, side_y = grid.shape
        # Prefix sums of f and f^2 give O(1) skew for any sub-rectangle.
        pre = np.zeros((side_x + 1, side_y + 1))
        pre2 = np.zeros((side_x + 1, side_y + 1))
        pre[1:, 1:] = grid.cumsum(0).cumsum(1)
        pre2[1:, 1:] = (grid ** 2).cumsum(0).cumsum(1)

        def rect_sum(p, i0, i1, j0, j1):
            return p[i1, j1] - p[i0, j1] - p[i1, j0] + p[i0, j0]

        def skew(i0, i1, j0, j1):
            m = (i1 - i0) * (j1 - j0)
            s = rect_sum(pre, i0, i1, j0, j1)
            s2 = rect_sum(pre2, i0, i1, j0, j1)
            return s2 - s * s / m

        def best_split(i0, i1, j0, j1):
            """(skew reduction, axis, position) of the best binary split."""
            base = skew(i0, i1, j0, j1)
            best = (0.0, None, None)
            for i in range(i0 + 1, i1):
                red = base - skew(i0, i, j0, j1) - skew(i, i1, j0, j1)
                if red > best[0]:
                    best = (red, "x", i)
            for j in range(j0 + 1, j1):
                red = base - skew(i0, i1, j0, j) - skew(i0, i1, j, j1)
                if red > best[0]:
                    best = (red, "y", j)
            return best

        # Max-heap of candidate splits; ties broken by insertion order.
        regions: List[Tuple[int, int, int, int]] = [(0, side_x, 0, side_y)]
        heap = []
        counter = 0
        red, axis, pos = best_split(0, side_x, 0, side_y)
        if axis is not None:
            heapq.heappush(heap, (-red, counter, 0, axis, pos))
        while len(regions) < num_buckets and heap:
            neg_red, _, ridx, axis, pos = heapq.heappop(heap)
            i0, i1, j0, j1 = regions[ridx]
            if axis == "x":
                halves = [(i0, pos, j0, j1), (pos, i1, j0, j1)]
            else:
                halves = [(i0, i1, j0, pos), (i0, i1, pos, j1)]
            regions[ridx] = halves[0]
            regions.append(halves[1])
            for idx in (ridx, len(regions) - 1):
                a0, a1, b0, b1 = regions[idx]
                red, ax, p = best_split(a0, a1, b0, b1)
                if ax is not None and red > 0.0:
                    counter += 1
                    heapq.heappush(heap, (-red, counter, idx, ax, p))

        cell_w = universe.width / side_x
        cell_h = universe.height / side_y
        buckets = []
        for i0, i1, j0, j1 in regions:
            rect = Rect(universe.xmin + i0 * cell_w, universe.ymin + j0 * cell_h,
                        universe.xmin + i1 * cell_w, universe.ymin + j1 * cell_h)
            buckets.append(Bucket(rect, float(rect_sum(pre, i0, i1, j0, j1))))
        return cls(buckets, universe, float(pre[-1, -1]))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def buckets(self) -> List[Bucket]:
        return list(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)

    # ------------------------------------------------------------------
    # estimation primitives
    # ------------------------------------------------------------------
    def estimate_count(self, rect: Rect) -> float:
        """Expected number of points in ``rect`` (fractional-area model)."""
        total = 0.0
        for b in self._buckets:
            if b.area > 0.0:
                total += b.count * b.rect.overlap_area(rect) / b.area
        return total

    def bucket_at(self, point) -> Optional[Bucket]:
        """The bucket containing ``point`` (ties broken arbitrarily)."""
        for b in self._buckets:
            if b.rect.contains_point(point):
                return b
        return None

    def local_density_nn(self, point, min_points: float) -> float:
        """Local density around ``point`` for NN estimation (eq. 5-7).

        Starts from the bucket containing the query and adds the nearest
        neighbouring buckets until they hold at least ``min_points``
        points, then returns ``sum(N) / sum(Area)``.
        """
        ordered = sorted(self._buckets, key=lambda b: b.rect.mindist_sq(point))
        count = 0.0
        area = 0.0
        for b in ordered:
            count += b.count
            area += b.area
            if count >= min_points:
                break
        return count / area if area > 0 else 0.0

    def boundary_density(self, rect: Rect) -> float:
        """Density over the buckets crossing the boundary of ``rect``.

        Used for window queries (eq. 5-7): result changes are driven by
        points near the window boundary.
        """
        count = 0.0
        area = 0.0
        for b in self._buckets:
            if b.rect.intersects(rect) and not rect.contains_rect(b.rect):
                count += b.count
                area += b.area
        if area == 0.0:  # window swallows or misses every bucket: fall back
            return self.total / self.universe.area()
        return count / area
