"""Expected validity-region size for (k)NN queries (paper, Section 5).

For uniform data the validity region of a kNN query is an order-k
Voronoi cell, whose expected area is inversely proportional to
``2k - 1`` [OBSC00, cited by the paper]: order-1 cells tessellate the
plane into ``N`` regions of expected area ``A/N``, and the order-k
tessellation has roughly ``(2k - 1) * N`` cells.  Non-uniform data is
handled by substituting a local density estimated from a Minskew
histogram (eq. 5-7): starting from the bucket containing the query
point and expanding to neighbouring buckets until enough points are
covered.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.histogram import MinskewHistogram

#: Expected edge count of a (order-k) Voronoi cell for uniform data
#: [A91, OBSC00] — the paper's Figure 24 baseline.
EXPECTED_VORONOI_EDGES = 6.0


def expected_nn_validity_area(n: int, k: int, universe_area: float) -> float:
    """E[area(V(q))] for a kNN query over ``n`` uniform points.

    ``A / ((2k - 1) * n)`` — for ``k = 1`` this is the exact expected
    Voronoi-cell area ``A / n``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if k < 1:
        raise ValueError("k must be positive")
    if k >= n:
        return universe_area  # the result can never change
    return universe_area / ((2 * k - 1) * n)


def expected_nn_validity_area_hist(hist: MinskewHistogram, query, k: int,
                                   min_points: Optional[float] = None) -> float:
    """Histogram-corrected E[area(V(q))] at a specific query location.

    The local density substitutes the global one; ``min_points``
    controls how far the bucket expansion reaches (default: enough
    points to determine an order-k neighbourhood).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if min_points is None:
        min_points = max(16.0, 4.0 * k)
    density = hist.local_density_nn(query, min_points)
    if density <= 0.0:
        return hist.universe.area()
    return 1.0 / ((2 * k - 1) * density)


def expected_nn_edges(k: int = 1) -> float:
    """Expected edge count of the validity region (≈ 6, independent of k)."""
    if k < 1:
        raise ValueError("k must be positive")
    return EXPECTED_VORONOI_EDGES
