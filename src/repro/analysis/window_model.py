"""Expected validity-region size for window queries (paper, Section 5).

The derivation follows the paper's sweeping-region argument: let
``dist(theta)`` be the distance the focus can travel in direction
``theta`` before the result changes.  The result survives distance
``xi`` iff no data point lies in the region swept by the window's edges
(eq. 5-4):

    SR(xi, theta) = 2*xi*(qy*cos + qx*sin) - xi^2 * cos*sin,

so for ``N`` uniform points ``P{dist > xi} = (1 - SR/A)^N`` and
(eq. 5-5)

    E[dist(theta)^2] = integral_0^inf 2*xi*(1 - SR/A)^N dxi,

using ``E[X^2] = int 2x P{X > x} dx`` for non-negative ``X``.  Treating
the validity region as star-shaped around the focus, its expected area
is the polar integral ``E[A] = 1/2 * integral_0^{2pi} E[dist^2] dtheta``
(eq. 5-3).  Symmetry of the square sweeping formula reduces the angular
range to one quadrant.

The histogram-corrected variant replaces the binomial survival with a
Poisson one using the density of the buckets crossing the window
boundary (eq. 5-7), since boundary points are the ones that invalidate
the result.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.analysis.histogram import MinskewHistogram
from repro.geometry import Rect


def expected_window_validity_area(n: int, qx: float, qy: float,
                                  universe_area: float,
                                  angular_steps: int = 64,
                                  radial_steps: int = 2048) -> float:
    """E[area(V(q))] of a ``qx x qy`` window over ``n`` uniform points."""
    if n <= 0:
        raise ValueError("n must be positive")
    if qx <= 0 or qy <= 0:
        raise ValueError("window extents must be positive")
    density = n / universe_area

    def survival_exponent(sr: np.ndarray) -> np.ndarray:
        # (1 - SR/A)^N, computed stably in log space.
        frac = np.clip(sr / universe_area, 0.0, 1.0 - 1e-15)
        return n * np.log1p(-frac)

    thetas = np.linspace(0.0, math.pi / 2.0, angular_steps)
    e_dist_sq = np.empty_like(thetas)
    for i, theta in enumerate(thetas):
        e_dist_sq[i] = _expected_dist_sq(theta, qx, qy, density,
                                         survival_exponent, radial_steps)
    # E[A] = 1/2 * int_0^{2pi} = 2 * int_0^{pi/2} by symmetry.
    # Sparse datasets can push the unclipped polar integral beyond the
    # data space; a validity region never exceeds the universe.
    return min(2.0 * float(np.trapezoid(e_dist_sq, thetas)), universe_area)


def expected_window_validity_area_hist(hist: MinskewHistogram, window: Rect,
                                       angular_steps: int = 64,
                                       radial_steps: int = 2048) -> float:
    """Histogram-corrected E[area(V(q))] for a specific window."""
    qx, qy = window.width, window.height
    if qx <= 0 or qy <= 0:
        raise ValueError("window extents must be positive")
    density = hist.boundary_density(window)
    if density <= 0.0:
        return hist.universe.area()

    def survival_exponent(sr: np.ndarray) -> np.ndarray:
        return -density * sr  # Poisson survival exp(-rho * SR)

    thetas = np.linspace(0.0, math.pi / 2.0, angular_steps)
    e_dist_sq = np.empty_like(thetas)
    for i, theta in enumerate(thetas):
        e_dist_sq[i] = _expected_dist_sq(theta, qx, qy, density,
                                         survival_exponent, radial_steps)
    return min(2.0 * float(np.trapezoid(e_dist_sq, thetas)),
               hist.universe.area())


def _expected_dist_sq(theta: float, qx: float, qy: float, density: float,
                      survival_exponent, radial_steps: int) -> float:
    """``E[dist(theta)^2] = int 2 xi exp(survival_exponent(SR)) dxi``."""
    cos_t = math.cos(theta)
    sin_t = math.sin(theta)
    edge = qy * cos_t + qx * sin_t
    # Characteristic invalidation distance: one expected point in the
    # sweep.  Integrate far enough for the survival tail to vanish.
    xi_char = 1.0 / max(density * edge, 1e-300)
    xi_max = 50.0 * xi_char
    xi = np.linspace(0.0, xi_max, radial_steps)
    sweep = 2.0 * xi * edge - xi * xi * cos_t * sin_t
    # Beyond the formula's validity (sweep must be non-decreasing in xi)
    # clamp at the maximum reached so far — the probability mass out
    # there is negligible anyway.
    sweep = np.maximum.accumulate(np.maximum(sweep, 0.0))
    survival = np.exp(survival_exponent(sweep))
    return float(np.trapezoid(2.0 * xi * survival, xi))


def expected_inner_extents(density: float, qx: float, qy: float
                           ) -> Tuple[float, float]:
    """Expected half-extents of the inner validity region (eq. 5-6).

    The focus travels ``dist_x`` along +x until the window's left edge
    sweeps over one expected point: ``qy * dist_x * density = 1``.
    Returns ``(dist_x, dist_y)``; by symmetry each applies to both
    directions of its axis.
    """
    if density <= 0.0:
        raise ValueError("density must be positive")
    return 1.0 / (density * qy), 1.0 / (density * qx)
