"""Analytical models of Section 5.

* :mod:`repro.analysis.nn_model` — expected area of (k)NN validity
  regions: order-k Voronoi cell expectations, with a histogram-corrected
  variant for skewed data.
* :mod:`repro.analysis.window_model` — expected area of window-query
  validity regions (the sweeping-region integral, eqs. 5-4/5-5) and the
  expected extents of the inner validity region (eq. 5-6).
* :mod:`repro.analysis.cost_model` — node-access estimates for window
  queries [TSS00] and for the marginal-rectangle second step.
* :mod:`repro.analysis.histogram` — the Minskew spatial histogram
  [APR99] used to adapt the uniform models to real data (eq. 5-7).
"""

from repro.analysis.histogram import MinskewHistogram, Bucket
from repro.analysis.nn_model import (
    expected_nn_validity_area,
    expected_nn_validity_area_hist,
    expected_nn_edges,
)
from repro.analysis.window_model import (
    expected_window_validity_area,
    expected_window_validity_area_hist,
    expected_inner_extents,
)
from repro.analysis.cost_model import (
    knn_query_node_accesses,
    window_query_node_accesses,
    contained_node_accesses,
    marginal_query_node_accesses,
    location_window_query_node_accesses,
)

__all__ = [
    "MinskewHistogram",
    "Bucket",
    "expected_nn_validity_area",
    "expected_nn_validity_area_hist",
    "expected_nn_edges",
    "expected_window_validity_area",
    "expected_window_validity_area_hist",
    "expected_inner_extents",
    "knn_query_node_accesses",
    "window_query_node_accesses",
    "contained_node_accesses",
    "marginal_query_node_accesses",
    "location_window_query_node_accesses",
]
