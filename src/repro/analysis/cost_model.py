"""Node-access cost models for R-tree window queries [TSS00].

For uniformly distributed queries, a node whose MBR has extents
``(sx, sy)`` intersects a ``qx x qy`` window with probability
``(sx + qx) * (sy + qy) / A`` (ignoring boundary effects), so the
expected node accesses of a window query are

    NA(q) = 1 + sum over non-root levels of n_l * P(intersect).

The second step of the paper's location-based window algorithm queries
the *marginal* rectangle: the extended window ``q'`` minus the original
window ``q``.  Nodes fully contained in ``q`` need not be re-read
(their points are all inner), hence (Section 5):

    NA_marginal = NA_intersect(q') - NA_contained(q).
"""

from __future__ import annotations

import math

from typing import Sequence

from repro.index.metrics import LevelStats


def window_query_node_accesses(levels: Sequence[LevelStats], qx: float,
                               qy: float, universe_area: float) -> float:
    """Expected NA of a window query (the root is always read)."""
    _check(qx, qy, universe_area)
    if not levels:
        return 1.0
    total = 1.0  # the root
    root_level = max(s.level for s in levels)
    for stats in levels:
        if stats.level == root_level:
            continue
        p_intersect = min(
            1.0,
            (stats.avg_extent_x + qx) * (stats.avg_extent_y + qy) / universe_area)
        total += stats.num_nodes * p_intersect
    return total


def contained_node_accesses(levels: Sequence[LevelStats], qx: float,
                            qy: float, universe_area: float) -> float:
    """Expected number of nodes fully contained in the window."""
    _check(qx, qy, universe_area)
    total = 0.0
    root_level = max((s.level for s in levels), default=0)
    for stats in levels:
        if stats.level == root_level:
            continue
        px = max(0.0, qx - stats.avg_extent_x)
        py = max(0.0, qy - stats.avg_extent_y)
        total += stats.num_nodes * min(1.0, px * py / universe_area)
    return total


def marginal_query_node_accesses(levels: Sequence[LevelStats],
                                 qx: float, qy: float,
                                 ext_qx: float, ext_qy: float,
                                 universe_area: float) -> float:
    """Expected NA of the influence-object (second) query.

    ``ext_qx``/``ext_qy`` are the extents of the extended window
    (original window grown by the inner validity region extents).
    """
    extended = window_query_node_accesses(levels, ext_qx, ext_qy, universe_area)
    contained = contained_node_accesses(levels, qx, qy, universe_area)
    return max(1.0, extended - contained)


def location_window_query_node_accesses(levels: Sequence[LevelStats],
                                        qx: float, qy: float,
                                        ext_qx: float, ext_qy: float,
                                        universe_area: float) -> float:
    """Expected total NA of a location-based window query (both steps)."""
    return (window_query_node_accesses(levels, qx, qy, universe_area)
            + marginal_query_node_accesses(levels, qx, qy, ext_qx, ext_qy,
                                           universe_area))


def knn_query_node_accesses(levels: Sequence[LevelStats], k: int, n: int,
                            universe_area: float) -> float:
    """Expected NA of a best-first kNN query [HS99] on uniform data.

    The optimal algorithm reads exactly the nodes whose MBRs intersect
    the disk around the query with the k-th neighbour's radius,
    ``d_k = sqrt(k / (pi * density))``.  A node of extents (sx, sy)
    intersects that disk with probability given by the area of its
    Minkowski sum with the disk [BBKK97-style estimate].
    """
    if k < 1 or n < 1:
        raise ValueError("k and n must be positive")
    if universe_area <= 0:
        raise ValueError("universe area must be positive")
    density = n / universe_area
    d_k = math.sqrt(k / (math.pi * density))
    total = 1.0  # the root
    root_level = max((s.level for s in levels), default=0)
    for stats in levels:
        if stats.level == root_level:
            continue
        minkowski = (stats.avg_extent_x * stats.avg_extent_y
                     + 2.0 * d_k * (stats.avg_extent_x + stats.avg_extent_y)
                     + math.pi * d_k * d_k)
        total += stats.num_nodes * min(1.0, minkowski / universe_area)
    return total


def _check(qx: float, qy: float, universe_area: float) -> None:
    if qx < 0 or qy < 0:
        raise ValueError("window extents must be non-negative")
    if universe_area <= 0:
        raise ValueError("universe area must be positive")
