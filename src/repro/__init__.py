"""repro — Location-based Spatial Queries (SIGMOD 2003), reproduced.

A mobile client issuing nearest-neighbour or window queries with
respect to its own position can avoid most server round-trips if the
server returns, together with each result, a **validity region**: the
area within which the result provably stays the same.  This library
implements the full system of the paper:

>>> from repro import LocationServer, MobileClient, uniform_points
>>> server = LocationServer.from_points(uniform_points(10_000, seed=1))
>>> client = MobileClient(server)
>>> nearest = client.knn((0.5, 0.5), k=1)
>>> nearest == client.knn((0.5001, 0.5001), k=1)  # served from cache
True

See README.md for the architecture and EXPERIMENTS.md for the
reproduction of every figure of the paper's evaluation.
"""

from repro.geometry import ConvexPolygon, HalfPlane, Point, Rect, RectilinearRegion
from repro.index import RStarTree, bulk_load_str
from repro.queries import nearest_neighbors, tp_knn, tp_nn, tp_window, window_query
from repro.core import (
    KNNRequest,
    LocationServer,
    MobileClient,
    ProbKNNRequest,
    QueryBudget,
    QueryResponse,
    QuerySemantics,
    RKNNRequest,
    RangeRequest,
    WindowRequest,
    check_semantics,
    compute_nn_validity,
    compute_range_validity,
    compute_window_validity,
    query_semantics,
    register_query_type,
    registered_query_kinds,
)
from repro.analysis import (
    MinskewHistogram,
    expected_nn_validity_area,
    expected_window_validity_area,
)
from repro.datasets import (
    make_greece_like,
    make_north_america_like,
    uniform_points,
)
from repro.mobility import (
    random_walk,
    random_waypoint,
    simulate_knn_protocols,
    simulate_window_protocols,
)
from repro.kernel import ExecutionConfig, available_kernels
from repro.obs import (
    EventLog,
    ObservabilityServer,
    PhaseProfiler,
    SLOConfig,
    SLOEngine,
    TraceContext,
    chrome_trace,
    current_trace,
    new_trace_id,
    prometheus_text,
    span_tree,
    start_trace,
    write_chrome_trace,
)
from repro.service import (
    AdmissionConfig,
    AdmissionRejectedError,
    CacheConfig,
    ClientFleet,
    ContinuousConfig,
    FleetConfig,
    MetricsRegistry,
    QueryService,
    ReplicaConfig,
    ReplicaSet,
    ResilienceConfig,
    RetryBudgetConfig,
    ServedResponse,
    ShardedServer,
    Subscription,
    SubscriptionUpdate,
    TailSamplingConfig,
    ValidityCache,
    build_service,
)

__version__ = "1.7.0"

#: The canonical public surface (docs/API.md documents every name;
#: ``python -m repro.service.checkapi`` fails CI when the two drift).
__all__ = [
    "Point",
    "Rect",
    "HalfPlane",
    "ConvexPolygon",
    "RectilinearRegion",
    "RStarTree",
    "bulk_load_str",
    "nearest_neighbors",
    "window_query",
    "tp_nn",
    "tp_knn",
    "tp_window",
    "LocationServer",
    "MobileClient",
    "KNNRequest",
    "WindowRequest",
    "RangeRequest",
    "RKNNRequest",
    "ProbKNNRequest",
    "QueryBudget",
    "QueryResponse",
    "QuerySemantics",
    "register_query_type",
    "query_semantics",
    "registered_query_kinds",
    "check_semantics",
    "compute_nn_validity",
    "compute_window_validity",
    "compute_range_validity",
    "MinskewHistogram",
    "expected_nn_validity_area",
    "expected_window_validity_area",
    "uniform_points",
    "make_greece_like",
    "make_north_america_like",
    "random_waypoint",
    "random_walk",
    "simulate_knn_protocols",
    "simulate_window_protocols",
    "QueryService",
    "ResilienceConfig",
    "MetricsRegistry",
    "ClientFleet",
    "FleetConfig",
    "build_service",
    "ShardedServer",
    "ReplicaSet",
    "ReplicaConfig",
    "ServedResponse",
    "AdmissionConfig",
    "AdmissionRejectedError",
    "RetryBudgetConfig",
    "ValidityCache",
    "CacheConfig",
    "ContinuousConfig",
    "Subscription",
    "SubscriptionUpdate",
    "ExecutionConfig",
    "available_kernels",
    "TraceContext",
    "start_trace",
    "current_trace",
    "new_trace_id",
    "EventLog",
    "ObservabilityServer",
    "prometheus_text",
    "chrome_trace",
    "write_chrome_trace",
    "span_tree",
    "SLOConfig",
    "SLOEngine",
    "PhaseProfiler",
    "TailSamplingConfig",
    "__version__",
]
