"""Competitor techniques the paper surveys (Section 2).

* :mod:`repro.baselines.naive` — re-query the server on every position
  update (the conventional approach the paper's introduction criticizes).
* :mod:`repro.baselines.voronoi` — Zheng & Lee [ZL01]: a pre-computed
  Voronoi diagram on the server and conservative validity *times* from
  a maximum client speed.  Also hosts the from-scratch Voronoi / order-k
  cell construction used as ground truth in the test-suite.
* :mod:`repro.baselines.sr01` — Song & Roussopoulos [SR01]: ship m > k
  neighbours and re-answer locally while
  ``2 * dist(q, q') <= dist(m) - dist(k)``.
* :mod:`repro.baselines.tp_baseline` — time-parameterized queries
  [TP02] for clients with known, piecewise-constant velocity.
"""

from repro.baselines.naive import NaiveClient
from repro.baselines.voronoi import (
    VoronoiBaselineServer,
    VoronoiClient,
    order_k_voronoi_cell,
    voronoi_cell,
    voronoi_cell_indexed,
)
from repro.baselines.sr01 import SR01Client, SR01Server
from repro.baselines.tp_baseline import TPClient

__all__ = [
    "NaiveClient",
    "VoronoiBaselineServer",
    "VoronoiClient",
    "voronoi_cell",
    "voronoi_cell_indexed",
    "order_k_voronoi_cell",
    "SR01Server",
    "SR01Client",
    "TPClient",
]
