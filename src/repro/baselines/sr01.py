"""The Song & Roussopoulos [SR01] moving-kNN technique.

The server answers a kNN query with ``m > k`` neighbours.  At a new
location ``q'`` the cached superset is guaranteed to contain the true
k nearest neighbours as long as

    2 * dist(q, q') <= dist(m) - dist(k),

where ``dist(i)`` is the distance of the i-th cached neighbour from the
original query point ``q``.  The client then re-ranks the ``m`` cached
points locally.  The paper's critique: a good ``m`` is hard to choose —
too large wastes network and client memory, too small saves nothing.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.geometry import Point, distance_sq
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.nn import Neighbor, nearest_neighbors
from repro.core.validity import POINT_BYTES


class SR01Server:
    """Answers kNN queries with an ``m``-neighbour superset."""

    def __init__(self, tree: RStarTree):
        self.tree = tree
        self.queries_processed = 0

    def query(self, location, k: int, m: int) -> List[Neighbor]:
        if m < k:
            raise ValueError("m must be at least k")
        self.queries_processed += 1
        return nearest_neighbors(self.tree, location, k=m)


class SR01Client:
    """Client-side caching per [SR01]."""

    def __init__(self, server: SR01Server, k: int, m: int):
        if m < k:
            raise ValueError("m must be at least k")
        self.server = server
        self.k = k
        self.m = m
        self.position_updates = 0
        self.server_queries = 0
        self.cache_answers = 0
        self.bytes_received = 0
        self._anchor: Optional[Point] = None
        self._cached: List[Neighbor] = []
        self._slack: float = -math.inf  # (dist(m) - dist(k)) / 2

    def knn(self, location) -> List[LeafEntry]:
        """The k nearest neighbours at ``location``, nearest first."""
        self.position_updates += 1
        location = Point(float(location[0]), float(location[1]))
        if (self._anchor is not None
                and location.distance_to(self._anchor) <= self._slack):
            self.cache_answers += 1
            return self._rank(location)
        result = self.server.query(location, self.k, self.m)
        self.server_queries += 1
        self.bytes_received += POINT_BYTES * len(result)
        self._anchor = location
        self._cached = result
        if len(result) >= self.m and self.m > self.k:
            self._slack = (result[self.m - 1].dist - result[self.k - 1].dist) / 2.0
        else:
            self._slack = -math.inf  # dataset smaller than m: no guarantee
        return self._rank(location)

    def _rank(self, location: Point) -> List[LeafEntry]:
        ranked = sorted(self._cached,
                        key=lambda n: distance_sq((n.entry.x, n.entry.y), location))
        return [n.entry for n in ranked[:self.k]]
