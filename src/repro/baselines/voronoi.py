"""Voronoi cells and the Zheng & Lee [ZL01] baseline.

Provides order-k Voronoi cell construction *from first principles*
(iterated half-plane clipping).  ``voronoi_cell`` is the O(n) exact
version used as ground truth in tests; ``voronoi_cell_indexed`` prunes
candidates through the R*-tree with the classic doubling argument: once
the cell built from the ``m`` nearest sites has circumradius ``R`` and
the ``(m+1)``-th site is farther than ``2R``, no farther site can cut
the cell, because a cutting bisector must pass within distance ``R`` of
the cell's site.

The [ZL01] baseline pre-computes every cell and answers a moving NN
query with the current neighbour plus a conservative validity *time*
``T = dist(q, cell boundary) / v_max`` (the paper's Figure 4): correct
only under the assumed maximum speed, and k = 1 only — the limitations
that motivate the paper.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.geometry import ConvexPolygon, Point, Rect, bisector_halfplane
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.nn import nearest_neighbors


def voronoi_cell(sites: Sequence, index: int, universe: Rect,
                 eps: float = 0.0) -> ConvexPolygon:
    """Exact Voronoi cell of ``sites[index]``, clipped to the universe."""
    site = sites[index]
    poly = ConvexPolygon.from_rect(universe)
    for j, other in enumerate(sites):
        if j == index:
            continue
        poly = poly.clip(bisector_halfplane(site, other), eps=eps)
        if poly.is_empty:
            break
    return poly


def order_k_voronoi_cell(result: Sequence, others: Sequence, universe: Rect,
                         eps: float = 0.0) -> ConvexPolygon:
    """Exact order-k Voronoi cell of the set ``result``.

    The cell is the locus of points whose k nearest sites are exactly
    ``result``: the intersection, over every (o in result, a in others),
    of the half-plane closer to ``o`` than to ``a``.
    """
    poly = ConvexPolygon.from_rect(universe)
    for o in result:
        for a in others:
            poly = poly.clip(bisector_halfplane(o, a), eps=eps)
            if poly.is_empty:
                return poly
    return poly


def voronoi_cell_indexed(tree: RStarTree, site: LeafEntry, universe: Rect,
                         initial_candidates: int = 16,
                         eps: float = 0.0) -> ConvexPolygon:
    """Voronoi cell of a stored point using the index for candidates."""
    m = initial_candidates
    total = len(tree)
    center = (site.x, site.y)
    while True:
        m = min(m, total)
        candidates = nearest_neighbors(tree, center, k=m)
        poly = ConvexPolygon.from_rect(universe)
        for neighbor in candidates:
            if neighbor.entry.oid == site.oid:
                continue
            poly = poly.clip(
                bisector_halfplane(center, (neighbor.entry.x, neighbor.entry.y)),
                eps=eps)
        if poly.is_empty:
            return poly
        if m >= total:
            return poly
        radius = max(math.dist(center, v) for v in poly.vertices)
        if candidates[-1].dist > 2.0 * radius:
            return poly
        m *= 2


class VoronoiBaselineServer:
    """[ZL01]: pre-computed Voronoi cells, validity expressed as time."""

    def __init__(self, tree: RStarTree, universe: Optional[Rect] = None):
        self.tree = tree
        self.universe = universe if universe is not None else tree.root.mbr
        self._cells: Dict[int, ConvexPolygon] = {}
        self.queries_processed = 0

    def precompute(self) -> None:
        """Materialize every cell (the [ZL01] preprocessing step)."""
        for entry in list(self.tree.points()):
            self._cells[entry.oid] = voronoi_cell_indexed(
                self.tree, entry, self.universe)

    def cell_of(self, oid: int) -> ConvexPolygon:
        if oid not in self._cells:
            raise KeyError(f"cell of object {oid} not precomputed")
        return self._cells[oid]

    def query(self, location, v_max: float) -> Tuple[LeafEntry, float]:
        """Nearest neighbour + conservative validity time.

        ``T`` is the earliest instant a client moving at up to ``v_max``
        could cross the cell boundary.
        """
        if v_max <= 0.0:
            raise ValueError("v_max must be positive")
        self.queries_processed += 1
        nearest = nearest_neighbors(self.tree, location, k=1)[0].entry
        cell = self.cell_of(nearest.oid)
        boundary_dist = _distance_to_boundary(cell, location)
        return nearest, boundary_dist / v_max


class VoronoiClient:
    """Client of the [ZL01] server; validity checked against elapsed time."""

    def __init__(self, server: VoronoiBaselineServer, v_max: float):
        self.server = server
        self.v_max = v_max
        self.position_updates = 0
        self.server_queries = 0
        self.cache_answers = 0
        self._expiry: float = -math.inf
        self._cached: Optional[LeafEntry] = None

    def nn(self, location, now: float) -> LeafEntry:
        """The nearest neighbour at ``location`` and wall-clock ``now``."""
        self.position_updates += 1
        if self._cached is not None and now < self._expiry:
            self.cache_answers += 1
            return self._cached
        nearest, validity = self.server.query(location, self.v_max)
        self.server_queries += 1
        self._cached = nearest
        self._expiry = now + validity
        return nearest


def _distance_to_boundary(poly: ConvexPolygon, location) -> float:
    """Distance from an interior point to the polygon boundary (0 outside)."""
    if poly.is_empty or not poly.contains(location):
        return 0.0
    verts = poly.vertices
    best = math.inf
    for i, a in enumerate(verts):
        b = verts[(i + 1) % len(verts)]
        best = min(best, _point_segment_distance(location, a, b))
    return best


def _point_segment_distance(p, a: Point, b: Point) -> float:
    ax, ay, bx, by = a.x, a.y, b.x, b.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.dist((p[0], p[1]), (ax, ay))
    t = ((p[0] - ax) * dx + (p[1] - ay) * dy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    return math.dist((p[0], p[1]), (ax + t * dx, ay + t * dy))
