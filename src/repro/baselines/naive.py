"""The conventional approach: a fresh server query per position update."""

from __future__ import annotations

from typing import List

from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.geometry import Rect
from repro.queries.nn import nearest_neighbors
from repro.core.validity import POINT_BYTES


class NaiveClient:
    """Re-queries the server on every update (no validity information)."""

    def __init__(self, tree: RStarTree):
        self.tree = tree
        self.position_updates = 0
        self.server_queries = 0
        self.cache_answers = 0
        self.bytes_received = 0

    def knn(self, location, k: int = 1) -> List[LeafEntry]:
        self.position_updates += 1
        self.server_queries += 1
        result = [n.entry for n in nearest_neighbors(self.tree, location, k=k)]
        self.bytes_received += POINT_BYTES * len(result)
        return result

    def window(self, focus, width: float, height: float) -> List[LeafEntry]:
        self.position_updates += 1
        self.server_queries += 1
        result = self.tree.window(Rect.around(focus, width, height))
        self.bytes_received += POINT_BYTES * len(result)
        return result
