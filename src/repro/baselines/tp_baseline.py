"""Time-parameterized baseline [TP02] for velocity-aware clients.

When the client's velocity is known and constant, the server can return
the result together with its expiry time ``T`` and the objects causing
the change.  The catch — and the paper's motivation — is that ``T``
becomes worthless the moment the client turns or changes speed, so the
client must re-query at every velocity change as well as at every
expiry.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.nn import nearest_neighbors
from repro.queries.tp import tp_knn, tp_window
from repro.core.validity import POINT_BYTES


class TPClient:
    """kNN / window client using TP queries; velocity must be supplied."""

    def __init__(self, tree: RStarTree):
        self.tree = tree
        self.position_updates = 0
        self.server_queries = 0
        self.cache_answers = 0
        self.bytes_received = 0
        self._nn_cache: Optional[Tuple[float, Tuple[float, float], List[LeafEntry]]] = None
        self._win_cache: Optional[Tuple[float, Tuple[float, float], List[LeafEntry]]] = None

    def knn(self, location, velocity, now: float, k: int = 1) -> List[LeafEntry]:
        """kNN at ``location``; ``velocity`` is the client's current vector."""
        self.position_updates += 1
        cached = self._nn_cache
        if cached is not None:
            expiry, vel, result = cached
            if vel == tuple(velocity) and now < expiry:
                self.cache_answers += 1
                return list(result)
        speed = math.hypot(velocity[0], velocity[1])
        result = [n.entry for n in nearest_neighbors(self.tree, location, k=k)]
        self.server_queries += 1
        self.bytes_received += POINT_BYTES * (len(result) + 1)  # + change obj
        if speed == 0.0:
            expiry = math.inf
        else:
            event = tp_knn(self.tree, location,
                           (velocity[0] / speed, velocity[1] / speed), result)
            expiry = now + event.time / speed  # TP time is travelled distance
        self._nn_cache = (expiry, tuple(velocity), result)
        return list(result)

    def window(self, focus, width: float, height: float,
               velocity, now: float) -> List[LeafEntry]:
        """Window result at ``focus`` for a client moving with ``velocity``."""
        self.position_updates += 1
        cached = self._win_cache
        if cached is not None:
            expiry, vel, result = cached
            if vel == tuple(velocity) and now < expiry:
                self.cache_answers += 1
                return list(result)
        rect = Rect.around(focus, width, height)
        result = self.tree.window(rect)
        self.server_queries += 1
        self.bytes_received += POINT_BYTES * (len(result) + 1)
        if velocity[0] == 0.0 and velocity[1] == 0.0:
            expiry = math.inf
        else:
            event = tp_window(self.tree, rect, velocity)
            expiry = now + event.time
        self._win_cache = (expiry, tuple(velocity), result)
        return list(result)
