"""Execution strategy selection: one typed knob for backend + kernel.

:class:`ExecutionConfig` is the single place callers pick *how* queries
execute — which shard fan-out backend carries the scatter-gather
(``thread`` or ``process``) and which geometry kernel evaluates the
candidate sets (``scalar``, ``soa``, ``numpy``, or ``auto``).  It is
accepted by :func:`repro.service.service.build_service`,
:class:`repro.service.shard.ShardedServer`, and the CLI
(``--backend`` / ``--kernel``), replacing the ad-hoc ``max_workers``
kwargs that used to thread through the service/shard layers.

Kernel resolution is dynamic: ``auto`` picks the numpy kernel when
numpy imports (and ``REPRO_KERNEL_DISABLE_NUMPY`` is unset) and falls
back to the pure-stdlib SoA kernel otherwise, so the same configuration
runs unchanged on machines without numpy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "BACKENDS",
    "KERNELS",
    "ExecutionConfig",
    "numpy_enabled",
    "resolve_kernel_name",
]

#: Shard fan-out backends: ``thread`` (the GIL-bound latency-overlap
#: pool) and ``process`` (true CPU parallelism over pre-loaded workers).
BACKENDS = ("thread", "process")

#: Geometry kernels: ``scalar`` is the paper's one-object-at-a-time
#: R*-tree path, ``soa``/``numpy`` are the columnar batch kernels,
#: ``auto`` resolves to the fastest available columnar kernel.
KERNELS = ("auto", "scalar", "soa", "numpy")

#: Set (to anything but ``0``) to pretend numpy is not installed —
#: exercises the stdlib fallback path in CI.
DISABLE_NUMPY_ENV = "REPRO_KERNEL_DISABLE_NUMPY"


def numpy_enabled() -> bool:
    """Whether the numpy kernel may be used *right now*.

    Checked dynamically (not cached at import) so tests and CI jobs can
    flip :data:`DISABLE_NUMPY_ENV` per run.
    """
    if os.environ.get(DISABLE_NUMPY_ENV, "") not in ("", "0"):
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_kernel_name(name: str) -> str:
    """Resolve a kernel request to a concrete kernel name.

    ``auto`` becomes ``numpy`` when available, else ``soa``; asking for
    ``numpy`` explicitly when it cannot be used raises.
    """
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNELS}")
    if name == "auto":
        return "numpy" if numpy_enabled() else "soa"
    if name == "numpy" and not numpy_enabled():
        raise RuntimeError(
            "numpy kernel requested but numpy is unavailable "
            f"(or disabled via {DISABLE_NUMPY_ENV}); use kernel='auto' "
            "to fall back to the stdlib SoA kernel")
    return name


@dataclass(frozen=True)
class ExecutionConfig:
    """How queries execute: fan-out backend, geometry kernel, pool width.

    * ``backend`` — ``"thread"`` overlaps per-shard latency on a
      :class:`~concurrent.futures.ThreadPoolExecutor`; ``"process"``
      scatters struct-packed request frames to a pool of worker
      processes that each hold pre-deserialized copies of every shard's
      R*-tree (real CPU parallelism, at an IPC cost per query).  With a
      single-tree server (``shards=1``) the backend is moot and
      ``process`` is treated as ``thread``.
    * ``kernel`` — the geometry kernel of :mod:`repro.kernel.backends`;
      see :data:`KERNELS`.  Columnar kernels answer kNN/TPNN from an
      in-memory struct-of-arrays snapshot with **zero simulated node
      accesses**, so the paper's I/O accounting (and node-access
      budgets) only meter the ``scalar`` kernel — the default.
    * ``workers`` — pool width; ``None`` sizes it to
      ``min(num_shards, cpu_count)``.
    """

    backend: str = "thread"
    kernel: str = "scalar"
    workers: Optional[int] = None

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {KERNELS}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive (or None)")

    def resolved_kernel(self) -> str:
        """The concrete kernel name this configuration runs with."""
        return resolve_kernel_name(self.kernel)
