"""Struct-of-arrays snapshot of a point dataset.

The columnar kernels evaluate whole candidate sets at once, which wants
the dataset as parallel coordinate arrays rather than a tree of
:class:`~repro.index.entry.LeafEntry` objects.  :class:`PointColumns`
is that snapshot: ``xs``/``ys``/``oids`` as stdlib ``array`` columns
(zero-copy viewable as numpy arrays), plus the original entries so
results materialize as the same ``LeafEntry`` objects the scalar path
returns.

Snapshots are immutable; :class:`~repro.core.server.LocationServer`
caches one per dataset epoch and rebuilds it after updates.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List

from repro.index.entry import LeafEntry

__all__ = ["PointColumns"]


class PointColumns:
    """Immutable SoA view over a sequence of leaf entries."""

    __slots__ = ("entries", "xs", "ys", "oids", "_np")

    def __init__(self, entries: Iterable[LeafEntry]):
        self.entries: List[LeafEntry] = list(entries)
        self.xs = array("d", (e.x for e in self.entries))
        self.ys = array("d", (e.y for e in self.entries))
        #: Signed 64-bit so any Python-int oid the index accepts fits.
        self.oids = array("q", (e.oid for e in self.entries))
        self._np = None

    @classmethod
    def from_tree(cls, tree) -> "PointColumns":
        """Snapshot every leaf entry of an R*-tree (no node accesses
        are charged: this is server-side memory, not simulated I/O)."""
        return cls(tree.points())

    def __len__(self) -> int:
        return len(self.entries)

    def as_numpy(self):
        """``(xs, ys, oids)`` as numpy arrays sharing the column buffers.

        Cached after the first call; raises ``ImportError`` when numpy
        is unavailable (callers gate on the kernel's availability).
        """
        if self._np is None:
            import numpy as np
            self._np = (
                np.frombuffer(self.xs, dtype=np.float64),
                np.frombuffer(self.ys, dtype=np.float64),
                np.frombuffer(self.oids, dtype=np.int64),
            )
        return self._np
