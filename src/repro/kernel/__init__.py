"""Columnar geometry kernels and the execution-strategy surface.

``repro.kernel`` turns the paper's per-object hot paths into batch
evaluation over struct-of-arrays candidate sets, and defines
:class:`~repro.kernel.config.ExecutionConfig` — the one typed knob that
selects the shard fan-out backend (thread vs process) and the geometry
kernel (scalar vs SoA vs numpy) everywhere queries run.
"""

from repro.kernel.config import (
    BACKENDS,
    DISABLE_NUMPY_ENV,
    KERNELS,
    ExecutionConfig,
    numpy_enabled,
    resolve_kernel_name,
)
from repro.kernel.columns import PointColumns
from repro.kernel.backends import (
    NumpyKernel,
    ScalarKernel,
    SoAKernel,
    available_kernels,
    get_kernel,
)

__all__ = [
    "BACKENDS",
    "DISABLE_NUMPY_ENV",
    "KERNELS",
    "ExecutionConfig",
    "PointColumns",
    "ScalarKernel",
    "SoAKernel",
    "NumpyKernel",
    "available_kernels",
    "get_kernel",
    "numpy_enabled",
    "resolve_kernel_name",
]
