"""The geometry kernels: batch evaluation of whole candidate sets.

Three interchangeable kernels implement the hot geometric primitives of
the paper's query processing:

* :class:`ScalarKernel` — a marker for the seed behaviour: kNN and TPNN
  run one object at a time through the R*-tree (charging simulated node
  accesses); the kernel object itself computes nothing.
* :class:`SoAKernel` — pure-stdlib columnar fallback: brute-force
  evaluation over :class:`~repro.kernel.columns.PointColumns` using
  ``array`` columns and generator pipelines.  No dependencies, modest
  constant-factor wins, identical results.
* :class:`NumpyKernel` — the vectorized fast path: the same formulas
  over whole columns in a handful of numpy array operations.

The columnar kernels answer from an in-memory snapshot, so they charge
**zero** simulated node accesses — they trade the paper's I/O model for
CPU throughput, which is exactly the ablation the kernel benchmarks
measure.  Formulas and tie rules mirror the scalar implementations
(:mod:`repro.queries.nn`, :mod:`repro.queries.tp`) so all kernels
return identical results up to floating-point ties:

* kNN candidates are ordered by ``(dist², oid)``;
* a TPNN influence time is ``t = (|q-p|² - |q-o|²) / (2 v·(p-o))``,
  defined for ``v·(p-o) > 0``, clamped at 0, minimized per candidate
  over the result set in result order (strict ``<``, first wins);
* exact-time ties between candidates prefer objects not already known
  to the caller (``prefer_new``), matching the tree traversal's
  completeness tie-break.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Set, Tuple

from repro.index.entry import LeafEntry
from repro.kernel.columns import PointColumns
from repro.kernel.config import resolve_kernel_name
from repro.queries.tp import TPEvent

__all__ = [
    "ScalarKernel",
    "SoAKernel",
    "NumpyKernel",
    "get_kernel",
    "available_kernels",
]

#: First probe-subset size and the growth factor between escalation
#: levels.  Influence events are local — the winning candidate at time
#: ``t`` provably lies within ``d_k + 2t`` of the query — so probes
#: almost always resolve inside the innermost level.
_SUBSET_BASE = 64
_SUBSET_GROWTH = 8


def _numpy_or_none():
    from repro.kernel.config import numpy_enabled
    if not numpy_enabled():
        return None
    import numpy as np
    return np


class ScalarKernel:
    """The seed path: per-object tree traversal, no batch evaluation."""

    name = "scalar"
    #: Columnar kernels answer kNN/TPNN from a PointColumns snapshot;
    #: the scalar kernel leaves both to the R*-tree algorithms.
    columnar = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SoAKernel:
    """Pure-stdlib columnar kernel (``array``-based, no numpy)."""

    name = "soa"
    columnar = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"

    # ------------------------------------------------------------------
    # kNN over columns
    # ------------------------------------------------------------------
    def knn(self, columns: PointColumns, qx: float, qy: float,
            k: int) -> List[Tuple[float, LeafEntry]]:
        """The ``k`` nearest entries as ``(dist², entry)``, closest first."""
        xs, ys, oids = columns.xs, columns.ys, columns.oids
        best = heapq.nsmallest(
            k, (((xs[i] - qx) ** 2 + (ys[i] - qy) ** 2, oids[i], i)
                for i in range(len(columns))))
        return [(d2, columns.entries[i]) for d2, _oid, i in best]

    def distances_sq(self, columns: PointColumns, qx: float,
                     qy: float) -> List[float]:
        """Squared distances of every column entry to ``(qx, qy)``."""
        xs, ys = columns.xs, columns.ys
        return [(x - qx) ** 2 + (y - qy) ** 2 for x, y in zip(xs, ys)]

    # ------------------------------------------------------------------
    # TPNN influence times over columns
    # ------------------------------------------------------------------
    def tp_context(self, columns: PointColumns, qx: float, qy: float,
                   result: Sequence[LeafEntry]) -> "SoAProbeContext":
        """A reusable probe context for one ``(query, result)`` pair.

        The influence-set retrieval fires dozens of TP probes from the
        same query point against the same result set; the context
        amortizes everything direction-independent (distances to the
        query, the near-subset candidate levels) across all of them.
        """
        return SoAProbeContext(columns, qx, qy, result)

    def tp_knn(self, columns: PointColumns, qx: float, qy: float,
               vx: float, vy: float, result: Sequence[LeafEntry],
               prefer_new: Optional[Set[int]] = None) -> TPEvent:
        """First influence event along ``v`` (one-shot convenience)."""
        return self.tp_context(columns, qx, qy, result).probe(
            vx, vy, prefer_new)

    # ------------------------------------------------------------------
    # batch MINDIST and halfplane primitives
    # ------------------------------------------------------------------
    def mindist_sq(self, rects: Sequence, qx: float,
                   qy: float) -> List[float]:
        """Squared MINDIST of ``(qx, qy)`` to every rectangle."""
        out = []
        for r in rects:
            dx = (r.xmin - qx) if qx < r.xmin else (
                (qx - r.xmax) if qx > r.xmax else 0.0)
            dy = (r.ymin - qy) if qy < r.ymin else (
                (qy - r.ymax) if qy > r.ymax else 0.0)
            out.append(dx * dx + dy * dy)
        return out

    def halfplane_margins(self, halfplane, xs: Sequence[float],
                          ys: Sequence[float]) -> List[float]:
        """Signed distances of a point batch to a halfplane boundary
        (negative inside, matching ``HalfPlane.signed_distance``)."""
        a, b, c = halfplane
        return [a * x + b * y - c for x, y in zip(xs, ys)]

    def polygon_contains(self, vertices: Sequence, xs: Sequence[float],
                         ys: Sequence[float], eps: float = 0.0
                         ) -> List[bool]:
        """Batch point-in-convex-polygon (CCW vertices, closed edges)."""
        n = len(vertices)
        if n < 3:
            return [False] * len(xs)
        inside = [True] * len(xs)
        for i in range(n):
            v1 = vertices[i]
            v2 = vertices[(i + 1) % n]
            ex, ey = v2.x - v1.x, v2.y - v1.y
            for j in range(len(xs)):
                if inside[j]:
                    cross = ex * (ys[j] - v1.y) - ey * (xs[j] - v1.x)
                    if cross < -eps:
                        inside[j] = False
        return inside


class SoAProbeContext:
    """Direction-independent TP-probe state over columns (pure stdlib).

    Soundness of the near-subset pruning: a candidate ``p`` whose
    influence event against result member ``o`` fires at time ``t``
    has the moving query ``m = q + t v`` on its bisector with ``o``,
    so ``|p - m| = |o - m| <= |o - q| + t <= d_k + t`` and hence
    ``|p - q| <= d_k + 2 t`` (an event clamped to ``t = 0`` satisfies
    ``|p - q| <= d_k`` outright).  Therefore once a candidate level of
    radius ``R`` yields an event at time ``t`` with
    ``d_k + 2 t < R``, every point that could beat *or tie* it lies
    strictly inside the level and the subset answer is exact; otherwise
    the probe escalates to the next level, ultimately the full column.
    """

    __slots__ = ("columns", "qx", "qy", "result", "_d2", "_d_k",
                 "_result_oids", "_levels", "_sizes")

    def __init__(self, columns: PointColumns, qx: float, qy: float,
                 result: Sequence[LeafEntry]):
        self.columns = columns
        self.qx = qx
        self.qy = qy
        self.result = list(result)
        self._result_oids = {e.oid for e in self.result}
        xs, ys = columns.xs, columns.ys
        self._d2 = [(x - qx) ** 2 + (y - qy) ** 2
                    for x, y in zip(xs, ys)]
        self._d_k = math.sqrt(max(
            ((e.x - qx) ** 2 + (e.y - qy) ** 2 for e in self.result),
            default=0.0))
        n = len(columns)
        sizes = []
        m = _SUBSET_BASE
        while m < n:
            sizes.append(m)
            m *= _SUBSET_GROWTH
        sizes.append(n)
        self._sizes = sizes
        self._levels: List = [None] * len(sizes)

    def _level(self, li: int):
        """``(rows, radius)`` for level ``li``, built lazily and cached.

        ``rows`` holds ``(x, y, dist², index)`` for the level's
        candidates in column order, result members already excluded.
        """
        level = self._levels[li]
        if level is None:
            m = self._sizes[li]
            n = len(self.columns)
            if m >= n:
                idx: Sequence[int] = range(n)
                radius = math.inf
            else:
                smallest = heapq.nsmallest(
                    m, ((d2, i) for i, d2 in enumerate(self._d2)))
                radius = math.sqrt(smallest[-1][0])
                idx = sorted(i for _d2, i in smallest)
            xs, ys, oids = self.columns.xs, self.columns.ys, self.columns.oids
            d2 = self._d2
            rows = [(xs[i], ys[i], d2[i], i) for i in idx
                    if oids[i] not in self._result_oids]
            level = (rows, radius)
            self._levels[li] = level
        return level

    def probe(self, vx: float, vy: float,
              prefer_new: Optional[Set[int]] = None) -> TPEvent:
        """First influence event along direction ``(vx, vy)``."""
        norm = math.hypot(vx, vy)
        if norm == 0.0:
            raise ValueError("TP query direction must be non-zero")
        vx /= norm
        vy /= norm
        known = prefer_new or frozenset()
        qx, qy = self.qx, self.qy
        res_info = [((e.x - qx) ** 2 + (e.y - qy) ** 2,
                     vx * e.x + vy * e.y, e) for e in self.result]
        oids = self.columns.oids
        entries = self.columns.entries
        best_time = math.inf
        best_i = -1
        best_pair: Optional[LeafEntry] = None
        for li in range(len(self._sizes)):
            rows, radius = self._level(li)
            best_time = math.inf
            best_i = -1
            best_pair = None
            for x, y, p_dist_sq, i in rows:
                v_dot_p = vx * x + vy * y
                t_best, pair = math.inf, None
                for o_dist_sq, v_dot_o, o in res_info:
                    den = 2.0 * (v_dot_p - v_dot_o)
                    if den <= 0.0:
                        continue
                    t = (p_dist_sq - o_dist_sq) / den
                    if t < 0.0:
                        t = 0.0
                    if t < t_best:
                        t_best, pair = t, o
                if pair is None:
                    continue
                wins = t_best < best_time or (
                    t_best == best_time
                    and best_i >= 0
                    and oids[best_i] in known
                    and oids[i] not in known)
                if wins:
                    best_time = t_best
                    best_i = i
                    best_pair = pair
            if (best_pair is not None
                    and self._d_k + 2.0 * best_time < radius):
                return TPEvent(best_time, entries[best_i], best_pair)
        if best_pair is None:
            return TPEvent(math.inf, None, None)
        return TPEvent(best_time, entries[best_i], best_pair)


class NumpyProbeContext:
    """Vectorized direction-independent TP-probe state (numpy).

    Same level/escalation scheme and soundness bound as
    :class:`SoAProbeContext`; each probe costs a handful of array
    operations over the innermost level that proves the bound.
    """

    __slots__ = ("np", "columns", "qx", "qy", "result", "_d2", "_d_k",
                 "_o_d2", "_ox", "_oy", "_excluded", "_levels", "_sizes")

    def __init__(self, np, columns: PointColumns, qx: float, qy: float,
                 result: Sequence[LeafEntry]):
        self.np = np
        self.columns = columns
        self.qx = qx
        self.qy = qy
        self.result = list(result)
        xs, ys, oids = columns.as_numpy()
        dx = xs - qx
        dy = ys - qy
        self._d2 = dx * dx + dy * dy
        k = len(self.result)
        self._ox = np.fromiter((e.x for e in self.result), dtype=float,
                               count=k)
        self._oy = np.fromiter((e.y for e in self.result), dtype=float,
                               count=k)
        self._o_d2 = (self._ox - qx) ** 2 + (self._oy - qy) ** 2
        self._d_k = math.sqrt(float(self._o_d2.max())) if k else 0.0
        result_ids = np.fromiter((e.oid for e in self.result),
                                 dtype=np.int64, count=k)
        self._excluded = np.isin(oids, result_ids)
        n = len(columns)
        sizes = []
        m = _SUBSET_BASE
        while m < n:
            sizes.append(m)
            m *= _SUBSET_GROWTH
        sizes.append(n)
        self._sizes = sizes
        self._levels: List = [None] * len(sizes)

    def _level(self, li: int):
        """``(idx, xs, ys, dist², oids, excluded, radius)`` arrays for
        level ``li``, gathered once and cached (column order)."""
        level = self._levels[li]
        if level is None:
            np = self.np
            m = self._sizes[li]
            n = len(self.columns)
            xs, ys, oids = self.columns.as_numpy()
            if m >= n:
                idx = np.arange(n)
                radius = math.inf
            else:
                idx = np.argpartition(self._d2, m - 1)[:m]
                idx.sort()
                radius = math.sqrt(float(self._d2[idx].max()))
            level = (idx, xs[idx], ys[idx], self._d2[idx], oids[idx],
                     self._excluded[idx], radius)
            self._levels[li] = level
        return level

    def probe(self, vx: float, vy: float,
              prefer_new: Optional[Set[int]] = None) -> TPEvent:
        """First influence event along direction ``(vx, vy)``."""
        np = self.np
        norm = math.hypot(vx, vy)
        if norm == 0.0:
            raise ValueError("TP query direction must be non-zero")
        if not self.result:
            return TPEvent(math.inf, None, None)
        vx /= norm
        vy /= norm
        known = prefer_new or frozenset()
        v_dot_o = vx * self._ox + vy * self._oy
        o_d2 = self._o_d2
        for li in range(len(self._sizes)):
            idx, xs_s, ys_s, p_d2, oid_s, excl, radius = self._level(li)
            if not idx.size:
                continue
            v_dot_p = vx * xs_s + vy * ys_s
            den = v_dot_p - v_dot_o[:, None]
            den += den
            bad = den <= 0.0
            np.copyto(den, 1.0, where=bad)
            t = p_d2 - o_d2[:, None]
            t /= den
            np.copyto(t, math.inf, where=bad)
            np.maximum(t, 0.0, out=t)
            best_t = t.min(axis=0)
            np.copyto(best_t, math.inf, where=excl)
            t_min = float(best_t.min())
            if not math.isfinite(t_min):
                continue  # no event this close — look farther out
            if self._d_k + 2.0 * t_min >= radius:
                continue  # not provably global — escalate
            ties = np.nonzero(best_t == t_min)[0]
            pick = int(ties[0])
            if ties.size > 1 and known:
                # Completeness tie-break of the tree traversal: a
                # not-yet-known influence object wins an exact-time tie.
                for s in ties:
                    if int(oid_s[s]) not in known:
                        pick = int(s)
                        break
            # argmin over the winning column returns the *first*
            # minimizing result index — the scalar strict-< rule in
            # result order.
            pair_j = int(np.argmin(t[:, pick]))
            return TPEvent(t_min, self.columns.entries[int(idx[pick])],
                           self.result[pair_j])
        return TPEvent(math.inf, None, None)


class NumpyKernel(SoAKernel):
    """Vectorized columnar kernel (requires numpy)."""

    name = "numpy"
    columnar = True

    def __init__(self):
        np = _numpy_or_none()
        if np is None:
            raise RuntimeError("numpy kernel constructed without numpy")
        self._np = np

    def tp_context(self, columns: PointColumns, qx: float, qy: float,
                   result: Sequence[LeafEntry]) -> NumpyProbeContext:
        return NumpyProbeContext(self._np, columns, qx, qy, result)

    def knn(self, columns: PointColumns, qx: float, qy: float,
            k: int) -> List[Tuple[float, LeafEntry]]:
        np = self._np
        n = len(columns)
        xs, ys, oids = columns.as_numpy()
        dx = xs - qx
        dy = ys - qy
        d2 = dx * dx + dy * dy
        if k < n:
            idx = np.argpartition(d2, k - 1)[:k] if k > 0 else []
        else:
            idx = np.arange(n)
        ordered = sorted(
            ((float(d2[i]), int(oids[i]), int(i)) for i in idx))
        return [(d, columns.entries[i]) for d, _oid, i in ordered]

    def distances_sq(self, columns: PointColumns, qx: float, qy: float):
        xs, ys, _oids = columns.as_numpy()
        dx = xs - qx
        dy = ys - qy
        return list(dx * dx + dy * dy)

    def mindist_sq(self, rects: Sequence, qx: float, qy: float):
        np = self._np
        n = len(rects)
        xmin = np.fromiter((r.xmin for r in rects), dtype=float, count=n)
        xmax = np.fromiter((r.xmax for r in rects), dtype=float, count=n)
        ymin = np.fromiter((r.ymin for r in rects), dtype=float, count=n)
        ymax = np.fromiter((r.ymax for r in rects), dtype=float, count=n)
        dx = np.maximum(xmin - qx, 0.0) + np.maximum(qx - xmax, 0.0)
        dy = np.maximum(ymin - qy, 0.0) + np.maximum(qy - ymax, 0.0)
        return list(dx * dx + dy * dy)

    def halfplane_margins(self, halfplane, xs, ys):
        np = self._np
        a, b, c = halfplane
        return list(a * np.asarray(xs, dtype=float)
                    + b * np.asarray(ys, dtype=float) - c)

    def polygon_contains(self, vertices: Sequence, xs, ys,
                         eps: float = 0.0):
        np = self._np
        n = len(vertices)
        px = np.asarray(xs, dtype=float)
        py = np.asarray(ys, dtype=float)
        if n < 3:
            return [False] * len(px)
        inside = np.ones(len(px), dtype=bool)
        for i in range(n):
            v1 = vertices[i]
            v2 = vertices[(i + 1) % n]
            cross = ((v2.x - v1.x) * (py - v1.y)
                     - (v2.y - v1.y) * (px - v1.x))
            inside &= cross >= -eps
        return list(inside)


def available_kernels() -> Tuple[str, ...]:
    """Concrete kernel names usable right now (`auto` excluded)."""
    names = ["scalar", "soa"]
    if _numpy_or_none() is not None:
        names.append("numpy")
    return tuple(names)


def get_kernel(spec=None):
    """Resolve ``spec`` to a kernel object.

    ``None`` means the scalar (seed) kernel; a string is resolved via
    :func:`repro.kernel.config.resolve_kernel_name` (so ``"auto"``
    picks numpy when available, else SoA); a kernel instance passes
    through unchanged.
    """
    if spec is None:
        return ScalarKernel()
    if not isinstance(spec, str):
        return spec
    name = resolve_kernel_name(spec)
    if name == "scalar":
        return ScalarKernel()
    if name == "soa":
        return SoAKernel()
    return NumpyKernel()
