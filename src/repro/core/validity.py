"""Client-side validity-region representations.

The paper requires the shipped representation to (i) be compact and
(ii) make the client-side validity check cheap.  For (k)NN queries the
server ships the influence *pairs* — each pair (result object,
influence object) encodes one bisector half-plane — and the client
checks membership in all half-planes (paper, Section 3.1).  For window
queries the server ships the conservative rectangle, a constant-size
payload.

Sizes are modelled with the paper's storage constants: a data point is
20 bytes (two 8-byte coordinates + 4-byte id), a rectangle 32 bytes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry import ConvexPolygon, HalfPlane, Rect, bisector_halfplane
from repro.index.entry import LeafEntry

POINT_BYTES = 20
RECT_BYTES = 32
#: Payload of a validity disk: centre (2 x 8 bytes) + radius (8 bytes).
VALIDITY_DISK_BYTES = 24


class ValidityDisk:
    """A conservative, disk-shaped validity region.

    Shipped when the server cannot afford the exact region — the
    degraded-mode response of a deadline-bounded kNN query.  The disk is
    centred on the query and guaranteed to lie inside the true validity
    region, so the client stays correct; it is merely smaller, making
    the client re-query sooner.  Constant payload, constant-time check.
    """

    __slots__ = ("center", "radius")

    def __init__(self, center: Tuple[float, float], radius: float):
        if radius < 0.0:
            raise ValueError("validity disk radius must be non-negative")
        self.center = (float(center[0]), float(center[1]))
        self.radius = float(radius)

    def contains(self, location, eps: float = 0.0) -> bool:
        dx = float(location[0]) - self.center[0]
        dy = float(location[1]) - self.center[1]
        return math.hypot(dx, dy) <= self.radius + eps

    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def polygon(self, segments: int = 64) -> ConvexPolygon:
        """An *inscribed* polygon (a sound under-approximation)."""
        cx, cy = self.center
        pts = [(cx + self.radius * math.cos(2 * math.pi * i / segments),
                cy + self.radius * math.sin(2 * math.pi * i / segments))
               for i in range(segments)]
        return ConvexPolygon(pts)

    def mbr(self) -> Rect:
        """Bounding rectangle (the server-cache index key)."""
        cx, cy = self.center
        return Rect(cx - self.radius, cy - self.radius,
                    cx + self.radius, cy + self.radius)

    def transfer_bytes(self) -> int:
        return VALIDITY_DISK_BYTES


#: Payload of an annulus: centre (2 x 8 bytes) + two radii (2 x 8 bytes).
ANNULUS_BYTES = 32


class AnnulusValidityRegion:
    """A validity region bounded by two concentric circles.

    Probabilistic-kNN answers ship one of these: the reported
    probability bands and candidate ordering are guaranteed wherever
    the (uncertain) client centre stays between ``inner`` and ``outer``
    distance from the anchoring centre.  ``inner == 0`` degenerates to
    a disk; ``inner == outer`` to a circle (or, with both zero, the
    centre point itself).  Constant payload, constant-time check.
    """

    __slots__ = ("center", "inner", "outer")

    def __init__(self, center: Tuple[float, float], inner: float,
                 outer: float):
        if inner < 0.0 or outer < inner:
            raise ValueError("annulus radii must satisfy 0 <= inner <= outer")
        self.center = (float(center[0]), float(center[1]))
        self.inner = float(inner)
        self.outer = float(outer)

    def contains(self, location, eps: float = 0.0) -> bool:
        dx = float(location[0]) - self.center[0]
        dy = float(location[1]) - self.center[1]
        d = math.hypot(dx, dy)
        return self.inner - eps <= d <= self.outer + eps

    def area(self) -> float:
        return math.pi * (self.outer * self.outer - self.inner * self.inner)

    def mbr(self) -> Rect:
        """Bounding rectangle (the server-cache index key)."""
        cx, cy = self.center
        return Rect(cx - self.outer, cy - self.outer,
                    cx + self.outer, cy + self.outer)

    def transfer_bytes(self) -> int:
        return ANNULUS_BYTES


class NNValidityRegion:
    """The validity region of a (k)NN query, as the client sees it.

    Built from influence pairs; membership is the conjunction of the
    bisector half-plane tests, which is exactly the computation the
    paper assigns to the client ("determining whether the current
    position is still inside all the half-planes").
    """

    __slots__ = ("_halfplanes", "_pairs", "_universe")

    def __init__(self, pairs: Sequence[Tuple[LeafEntry, LeafEntry]],
                 universe: Rect):
        """``pairs`` holds (result object, influence object) tuples."""
        self._pairs = tuple(pairs)
        self._universe = universe
        self._halfplanes: List[HalfPlane] = [
            bisector_halfplane(res.point, inf.point) for res, inf in self._pairs
        ]

    @property
    def pairs(self) -> Tuple[Tuple[LeafEntry, LeafEntry], ...]:
        return self._pairs

    @property
    def halfplanes(self) -> List[HalfPlane]:
        return list(self._halfplanes)

    @property
    def num_halfplane_checks(self) -> int:
        """Client work per position update (the Figure 24 metric)."""
        return len(self._halfplanes)

    def contains(self, location, eps: float = 0.0) -> bool:
        """Is the result still valid at ``location``?"""
        if not self._universe.contains_point(location, eps):
            return False
        return all(hp.contains(location, eps) for hp in self._halfplanes)

    def polygon(self) -> ConvexPolygon:
        """Materialize the region as a polygon (plotting / area)."""
        return ConvexPolygon.from_halfplanes(self._halfplanes, self._universe)

    def mbr(self) -> Rect:
        """Bounding rectangle (the server-cache index key).

        Degenerate regions (an empty clip) bound to a zero-area
        rectangle at the universe origin, which no probe point strictly
        inside a cell ever matches via :meth:`contains` anyway.
        """
        verts = self.polygon().vertices
        if not verts:
            return Rect(self._universe.xmin, self._universe.ymin,
                        self._universe.xmin, self._universe.ymin)
        return Rect.from_points(verts)

    def transfer_bytes(self) -> int:
        """Network payload: the influence objects (one point each).

        Result objects are paid for by the query result itself; pair
        structure costs one 4-byte id reference per pair.
        """
        influence_oids = {inf.oid for _, inf in self._pairs}
        return POINT_BYTES * len(influence_oids) + 4 * len(self._pairs)


class WindowValidityRegion:
    """The (conservative, rectangular) validity region of a window query."""

    __slots__ = ("rect",)

    def __init__(self, rect: Rect):
        self.rect = rect

    def contains(self, location, eps: float = 0.0) -> bool:
        return self.rect.contains_point(location, eps)

    def area(self) -> float:
        return self.rect.area()

    def mbr(self) -> Rect:
        """Bounding rectangle (the region itself)."""
        return self.rect

    def transfer_bytes(self) -> int:
        return RECT_BYTES


class CompositeValidityRegion:
    """The intersection of several validity regions.

    This is how a sharded kNN answer represents its guarantee: the
    merged result is provably unchanged wherever *every* per-shard
    region still holds **and** the candidate-reordering safety disk
    around the query is not left.  Membership is the conjunction of the
    component checks; the payload is the sum of the component payloads
    (each shard ships its own influence pairs).
    """

    __slots__ = ("components",)

    def __init__(self, components: Sequence):
        if not components:
            raise ValueError("an intersection needs at least one region")
        self.components = tuple(components)

    def contains(self, location, eps: float = 0.0) -> bool:
        return all(c.contains(location, eps) for c in self.components)

    def mbr(self) -> Rect:
        """Bounding rectangle: intersection of the component MBRs.

        Components without an ``mbr`` (open half-plane style regions)
        are skipped — the result stays a sound over-approximation.
        """
        out = None
        for c in self.components:
            get = getattr(c, "mbr", None)
            box = get() if get is not None else None
            if box is None:  # unbounded component: no constraint
                continue
            if out is None:
                out = box
                continue
            box = out.intersection(box)
            if box is None:
                # Numerically disjoint bounds: collapse to a point.
                return Rect(out.xmin, out.ymin, out.xmin, out.ymin)
            out = box
        if out is None:
            raise ValueError("no component exposes an MBR")
        return out

    def transfer_bytes(self) -> int:
        return sum(c.transfer_bytes() for c in self.components)
