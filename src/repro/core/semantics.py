"""Built-in query semantics: kNN, window and range as registry entries.

Everything the serving stack used to decide with ``isinstance`` ladders
— how to execute a request, how to key and adapt a cached answer, when
a cached entry survives a mutation, how to shrink a stale replica
region, how to patch a continuous subscription — lives here as the
three built-in :class:`~repro.core.api.QuerySemantics` registrations.
The service modules (:mod:`repro.service.cache`,
:mod:`repro.service.staleness`, :mod:`repro.service.continuous`, …)
look the behaviour up through
:func:`~repro.core.api.query_semantics` and never name a concrete
request type again, which is what lets reverse-kNN
(:mod:`repro.core.rknn`), probabilistic kNN
(:mod:`repro.core.probknn`) and third-party types plug into every tier
without touching them.

Hooks that need service-layer helpers import them lazily inside the
method body: ``repro.core`` must stay importable without
``repro.service`` (the dependency edge points the other way).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Tuple

from repro.core.api import (
    KNNRequest,
    QuerySemantics,
    RangeRequest,
    WindowRequest,
    register_query_type,
)
from repro.geometry import Rect, bisector_halfplane

__all__ = [
    "KNNSemantics",
    "RangeSemantics",
    "WindowSemantics",
]

#: Tie slack of the brute-force oracles: distances within EPS of the
#: decision boundary may legitimately fall on either side.
_EPS = 1e-9


def _delete_survives(entry, oid: int) -> bool:
    """A delete is harmless iff the object is not in the cached result:
    a non-member is beaten everywhere the result is frozen, and
    removing it promotes nothing."""
    return all(e.oid != oid for e in entry.response.result)


class KNNSemantics(QuerySemantics):
    """The k-nearest-neighbours query (paper Section 3)."""

    kind = "knn"
    request_type = KNNRequest
    supports_subscriptions = True

    # --- execution ----------------------------------------------------
    def execute(self, server, request):
        if request.previous_ids is not None:
            return server._knn_delta(request.location, request.k,
                                     request.previous_ids,
                                     budget=request.budget)
        return server._knn(request.location, k=request.k,
                           vertex_policy=request.vertex_policy,
                           budget=request.budget)

    def shard_execute(self, server, request):
        full = server._knn(request.location, k=request.k,
                           vertex_policy=request.vertex_policy,
                           budget=request.budget)
        if request.previous_ids is not None:
            from repro.core.server import delta_response
            return delta_response(full, full.result, request.previous_ids)
        return full

    # --- cache --------------------------------------------------------
    def cache_key(self, request) -> Optional[tuple]:
        if request.previous_ids is not None:
            return None
        return ("knn", request.k)

    def serve_cached(self, request, inner):
        qx, qy = request.location
        ranked = sorted(
            inner.result,
            key=lambda e: ((e.x - qx) ** 2 + (e.y - qy) ** 2, e.oid))
        if list(inner.result) == ranked:
            return inner
        return replace(inner, neighbors=ranked)

    def cache_survives(self, entry, op, oid, x, y) -> bool:
        if op == "delete":
            return _delete_survives(entry, oid)
        if len(entry.response.result) < entry.key[1]:
            return False  # the insert joins an under-full result
        corners = entry.mbr.corners()
        for neighbor in entry.response.result:
            if neighbor.x == x and neighbor.y == y:
                return False  # coincident: bisector undefined
            halfplane = bisector_halfplane(neighbor.point, (x, y))
            if not all(halfplane.contains(c) for c in corners):
                return False
        return True

    # --- replica staleness --------------------------------------------
    def stale_region(self, request, response, pending, universe):
        from repro.service.staleness import _knn_stale_region
        return _knn_stale_region(request, response, pending, universe)

    # --- continuous ---------------------------------------------------
    def subscribe_init(self, hub, sub, request) -> None:
        hub._init_knn(sub, request)

    def continuous_apply(self, hub, sub, mutation) -> tuple:
        from repro.service.continuous import _knn_apply, _knn_served
        code = _knn_apply(sub._state, mutation)
        if code != "patch":
            return (code,)
        served = _knn_served(sub._state, hub.owner.universe)
        if served is None:
            return ("exhausted",)
        return ("patch",) + served

    def continuous_move(self, hub, sub, location):
        from repro.service.continuous import _knn_served
        state = sub._state
        previous = state.point
        state.point = location
        served = _knn_served(state, hub.owner.universe)
        if served is not None:
            return ("patch",) + served
        state.point = previous
        return None

    def refetch_request(self, request, location):
        return replace(request, location=location, previous_ids=None)

    # --- oracle -------------------------------------------------------
    def oracle(self, points, request) -> Tuple[set, set]:
        qx, qy = request.location
        ranked = sorted((math.hypot(e.x - qx, e.y - qy), e.oid)
                        for e in points)
        if len(ranked) <= request.k:
            ids = {oid for _, oid in ranked}
            return ids, ids
        kth = ranked[request.k - 1][0]
        must = {oid for d, oid in ranked if d < kth - _EPS}
        may = {oid for d, oid in ranked if d <= kth + _EPS}
        return must, may


class WindowSemantics(QuerySemantics):
    """The window query centred on the client (paper Section 4)."""

    kind = "window"
    request_type = WindowRequest
    supports_subscriptions = True

    # --- execution ----------------------------------------------------
    def execute(self, server, request):
        if request.previous_ids is not None:
            return server._window_delta(request.focus, request.width,
                                        request.height, request.previous_ids,
                                        budget=request.budget)
        return server._window(request.focus, request.width, request.height,
                              budget=request.budget)

    def shard_execute(self, server, request):
        full = server._window(request.focus, request.width, request.height,
                              budget=request.budget)
        if request.previous_ids is not None:
            from repro.core.server import delta_response
            return delta_response(full, full.result, request.previous_ids)
        return full

    # --- cache --------------------------------------------------------
    def location(self, request) -> Tuple[float, float]:
        return request.focus

    def cache_key(self, request) -> Optional[tuple]:
        if request.previous_ids is not None:
            return None
        return ("window", request.width, request.height)

    def cache_survives(self, entry, op, oid, x, y) -> bool:
        if op == "delete":
            return _delete_survives(entry, oid)
        width, height = entry.key[1], entry.key[2]
        zone = Rect(x - width / 2.0, y - height / 2.0,
                    x + width / 2.0, y + height / 2.0)
        return not zone.intersects(entry.mbr)

    # --- replica staleness --------------------------------------------
    def stale_region(self, request, response, pending, universe):
        from repro.service.staleness import _window_stale_region
        return _window_stale_region(request, response, pending)

    # --- continuous ---------------------------------------------------
    def subscribe_init(self, hub, sub, request) -> None:
        hub._init_window(sub, request)

    def continuous_apply(self, hub, sub, mutation) -> tuple:
        from repro.service.continuous import _window_apply
        return _window_apply(sub._state, mutation,
                             sub.response.region if sub.response else None)

    def continuous_move(self, hub, sub, location):
        if sub.response.region.contains(location):
            return ("serve", sub.response)
        return None

    def refetch_request(self, request, location):
        return replace(request, focus=location, previous_ids=None)

    # --- oracle -------------------------------------------------------
    def oracle(self, points, request) -> Tuple[set, set]:
        fx, fy = request.focus
        hw, hh = request.width / 2.0, request.height / 2.0
        must = {e.oid for e in points
                if abs(e.x - fx) < hw - _EPS and abs(e.y - fy) < hh - _EPS}
        may = {e.oid for e in points
               if abs(e.x - fx) <= hw + _EPS and abs(e.y - fy) <= hh + _EPS}
        return must, may


class RangeSemantics(QuerySemantics):
    """The circular range query (the Section 7 extension)."""

    kind = "range"
    request_type = RangeRequest
    supports_subscriptions = True

    # --- execution ----------------------------------------------------
    def execute(self, server, request):
        full = server._range(request.location, request.radius,
                             budget=request.budget)
        if request.previous_ids is not None:
            from repro.core.server import delta_response
            return delta_response(full, full.result, request.previous_ids)
        return full

    shard_execute = execute

    # --- cache --------------------------------------------------------
    def cache_key(self, request) -> Optional[tuple]:
        if request.previous_ids is not None:
            return None
        return ("range", request.radius)

    def cache_survives(self, entry, op, oid, x, y) -> bool:
        if op == "delete":
            return _delete_survives(entry, oid)
        return entry.mbr.mindist((x, y)) > entry.key[1]

    # --- replica staleness --------------------------------------------
    def stale_region(self, request, response, pending, universe):
        from repro.service.staleness import _range_stale_region
        return _range_stale_region(request, response, pending)

    # --- continuous ---------------------------------------------------
    def subscribe_init(self, hub, sub, request) -> None:
        hub._init_range(sub, request)

    def continuous_apply(self, hub, sub, mutation) -> tuple:
        from repro.service.continuous import _range_apply
        return _range_apply(sub._state, mutation)

    def continuous_move(self, hub, sub, location):
        if sub.response.region.contains(location):
            return ("serve", sub.response)
        return None

    def refetch_request(self, request, location):
        return replace(request, location=location, previous_ids=None)

    # --- oracle -------------------------------------------------------
    def oracle(self, points, request) -> Tuple[set, set]:
        qx, qy = request.location
        radius = request.radius
        must = {e.oid for e in points
                if math.hypot(e.x - qx, e.y - qy) < radius - _EPS}
        may = {e.oid for e in points
               if math.hypot(e.x - qx, e.y - qy) <= radius + _EPS}
        return must, may


register_query_type(KNNSemantics())
register_query_type(WindowSemantics())
register_query_type(RangeSemantics())
