"""Validity regions for location-based *region* (range) queries.

The paper's conclusion (Section 7) sketches this extension: for a query
"all objects within radius r of me", the exact validity region is
bounded by circular arcs (intersections of disks), which is costly to
represent and to check on a thin client.  We implement the natural
conservative representation — a **validity disk** around the query
focus — which keeps both the payload and the client check constant
size:

* an inner object at distance ``d`` stays in the result while the focus
  moves less than ``r - d``;
* an outer object at distance ``d`` stays out while the focus moves
  less than ``d - r``;

so the result is provably unchanged within the disk of radius

    rho = min( min over inner (r - d),  nearest-outside distance - r ).

Server processing: one circular range query for the result, one
constrained NN query (nearest object beyond ``r``) for the bounding
outer object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.geometry import Point
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.range import nearest_outside, range_query
from repro.core.api import BudgetClock, QueryDetail

#: Payload of a validity disk: centre (2 x 8 bytes) + radius (8 bytes).
DISK_BYTES = 24


class RangeValidityRegion:
    """A conservative validity disk for a range query."""

    __slots__ = ("center", "radius")

    def __init__(self, center: Point, radius: float):
        self.center = center
        self.radius = radius

    def contains(self, location, eps: float = 0.0) -> bool:
        if math.isinf(self.radius):
            return True
        return self.center.distance_to(location) <= self.radius + eps

    def area(self) -> float:
        if math.isinf(self.radius):
            return math.inf
        return math.pi * self.radius * self.radius

    def mbr(self) -> Optional["object"]:
        """Bounding rectangle, or ``None`` for an unbounded disk."""
        if math.isinf(self.radius):
            return None
        from repro.geometry import Rect
        return Rect(self.center.x - self.radius, self.center.y - self.radius,
                    self.center.x + self.radius, self.center.y + self.radius)

    def transfer_bytes(self) -> int:
        return DISK_BYTES


@dataclass
class RangeValidityResult(QueryDetail):
    """Everything the server computes for one location-based range query.

    The canonical :class:`~repro.core.api.QueryDetail` for ``kind ==
    "range"`` (exported as ``RangeDetail``).
    """

    kind = "range"

    focus: Point
    radius: float
    result: List[LeafEntry]
    #: The inner object whose exit bounds the disk (None if none binds).
    inner_influence: Optional[LeafEntry]
    #: The outer object whose entry bounds the disk (None if none exists).
    outer_influence: Optional[LeafEntry]
    validity_radius: float
    #: True when the query budget ran out before the nearest-outside
    #: probe: the result is exact, but with the bounding outer object
    #: unknown the validity disk collapses to radius zero.
    degraded: bool = False

    @property
    def influence_set(self) -> List[LeafEntry]:
        return [e for e in (self.inner_influence, self.outer_influence)
                if e is not None]

    def validity_region(self) -> RangeValidityRegion:
        return RangeValidityRegion(self.focus, self.validity_radius)


def compute_range_validity(tree: RStarTree, focus, radius: float,
                           result_phase: str = "result",
                           influence_phase: str = "influence",
                           clock: Optional[BudgetClock] = None
                           ) -> RangeValidityResult:
    """Process a location-based range query end to end.

    When ``clock`` (a query-budget clock) is exhausted after the result
    retrieval, the nearest-outside probe is skipped and the response
    degrades to a zero-radius validity disk (exact result, immediate
    client re-query on movement).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    focus = Point(float(focus[0]), float(focus[1]))

    with tree.disk.phase(result_phase):
        result = range_query(tree, focus, radius)

    if clock is not None and clock.exhausted():
        return RangeValidityResult(
            focus=focus,
            radius=radius,
            result=result,
            inner_influence=None,
            outer_influence=None,
            validity_radius=0.0,
            degraded=True,
        )

    with tree.disk.phase(influence_phase):
        outside = nearest_outside(tree, focus, radius)

    inner_influence = None
    inner_slack = math.inf
    for e in result:
        slack = radius - focus.distance_to((e.x, e.y))
        if slack < inner_slack:
            inner_slack = slack
            inner_influence = e

    outer_slack = outside.dist - radius if outside is not None else math.inf
    validity_radius = min(inner_slack, outer_slack)

    return RangeValidityResult(
        focus=focus,
        radius=radius,
        result=result,
        inner_influence=inner_influence,
        outer_influence=outside.entry if outside is not None else None,
        validity_radius=validity_radius,
    )
