"""The location server: the public query-processing facade.

Wraps an R*-tree and answers location-based queries with (result,
validity region, influence set) triples, tracking the server-side I/O
statistics that Section 6 reports.

Every response class implements the :class:`repro.core.api.QueryResponse`
protocol (``.result``, ``.region``, ``.detail``, ``.transfer_bytes()``),
and :meth:`LocationServer.answer` accepts any typed request from
:mod:`repro.core.api`; the per-type methods are kept for back-compat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.index.bulk import bulk_load_str
from repro.core.api import (
    BudgetClock,
    KNNRequest,
    QueryBudget,
    QueryRequest,
    RangeRequest,
    WindowRequest,
)
from repro.core.nn_validity import NNValidityResult, compute_nn_validity
from repro.core.range_validity import (
    RangeValidityRegion,
    RangeValidityResult,
    compute_range_validity,
    DISK_BYTES,
)
from repro.core.validity import (
    NNValidityRegion,
    WindowValidityRegion,
    POINT_BYTES,
    RECT_BYTES,
)
from repro.core.window_validity import WindowValidityResult, compute_window_validity


@dataclass
class KNNResponse:
    """What the server ships back for a kNN query."""

    neighbors: List[LeafEntry]
    region: NNValidityRegion
    detail: NNValidityResult

    @property
    def result(self) -> List[LeafEntry]:
        """The result entries (:class:`~repro.core.api.QueryResponse`)."""
        return self.neighbors

    def transfer_bytes(self) -> int:
        """Result points + influence payload (paper's network-cost model)."""
        return POINT_BYTES * len(self.neighbors) + self.region.transfer_bytes()


@dataclass
class WindowResponse:
    """What the server ships back for a window query."""

    result: List[LeafEntry]
    region: WindowValidityRegion
    detail: WindowValidityResult

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + RECT_BYTES


@dataclass
class RangeResponse:
    """What the server ships back for a circular range query (§7 ext.)."""

    result: List[LeafEntry]
    region: RangeValidityRegion
    detail: RangeValidityResult

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + DISK_BYTES


@dataclass
class DeltaResponse:
    """Incremental re-query response (the §7 delta-transmission idea).

    Instead of the full result, the server ships only the objects
    *added* since the client's previous result and the ids *removed*
    from it, together with the fresh validity region.
    """

    added: List[LeafEntry]
    removed_ids: List[int]
    #: The fresh full response (regions, details); its result list is
    #: what the client reconstructs from its cache plus the delta.
    full: object

    @property
    def result(self) -> List[LeafEntry]:
        """The full fresh result (what the client state converges to)."""
        return self.full.result

    @property
    def region(self):
        return self.full.region

    @property
    def detail(self):
        return self.full.detail

    def transfer_bytes(self) -> int:
        region_bytes = self.full.region.transfer_bytes()
        return (POINT_BYTES * len(self.added)
                + 4 * len(self.removed_ids) + region_bytes)


class LocationServer:
    """Answers location-based spatial queries over a point dataset.

    The dataset is *mostly* static (the paper's setting), but updates
    are supported: every :meth:`insert_object` / :meth:`delete_object`
    bumps the server ``epoch``.  Clients remember the epoch their cached
    validity region was computed under and drop the cache when it goes
    stale — modelling the invalidation broadcast a deployed system would
    push to its subscribers.  This is exactly where validity regions
    beat the pre-computed Voronoi diagram of [ZL01], whose maintenance
    cost under updates the paper criticizes.
    """

    def __init__(self, tree: RStarTree, universe: Optional[Rect] = None):
        self.tree = tree
        self.universe = universe if universe is not None else tree.root.mbr
        self.queries_processed = 0
        self.epoch = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_object(self, oid: int, x: float, y: float) -> None:
        """Add a data point; invalidates all outstanding validity regions."""
        self.tree.insert(oid, x, y)
        self.epoch += 1

    def delete_object(self, oid: int, x: float, y: float) -> bool:
        """Remove a data point; invalidates all outstanding regions."""
        removed = self.tree.delete(oid, x, y)
        if removed:
            self.epoch += 1
        return removed

    @classmethod
    def from_points(cls, points: Sequence, universe: Optional[Rect] = None,
                    capacity: Optional[int] = None, fill: float = 0.7,
                    buffer_fraction: float = 0.0) -> "LocationServer":
        """Bulk-load a server over raw ``(x, y)`` data."""
        tree = bulk_load_str(points, capacity=capacity, fill=fill)
        if buffer_fraction > 0.0:
            tree.attach_lru_buffer(buffer_fraction)
        return cls(tree, universe)

    # ------------------------------------------------------------------
    # the unified entry point
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest):
        """Answer any typed query request (see :mod:`repro.core.api`).

        Requests carrying ``previous_ids`` are answered incrementally
        (a :class:`DeltaResponse`); all responses satisfy the
        :class:`~repro.core.api.QueryResponse` protocol.
        """
        budget = getattr(request, "budget", None)
        if isinstance(request, KNNRequest):
            if request.previous_ids is not None:
                return self.knn_query_delta(request.location, request.k,
                                            request.previous_ids,
                                            budget=budget)
            return self.knn_query(request.location, k=request.k,
                                  vertex_policy=request.vertex_policy,
                                  budget=budget)
        if isinstance(request, WindowRequest):
            if request.previous_ids is not None:
                return self.window_query_delta(
                    request.focus, request.width, request.height,
                    request.previous_ids, budget=budget)
            return self.window_query(request.focus, request.width,
                                     request.height, budget=budget)
        if isinstance(request, RangeRequest):
            return self.range_query(request.location, request.radius,
                                    budget=budget)
        raise TypeError(f"not a query request: {request!r}")

    def _start_clock(self, budget: Optional[QueryBudget]
                     ) -> Optional[BudgetClock]:
        if budget is None or budget.unlimited:
            return None
        return budget.start(self.io_stats)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def knn_query(self, location, k: int = 1,
                  vertex_policy: str = "fifo",
                  rng: Optional[random.Random] = None,
                  budget: Optional[QueryBudget] = None) -> KNNResponse:
        """Location-based kNN: result + validity region + influence set.

        ``budget`` bounds server-side work; when it is exhausted during
        TPNN probing the response degrades to an exact result with a
        conservative safe-disk region and ``detail["degraded"]`` set.
        """
        detail = compute_nn_validity(self.tree, location, k=k,
                                     universe=self.universe,
                                     vertex_policy=vertex_policy, rng=rng,
                                     clock=self._start_clock(budget))
        self.queries_processed += 1
        return KNNResponse(
            neighbors=detail.neighbors,
            region=detail.validity_region(self.universe),
            detail=detail,
        )

    def window_query(self, focus, width: float, height: float,
                     budget: Optional[QueryBudget] = None) -> WindowResponse:
        """Location-based window query around a focus point."""
        detail = compute_window_validity(self.tree, focus, width, height,
                                         universe=self.universe,
                                         clock=self._start_clock(budget))
        self.queries_processed += 1
        return WindowResponse(
            result=detail.result,
            region=detail.validity_region(),
            detail=detail,
        )

    def range_query(self, location, radius: float,
                    budget: Optional[QueryBudget] = None) -> RangeResponse:
        """Location-based circular range query (§7 extension)."""
        detail = compute_range_validity(self.tree, location, radius,
                                        clock=self._start_clock(budget))
        self.queries_processed += 1
        return RangeResponse(
            result=detail.result,
            region=detail.validity_region(),
            detail=detail,
        )

    # ------------------------------------------------------------------
    # incremental (delta) re-queries — the §7 extension
    # ------------------------------------------------------------------
    def knn_query_delta(self, location, k: int, previous_ids,
                        budget: Optional[QueryBudget] = None
                        ) -> DeltaResponse:
        """kNN re-query shipping only the change versus ``previous_ids``."""
        full = self.knn_query(location, k=k, budget=budget)
        return _delta(full, full.neighbors, previous_ids)

    def window_query_delta(self, focus, width: float, height: float,
                           previous_ids,
                           budget: Optional[QueryBudget] = None
                           ) -> DeltaResponse:
        """Window re-query shipping only the change versus ``previous_ids``."""
        full = self.window_query(focus, width, height, budget=budget)
        return _delta(full, full.result, previous_ids)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    @property
    def io_stats(self):
        return self.tree.disk.stats

    def reset_io_stats(self) -> None:
        self.tree.disk.reset_stats()


def _delta(full, result: List[LeafEntry], previous_ids) -> DeltaResponse:
    previous = set(previous_ids)
    current = {e.oid for e in result}
    return DeltaResponse(
        added=[e for e in result if e.oid not in previous],
        removed_ids=sorted(previous - current),
        full=full,
    )
