"""The location server: the public query-processing facade.

Wraps an R*-tree and answers location-based queries with (result,
validity region, influence set) triples, tracking the server-side I/O
statistics that Section 6 reports.

Every response class implements the :class:`repro.core.api.QueryResponse`
protocol (``.result``, ``.region``, ``.detail``, ``.transfer_bytes()``),
and :meth:`LocationServer.answer` — the single query entry point —
accepts any typed request from :mod:`repro.core.api`.

The geometry kernel is pluggable (``kernel=``): the default scalar
kernel runs the paper's per-object tree algorithms and charges
simulated node accesses; the columnar kernels of :mod:`repro.kernel`
batch-evaluate kNN and TPNN influence times over a struct-of-arrays
snapshot of the dataset (cached per epoch) for raw CPU throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.index.bulk import bulk_load_str
from repro.core.api import BudgetClock, QueryBudget, QueryRequest
from repro.core.nn_validity import NNValidityResult, compute_nn_validity
from repro.core.range_validity import (
    RangeValidityRegion,
    RangeValidityResult,
    compute_range_validity,
    DISK_BYTES,
)
from repro.core.validity import (
    NNValidityRegion,
    WindowValidityRegion,
    POINT_BYTES,
    RECT_BYTES,
)
from repro.core.window_validity import WindowValidityResult, compute_window_validity


@dataclass
class KNNResponse:
    """What the server ships back for a kNN query."""

    neighbors: List[LeafEntry]
    region: NNValidityRegion
    detail: NNValidityResult

    @property
    def result(self) -> List[LeafEntry]:
        """The result entries (:class:`~repro.core.api.QueryResponse`)."""
        return self.neighbors

    def transfer_bytes(self) -> int:
        """Result points + influence payload (paper's network-cost model)."""
        return POINT_BYTES * len(self.neighbors) + self.region.transfer_bytes()


@dataclass
class WindowResponse:
    """What the server ships back for a window query."""

    result: List[LeafEntry]
    region: WindowValidityRegion
    detail: WindowValidityResult

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + RECT_BYTES


@dataclass
class RangeResponse:
    """What the server ships back for a circular range query (§7 ext.)."""

    result: List[LeafEntry]
    region: RangeValidityRegion
    detail: RangeValidityResult

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + DISK_BYTES


@dataclass
class DeltaResponse:
    """Incremental re-query response (the §7 delta-transmission idea).

    Instead of the full result, the server ships only the objects
    *added* since the client's previous result and the ids *removed*
    from it, together with the fresh validity region.
    """

    added: List[LeafEntry]
    removed_ids: List[int]
    #: The fresh full response (regions, details); its result list is
    #: what the client reconstructs from its cache plus the delta.
    full: object

    @property
    def result(self) -> List[LeafEntry]:
        """The full fresh result (what the client state converges to)."""
        return self.full.result

    @property
    def region(self):
        return self.full.region

    @property
    def detail(self):
        return self.full.detail

    def transfer_bytes(self) -> int:
        region_bytes = self.full.region.transfer_bytes()
        return (POINT_BYTES * len(self.added)
                + 4 * len(self.removed_ids) + region_bytes)


class LocationServer:
    """Answers location-based spatial queries over a point dataset.

    The dataset is *mostly* static (the paper's setting), but updates
    are supported: every :meth:`insert_object` / :meth:`delete_object`
    bumps the server ``epoch``.  Clients remember the epoch their cached
    validity region was computed under and drop the cache when it goes
    stale — modelling the invalidation broadcast a deployed system would
    push to its subscribers.  This is exactly where validity regions
    beat the pre-computed Voronoi diagram of [ZL01], whose maintenance
    cost under updates the paper criticizes.
    """

    def __init__(self, tree: RStarTree, universe: Optional[Rect] = None,
                 kernel=None):
        self.tree = tree
        self.universe = universe if universe is not None else tree.root.mbr
        self.queries_processed = 0
        self.epoch = 0
        # Resolved lazily-importable to keep repro.core free of a hard
        # dependency edge on repro.kernel at module import time.
        from repro.kernel.backends import get_kernel
        self.kernel = get_kernel(kernel)
        self._columns = None
        self._columns_epoch = -1

    def use_kernel(self, kernel) -> None:
        """Swap the geometry kernel (name, ``None``, or instance)."""
        from repro.kernel.backends import get_kernel
        self.kernel = get_kernel(kernel)
        self._columns = None
        self._columns_epoch = -1

    def _kernel_columns(self):
        """The epoch-cached SoA snapshot (``None`` on the scalar path)."""
        if not self.kernel.columnar:
            return None
        if self._columns is None or self._columns_epoch != self.epoch:
            from repro.kernel.columns import PointColumns
            self._columns = PointColumns.from_tree(self.tree)
            self._columns_epoch = self.epoch
        return self._columns

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_object(self, oid: int, x: float, y: float) -> None:
        """Add a data point; invalidates all outstanding validity regions."""
        self.tree.insert(oid, x, y)
        self.epoch += 1

    def delete_object(self, oid: int, x: float, y: float) -> bool:
        """Remove a data point; invalidates all outstanding regions."""
        removed = self.tree.delete(oid, x, y)
        if removed:
            self.epoch += 1
        return removed

    @classmethod
    def from_points(cls, points: Sequence, universe: Optional[Rect] = None,
                    capacity: Optional[int] = None, fill: float = 0.7,
                    buffer_fraction: float = 0.0,
                    kernel=None) -> "LocationServer":
        """Bulk-load a server over raw ``(x, y)`` data."""
        tree = bulk_load_str(points, capacity=capacity, fill=fill)
        if buffer_fraction > 0.0:
            tree.attach_lru_buffer(buffer_fraction)
        return cls(tree, universe, kernel=kernel)

    # ------------------------------------------------------------------
    # the unified entry point
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest):
        """Answer any registered query request (see :mod:`repro.core.api`).

        Dispatch goes through the :class:`~repro.core.api.QuerySemantics`
        registry, so third-party query types answered here need no
        server changes.  Requests carrying ``previous_ids`` are answered
        incrementally (a :class:`DeltaResponse`); all responses satisfy
        the :class:`~repro.core.api.QueryResponse` protocol.
        """
        from repro.core.api import query_semantics
        return query_semantics(request).execute(self, request)

    def dataset_entries(self) -> List[LeafEntry]:
        """A point-in-time list of every data entry (no simulated I/O).

        Centralized query semantics (reverse-kNN, probabilistic kNN)
        answer from this snapshot the same way the columnar kernels do.
        """
        return list(self.tree.points())

    def _start_clock(self, budget: Optional[QueryBudget]
                     ) -> Optional[BudgetClock]:
        if budget is None or budget.unlimited:
            return None
        return budget.start(self.io_stats)

    # ------------------------------------------------------------------
    # query implementations
    # ------------------------------------------------------------------
    def _knn(self, location, k: int = 1, vertex_policy: str = "fifo",
             rng: Optional[random.Random] = None,
             budget: Optional[QueryBudget] = None) -> KNNResponse:
        detail = compute_nn_validity(self.tree, location, k=k,
                                     universe=self.universe,
                                     vertex_policy=vertex_policy, rng=rng,
                                     clock=self._start_clock(budget),
                                     kernel=self.kernel,
                                     columns=self._kernel_columns())
        self.queries_processed += 1
        return KNNResponse(
            neighbors=detail.neighbors,
            region=detail.validity_region(self.universe),
            detail=detail,
        )

    def _window(self, focus, width: float, height: float,
                budget: Optional[QueryBudget] = None) -> WindowResponse:
        detail = compute_window_validity(self.tree, focus, width, height,
                                         universe=self.universe,
                                         clock=self._start_clock(budget))
        self.queries_processed += 1
        return WindowResponse(
            result=detail.result,
            region=detail.validity_region(),
            detail=detail,
        )

    def _range(self, location, radius: float,
               budget: Optional[QueryBudget] = None) -> RangeResponse:
        detail = compute_range_validity(self.tree, location, radius,
                                        clock=self._start_clock(budget))
        self.queries_processed += 1
        return RangeResponse(
            result=detail.result,
            region=detail.validity_region(),
            detail=detail,
        )

    def _knn_delta(self, location, k: int, previous_ids,
                   budget: Optional[QueryBudget] = None) -> DeltaResponse:
        full = self._knn(location, k=k, budget=budget)
        return _delta(full, full.neighbors, previous_ids)

    def _window_delta(self, focus, width: float, height: float, previous_ids,
                      budget: Optional[QueryBudget] = None) -> DeltaResponse:
        full = self._window(focus, width, height, budget=budget)
        return _delta(full, full.result, previous_ids)

    # ------------------------------------------------------------------
    # instrumentation — the narrow interface the service layer uses.
    # Any server implementation (this one, ShardedServer) provides it.
    # ------------------------------------------------------------------
    @property
    def io_stats(self):
        return self.tree.disk.stats

    def reset_io_stats(self) -> None:
        self.tree.disk.reset_stats()

    @property
    def num_points(self) -> int:
        return len(self.tree)

    @property
    def num_pages(self) -> int:
        return self.tree.num_pages

    def node_accesses_by_phase(self) -> Dict[str, int]:
        return self.io_stats.node_accesses_by_phase()

    def page_faults_by_phase(self) -> Dict[str, int]:
        return self.io_stats.page_faults_by_phase()

    def set_phase_listener(self, listener):
        """Install (or clear) the disk phase listener; returns the old one."""
        return self.tree.disk.set_phase_listener(listener)

    def disk_snapshot(self) -> Dict[str, object]:
        """JSON-serializable disk + buffer state (the snapshot format)."""
        disk = self.tree.disk
        out: Dict[str, object] = {
            "stats": disk.stats.as_dict(),
            "buffer": (disk.buffer.snapshot()
                       if disk.buffer is not None else None),
        }
        injected = getattr(disk, "snapshot", None)
        if callable(injected) and hasattr(disk, "plan"):
            out["faults_injected"] = disk.snapshot()
        return out


def delta_response(full, result: List[LeafEntry], previous_ids
                   ) -> DeltaResponse:
    """Diff a full response against a client's cached result ids."""
    previous = set(previous_ids)
    current = {e.oid for e in result}
    return DeltaResponse(
        added=[e for e in result if e.oid not in previous],
        removed_ids=sorted(previous - current),
        full=full,
    )


_delta = delta_response
