"""The unified request/response surface of the location server.

Historically each query type had its own response class with its own
field names (``neighbors`` vs ``result``) and the server exposed one
method per query type.  This module defines the generic surface that
every caller — the mobile client, the query service, the CLI, the
benchmark harness — can program against:

* typed request dataclasses (:class:`KNNRequest`, :class:`WindowRequest`,
  :class:`RangeRequest`), each carrying everything the server needs to
  answer it, including the cached result ids that turn a re-query into
  an incremental (delta) request;
* the :class:`QueryResponse` protocol — ``.result``, ``.region``,
  ``.detail`` and ``.transfer_bytes()`` — implemented by all concrete
  response classes, so generic code never needs to know which query
  type produced a response;
* :meth:`repro.core.server.LocationServer.answer`, the single entry
  point dispatching any request to the right processing path.

The per-type server methods (``knn_query`` etc.) remain available for
callers that prefer them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    ClassVar,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

__all__ = [
    "QueryRequest",
    "KNNRequest",
    "WindowRequest",
    "RangeRequest",
    "QueryResponse",
]


@runtime_checkable
class QueryResponse(Protocol):
    """What every server response exposes, regardless of query type.

    ``result`` is the list of :class:`~repro.index.entry.LeafEntry`
    objects answering the query; ``region`` is the validity region the
    client caches (it always has ``contains(location)`` and
    ``transfer_bytes()``); ``detail`` is the full per-type computation
    record (influence sets, exact regions, probe counts).
    """

    @property
    def result(self) -> List:
        """The query result entries."""

    @property
    def region(self):
        """The shipped validity region (has ``contains`` / ``transfer_bytes``)."""

    @property
    def detail(self):
        """The per-type server-side computation record."""

    def transfer_bytes(self) -> int:
        """Modelled network payload of this response."""


def _freeze_ids(ids) -> Optional[Tuple[int, ...]]:
    if ids is None:
        return None
    return tuple(int(i) for i in ids)


@dataclass(frozen=True)
class KNNRequest:
    """A location-based kNN query: the ``k`` nearest objects to ``location``."""

    kind: ClassVar[str] = "knn"

    location: Tuple[float, float]
    k: int = 1
    #: Vertex-selection policy for the influence-set retrieval
    #: (see :data:`repro.core.nn_validity.VERTEX_POLICIES`).
    vertex_policy: str = "fifo"
    #: Result ids of the caller's cached response.  When set, the server
    #: answers incrementally (§7): only additions/removals are shipped.
    previous_ids: Optional[Tuple[int, ...]] = None
    #: Caller-chosen correlation id, echoed through traces and logs.
    trace_id: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def as_delta(self, previous_ids) -> "KNNRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@dataclass(frozen=True)
class WindowRequest:
    """A location-based window query centred on ``focus``."""

    kind: ClassVar[str] = "window"

    focus: Tuple[float, float]
    width: float
    height: float
    previous_ids: Optional[Tuple[int, ...]] = None
    trace_id: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.width <= 0 or self.height <= 0:
            raise ValueError("window extents must be positive")

    def as_delta(self, previous_ids) -> "WindowRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@dataclass(frozen=True)
class RangeRequest:
    """A location-based circular range query around ``location``."""

    kind: ClassVar[str] = "range"

    location: Tuple[float, float]
    radius: float
    trace_id: Optional[str] = None

    def __post_init__(self):
        if self.radius <= 0:
            raise ValueError("radius must be positive")


QueryRequest = Union[KNNRequest, WindowRequest, RangeRequest]
