"""The unified request/response surface of the location server.

Historically each query type had its own response class with its own
field names (``neighbors`` vs ``result``) and the server exposed one
method per query type.  This module defines the generic surface that
every caller — the mobile client, the query service, the CLI, the
benchmark harness — can program against:

* typed request dataclasses (:class:`KNNRequest`, :class:`WindowRequest`,
  :class:`RangeRequest`), each carrying everything the server needs to
  answer it, including the cached result ids that turn a re-query into
  an incremental (delta) request;
* the :class:`QueryResponse` protocol — ``.result``, ``.region``,
  ``.detail`` and ``.transfer_bytes()`` — implemented by all concrete
  response classes, so generic code never needs to know which query
  type produced a response;
* :meth:`repro.core.server.LocationServer.answer`, the single entry
  point dispatching any request to the right processing path.

``answer(request)`` is the only query entry point: the per-type server
methods (``knn_query`` etc.) and the mapping-style ``detail["..."]``
shim were removed in v1.3.0 after their deprecation window (opened in
v1.1.0) lapsed — see docs/API.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import (
    ClassVar,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "QueryRequest",
    "KNNRequest",
    "WindowRequest",
    "RangeRequest",
    "QueryResponse",
    "QueryBudget",
    "BudgetClock",
    "QueryDetail",
    "QuerySemantics",
    "register_query_type",
    "query_semantics",
    "registered_query_kinds",
]


class QueryDetail:
    """Base of the typed per-query-type detail hierarchy.

    Every response's ``detail`` is a dataclass deriving from this base:
    ``KNNDetail`` (:class:`~repro.core.nn_validity.NNValidityResult`),
    ``WindowDetail`` (:class:`~repro.core.window_validity.WindowValidityResult`),
    ``RangeDetail`` (:class:`~repro.core.range_validity.RangeValidityResult`)
    — plus the sharded merge records of :mod:`repro.service.shard`.
    The base guarantees the two fields generic code relies on:

    * ``kind`` — the query type the detail describes;
    * ``degraded`` — whether the budget ran out and the shipped region
      is a conservative under-approximation (the result stays exact).
    """

    #: The query type this detail record describes.
    kind: ClassVar[str] = ""

    # Subclasses are dataclasses that define ``degraded`` as a field;
    # the class attribute makes the flag total across the hierarchy.
    degraded: bool = False

    @property
    def influence_set(self) -> List:
        """Distinct influence objects (empty when not applicable)."""
        return []


@dataclass(frozen=True)
class QueryBudget:
    """A per-query processing allowance.

    ``deadline_ms`` bounds server-side wall-clock time; ``max_node_accesses``
    bounds simulated I/O.  When either is exhausted mid-computation the
    server stops refining the validity region and ships a **degraded
    response**: the (still exact) query result with a conservatively
    shrunk region and ``detail.degraded`` set — clients stay correct,
    they just re-query sooner.
    """

    deadline_ms: Optional[float] = None
    max_node_accesses: Optional[int] = None

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError("deadline_ms must be non-negative")
        if self.max_node_accesses is not None and self.max_node_accesses < 0:
            raise ValueError("max_node_accesses must be non-negative")

    @property
    def unlimited(self) -> bool:
        return self.deadline_ms is None and self.max_node_accesses is None

    def start(self, io_stats=None) -> "BudgetClock":
        """Begin metering against this budget (``io_stats`` is the
        disk's :class:`~repro.storage.counters.AccessStats`)."""
        return BudgetClock(self, io_stats)


class BudgetClock:
    """The running state of one query's :class:`QueryBudget`."""

    __slots__ = ("budget", "_t0", "_io", "_na0")

    def __init__(self, budget: QueryBudget, io_stats=None):
        self.budget = budget
        self._t0 = perf_counter()
        self._io = io_stats if budget.max_node_accesses is not None else None
        self._na0 = (io_stats.total_node_accesses
                     if self._io is not None else 0)

    @property
    def elapsed_ms(self) -> float:
        return (perf_counter() - self._t0) * 1e3

    @property
    def node_accesses(self) -> int:
        if self._io is None:
            return 0
        return self._io.total_node_accesses - self._na0

    def exhausted(self) -> bool:
        """Has either dimension of the budget run out?"""
        b = self.budget
        if b.deadline_ms is not None and self.elapsed_ms >= b.deadline_ms:
            return True
        if (b.max_node_accesses is not None
                and self.node_accesses >= b.max_node_accesses):
            return True
        return False


@runtime_checkable
class QueryResponse(Protocol):
    """What every server response exposes, regardless of query type.

    ``result`` is the list of :class:`~repro.index.entry.LeafEntry`
    objects answering the query; ``region`` is the validity region the
    client caches (it always has ``contains(location)`` and
    ``transfer_bytes()``); ``detail`` is the full per-type computation
    record (influence sets, exact regions, probe counts).
    """

    @property
    def result(self) -> List:
        """The query result entries."""

    @property
    def region(self):
        """The shipped validity region (has ``contains`` / ``transfer_bytes``)."""

    @property
    def detail(self):
        """The per-type server-side computation record."""

    def transfer_bytes(self) -> int:
        """Modelled network payload of this response."""


def _freeze_ids(ids) -> Optional[Tuple[int, ...]]:
    if ids is None:
        return None
    return tuple(int(i) for i in ids)


@dataclass(frozen=True)
class KNNRequest:
    """A location-based kNN query: the ``k`` nearest objects to ``location``."""

    kind: ClassVar[str] = "knn"

    location: Tuple[float, float]
    k: int = 1
    #: Vertex-selection policy for the influence-set retrieval
    #: (see :data:`repro.core.nn_validity.VERTEX_POLICIES`).
    vertex_policy: str = "fifo"
    #: Result ids of the caller's cached response.  When set, the server
    #: answers incrementally (§7): only additions/removals are shipped.
    previous_ids: Optional[Tuple[int, ...]] = None
    #: Caller-chosen correlation id, echoed through traces and logs.
    trace_id: Optional[str] = None
    #: Per-query processing allowance; exhausting it yields a degraded
    #: (conservatively shrunk-region) response instead of an error.
    budget: Optional[QueryBudget] = None
    #: Staleness bound for replica reads: the answering replica may lag
    #: the primary by at most this many unapplied mutations (its region
    #: is conservatively shrunk so the answer stays provably correct).
    #: ``None`` defers to the server's default (fresh reads only).
    max_stale: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")

    def as_delta(self, previous_ids) -> "KNNRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@dataclass(frozen=True)
class WindowRequest:
    """A location-based window query centred on ``focus``."""

    kind: ClassVar[str] = "window"

    focus: Tuple[float, float]
    width: float
    height: float
    previous_ids: Optional[Tuple[int, ...]] = None
    trace_id: Optional[str] = None
    budget: Optional[QueryBudget] = None
    #: Replica-read staleness bound (see :class:`KNNRequest.max_stale`).
    max_stale: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.width <= 0 or self.height <= 0:
            raise ValueError("window extents must be positive")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")

    def as_delta(self, previous_ids) -> "WindowRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@dataclass(frozen=True)
class RangeRequest:
    """A location-based circular range query around ``location``."""

    kind: ClassVar[str] = "range"

    location: Tuple[float, float]
    radius: float
    previous_ids: Optional[Tuple[int, ...]] = None
    trace_id: Optional[str] = None
    budget: Optional[QueryBudget] = None
    #: Replica-read staleness bound (see :class:`KNNRequest.max_stale`).
    max_stale: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")

    def as_delta(self, previous_ids) -> "RangeRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@runtime_checkable
class QueryRequest(Protocol):
    """Any registered query request (open protocol, not a closed union).

    A request is whatever a registered :class:`QuerySemantics` says it
    is; structurally it carries a ``kind`` tag plus the cross-cutting
    fields every service layer reads (``trace_id``, ``budget``).
    """

    kind: str
    trace_id: Optional[str]
    budget: Optional[QueryBudget]


# ----------------------------------------------------------------------
# the query-type registry
# ----------------------------------------------------------------------
class QuerySemantics:
    """Everything one query type means to the serving stack.

    One instance per query ``kind`` bundles the per-type behaviour that
    used to live as ``isinstance`` ladders across the service tiers:

    * ``execute`` / ``shard_execute`` — answer the request against a
      single-tree or sharded server (the default ``shard_execute``
      falls back to centralized ``execute`` over the merged dataset,
      so a new type works on both backends without a scatter-gather
      merge rule);
    * ``location`` / ``cache_key`` / ``serve_cached`` /
      ``cache_survives`` — :class:`~repro.service.cache.ValidityCache`
      addressing, admissibility and surgical mutation survival;
    * ``stale_region`` — the replica bounded-staleness shrink
      (``None`` = this response cannot be served stale);
    * ``subscribe_init`` / ``continuous_apply`` / ``continuous_move`` /
      ``refetch_request`` — continuous-query patching hooks (gated on
      ``supports_subscriptions``);
    * ``oracle`` — a brute-force reference answer, powering the
      reusable :func:`repro.core.conformance.check_semantics` suite.

    Third-party types subclass this, set ``kind``/``request_type``, and
    call :func:`register_query_type`.
    """

    #: The request tag this semantics object answers for.
    kind: str = ""
    #: The concrete request dataclass (used for registry lookups by type).
    request_type: Optional[type] = None
    #: Whether :meth:`subscribe_init` / :meth:`continuous_apply` exist.
    supports_subscriptions: bool = False

    # --- execution ----------------------------------------------------
    def execute(self, server, request):
        """Answer ``request`` against a single-tree server."""
        raise NotImplementedError

    def shard_execute(self, server, request):
        """Answer against a :class:`~repro.service.shard.ShardedServer`.

        The default runs the centralized :meth:`execute` over the
        sharded server's merged dataset snapshot — correct (if not
        scatter-gathered) on both thread and process backends.
        """
        return self.execute(server, request)

    # --- cache addressing / admissibility -----------------------------
    def location(self, request) -> Tuple[float, float]:
        """The client location the request is anchored at."""
        loc = getattr(request, "location", None)
        if loc is not None:
            return loc
        return request.focus

    def cache_key(self, request) -> Optional[tuple]:
        """Query-shape key for the validity cache (None = uncacheable)."""
        return None

    def serve_cached(self, request, inner):
        """Adapt a cached inner response to ``request`` (e.g. re-rank
        kNN hits by distance to the probing point).  Return ``inner``
        unchanged when no adaptation is needed."""
        return inner

    def cache_survives(self, entry, op: str, oid: int,
                       x: float, y: float) -> bool:
        """Can the cached ``entry`` provably survive this mutation?"""
        return False

    # --- replica staleness --------------------------------------------
    def stale_region(self, request, response, pending, universe):
        """A region provably valid for the fresh dataset despite the
        replica's ``pending`` mutation backlog, or ``None`` when the
        response cannot be served stale."""
        return None

    # --- continuous queries -------------------------------------------
    def subscribe_init(self, hub, sub, request) -> None:
        """Fetch the initial answer and seed ``sub._state``."""
        raise ValueError(f"cannot subscribe a {self.kind!r} request")

    def continuous_apply(self, hub, sub, mutation) -> tuple:
        """Fold one mutation into the subscription state.

        Returns ``("skip",)``, ``("exhausted",)`` or
        ``("patch", result, region)``.
        """
        return ("exhausted",)

    def continuous_move(self, hub, sub, location):
        """Relocate the subscription without a re-query, if possible.

        Returns ``("patch", result, region)`` to install a repaired
        answer, ``("serve", response)`` to re-serve the current response
        unchanged (it already covers ``location``), or ``None`` to force
        the escape-hatch re-fetch.
        """
        return None

    def refetch_request(self, request, location):
        """A fresh (non-delta) copy of ``request`` at ``location``."""
        raise NotImplementedError

    # --- conformance oracle -------------------------------------------
    def oracle(self, points, request) -> Tuple[set, set]:
        """Brute-force reference: ``(must_ids, may_ids)`` — every
        correct answer contains all of ``must_ids`` and nothing outside
        ``may_ids`` (the gap is tie slack)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} kind={self.kind!r}>"


_REGISTRY: dict = {}
_BY_TYPE: dict = {}
_BUILTINS_LOADED = False


def register_query_type(semantics: QuerySemantics) -> QuerySemantics:
    """Register (or replace) the semantics for ``semantics.kind``.

    Returns the registered object so the call composes as a statement
    or decorator-style tail call.
    """
    if not isinstance(semantics, QuerySemantics):
        raise TypeError(f"not a QuerySemantics: {semantics!r}")
    if not semantics.kind:
        raise ValueError("semantics.kind must be a non-empty string")
    if semantics.request_type is None:
        raise ValueError("semantics.request_type must be set")
    _REGISTRY[semantics.kind] = semantics
    _BY_TYPE[semantics.request_type] = semantics
    return semantics


def _ensure_builtins() -> None:
    """Load the built-in semantics lazily (avoids import cycles)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.core import semantics as _builtin  # noqa: F401
    from repro.core import rknn as _rknn          # noqa: F401
    from repro.core import probknn as _probknn    # noqa: F401


def query_semantics(request_or_kind) -> QuerySemantics:
    """The registered :class:`QuerySemantics` for a request or kind tag.

    Raises ``TypeError`` for anything unregistered — the registry is
    the single dispatch point replacing the old ``isinstance`` ladders.
    """
    _ensure_builtins()
    if isinstance(request_or_kind, str):
        try:
            return _REGISTRY[request_or_kind]
        except KeyError:
            raise TypeError(
                f"no query type registered for kind {request_or_kind!r}")
    sem = _BY_TYPE.get(type(request_or_kind))
    if sem is not None:
        return sem
    kind = getattr(request_or_kind, "kind", None)
    if kind is not None and kind in _REGISTRY:
        return _REGISTRY[kind]
    raise TypeError(f"not a query request: {request_or_kind!r}")


def registered_query_kinds() -> Tuple[str, ...]:
    """All registered kind tags, sorted (built-ins included)."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))
