"""The unified request/response surface of the location server.

Historically each query type had its own response class with its own
field names (``neighbors`` vs ``result``) and the server exposed one
method per query type.  This module defines the generic surface that
every caller — the mobile client, the query service, the CLI, the
benchmark harness — can program against:

* typed request dataclasses (:class:`KNNRequest`, :class:`WindowRequest`,
  :class:`RangeRequest`), each carrying everything the server needs to
  answer it, including the cached result ids that turn a re-query into
  an incremental (delta) request;
* the :class:`QueryResponse` protocol — ``.result``, ``.region``,
  ``.detail`` and ``.transfer_bytes()`` — implemented by all concrete
  response classes, so generic code never needs to know which query
  type produced a response;
* :meth:`repro.core.server.LocationServer.answer`, the single entry
  point dispatching any request to the right processing path.

``answer(request)`` is the only query entry point: the per-type server
methods (``knn_query`` etc.) and the mapping-style ``detail["..."]``
shim were removed in v1.3.0 after their deprecation window (opened in
v1.1.0) lapsed — see docs/API.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import (
    ClassVar,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

__all__ = [
    "QueryRequest",
    "KNNRequest",
    "WindowRequest",
    "RangeRequest",
    "QueryResponse",
    "QueryBudget",
    "BudgetClock",
    "QueryDetail",
]


class QueryDetail:
    """Base of the typed per-query-type detail hierarchy.

    Every response's ``detail`` is a dataclass deriving from this base:
    ``KNNDetail`` (:class:`~repro.core.nn_validity.NNValidityResult`),
    ``WindowDetail`` (:class:`~repro.core.window_validity.WindowValidityResult`),
    ``RangeDetail`` (:class:`~repro.core.range_validity.RangeValidityResult`)
    — plus the sharded merge records of :mod:`repro.service.shard`.
    The base guarantees the two fields generic code relies on:

    * ``kind`` — the query type the detail describes;
    * ``degraded`` — whether the budget ran out and the shipped region
      is a conservative under-approximation (the result stays exact).
    """

    #: The query type this detail record describes.
    kind: ClassVar[str] = ""

    # Subclasses are dataclasses that define ``degraded`` as a field;
    # the class attribute makes the flag total across the hierarchy.
    degraded: bool = False

    @property
    def influence_set(self) -> List:
        """Distinct influence objects (empty when not applicable)."""
        return []


@dataclass(frozen=True)
class QueryBudget:
    """A per-query processing allowance.

    ``deadline_ms`` bounds server-side wall-clock time; ``max_node_accesses``
    bounds simulated I/O.  When either is exhausted mid-computation the
    server stops refining the validity region and ships a **degraded
    response**: the (still exact) query result with a conservatively
    shrunk region and ``detail.degraded`` set — clients stay correct,
    they just re-query sooner.
    """

    deadline_ms: Optional[float] = None
    max_node_accesses: Optional[int] = None

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError("deadline_ms must be non-negative")
        if self.max_node_accesses is not None and self.max_node_accesses < 0:
            raise ValueError("max_node_accesses must be non-negative")

    @property
    def unlimited(self) -> bool:
        return self.deadline_ms is None and self.max_node_accesses is None

    def start(self, io_stats=None) -> "BudgetClock":
        """Begin metering against this budget (``io_stats`` is the
        disk's :class:`~repro.storage.counters.AccessStats`)."""
        return BudgetClock(self, io_stats)


class BudgetClock:
    """The running state of one query's :class:`QueryBudget`."""

    __slots__ = ("budget", "_t0", "_io", "_na0")

    def __init__(self, budget: QueryBudget, io_stats=None):
        self.budget = budget
        self._t0 = perf_counter()
        self._io = io_stats if budget.max_node_accesses is not None else None
        self._na0 = (io_stats.total_node_accesses
                     if self._io is not None else 0)

    @property
    def elapsed_ms(self) -> float:
        return (perf_counter() - self._t0) * 1e3

    @property
    def node_accesses(self) -> int:
        if self._io is None:
            return 0
        return self._io.total_node_accesses - self._na0

    def exhausted(self) -> bool:
        """Has either dimension of the budget run out?"""
        b = self.budget
        if b.deadline_ms is not None and self.elapsed_ms >= b.deadline_ms:
            return True
        if (b.max_node_accesses is not None
                and self.node_accesses >= b.max_node_accesses):
            return True
        return False


@runtime_checkable
class QueryResponse(Protocol):
    """What every server response exposes, regardless of query type.

    ``result`` is the list of :class:`~repro.index.entry.LeafEntry`
    objects answering the query; ``region`` is the validity region the
    client caches (it always has ``contains(location)`` and
    ``transfer_bytes()``); ``detail`` is the full per-type computation
    record (influence sets, exact regions, probe counts).
    """

    @property
    def result(self) -> List:
        """The query result entries."""

    @property
    def region(self):
        """The shipped validity region (has ``contains`` / ``transfer_bytes``)."""

    @property
    def detail(self):
        """The per-type server-side computation record."""

    def transfer_bytes(self) -> int:
        """Modelled network payload of this response."""


def _freeze_ids(ids) -> Optional[Tuple[int, ...]]:
    if ids is None:
        return None
    return tuple(int(i) for i in ids)


@dataclass(frozen=True)
class KNNRequest:
    """A location-based kNN query: the ``k`` nearest objects to ``location``."""

    kind: ClassVar[str] = "knn"

    location: Tuple[float, float]
    k: int = 1
    #: Vertex-selection policy for the influence-set retrieval
    #: (see :data:`repro.core.nn_validity.VERTEX_POLICIES`).
    vertex_policy: str = "fifo"
    #: Result ids of the caller's cached response.  When set, the server
    #: answers incrementally (§7): only additions/removals are shipped.
    previous_ids: Optional[Tuple[int, ...]] = None
    #: Caller-chosen correlation id, echoed through traces and logs.
    trace_id: Optional[str] = None
    #: Per-query processing allowance; exhausting it yields a degraded
    #: (conservatively shrunk-region) response instead of an error.
    budget: Optional[QueryBudget] = None
    #: Staleness bound for replica reads: the answering replica may lag
    #: the primary by at most this many unapplied mutations (its region
    #: is conservatively shrunk so the answer stays provably correct).
    #: ``None`` defers to the server's default (fresh reads only).
    max_stale: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")

    def as_delta(self, previous_ids) -> "KNNRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@dataclass(frozen=True)
class WindowRequest:
    """A location-based window query centred on ``focus``."""

    kind: ClassVar[str] = "window"

    focus: Tuple[float, float]
    width: float
    height: float
    previous_ids: Optional[Tuple[int, ...]] = None
    trace_id: Optional[str] = None
    budget: Optional[QueryBudget] = None
    #: Replica-read staleness bound (see :class:`KNNRequest.max_stale`).
    max_stale: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "previous_ids",
                           _freeze_ids(self.previous_ids))
        if self.width <= 0 or self.height <= 0:
            raise ValueError("window extents must be positive")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")

    def as_delta(self, previous_ids) -> "WindowRequest":
        """This request as an incremental re-query versus ``previous_ids``."""
        return replace(self, previous_ids=_freeze_ids(previous_ids))


@dataclass(frozen=True)
class RangeRequest:
    """A location-based circular range query around ``location``."""

    kind: ClassVar[str] = "range"

    location: Tuple[float, float]
    radius: float
    trace_id: Optional[str] = None
    budget: Optional[QueryBudget] = None
    #: Replica-read staleness bound (see :class:`KNNRequest.max_stale`).
    max_stale: Optional[int] = None

    def __post_init__(self):
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")


QueryRequest = Union[KNNRequest, WindowRequest, RangeRequest]
