"""A reusable conformance suite for registered query types.

Any :class:`~repro.core.api.QuerySemantics` — builtin or third-party —
must uphold the same contracts the service tiers rely on.  This module
checks them against a brute-force oracle so new query types get the
full battery for free:

* **registration** — the semantics object is reachable through the
  registry by kind and by request type;
* **region soundness** — the answer matches the type's oracle and the
  shipped region contains the query location;
* **cache round-trip** — cache keys are deterministic, a cached
  response re-served through :meth:`serve_cached` keeps the result
  set, and any mutation :meth:`cache_survives` waves through provably
  leaves the recomputed answer unchanged;
* **staleness shrink containment** — :meth:`stale_region` only ever
  *shrinks* (every point of the stale region lies in the original),
  and a stale region that still covers the query location certifies
  the stale answer against a full recompute on the mutated dataset.

Use :func:`check_semantics` directly from a test::

    check_semantics("rknn", points, [RKNNRequest((0.4, 0.6), k=2)])
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence

from repro.core.api import QuerySemantics, query_semantics
from repro.core.server import LocationServer
from repro.service.staleness import Mutation

__all__ = ["check_semantics"]

_EPS = 1e-9
_PROBES = 64


def _result_ids(response) -> set:
    return {e.oid for e in response.result}


def _fresh_server(points, mutations: Sequence[Mutation]) -> LocationServer:
    server = LocationServer.from_points(points)
    for m in mutations:
        if m.op == "insert":
            server.insert_object(m.oid, m.x, m.y)
        else:
            server.delete_object(m.oid, m.x, m.y)
    return server


def _random_mutations(server: LocationServer, rng: random.Random,
                      count: int) -> list:
    entries = list(server.tree.points())
    next_oid = max((e.oid for e in entries), default=-1) + 1
    universe = server.universe
    muts = []
    for i in range(count):
        if entries and rng.random() < 0.5:
            victim = rng.choice(entries)
            muts.append(Mutation("delete", victim.oid, victim.x, victim.y))
        else:
            x = universe.xmin + rng.random() * universe.width
            y = universe.ymin + rng.random() * universe.height
            muts.append(Mutation("insert", next_oid + i, x, y))
    return muts


class _CacheEntryShim:
    """The attributes ``cache_survives`` reads off a real cache entry."""

    __slots__ = ("key", "response", "mbr")

    def __init__(self, key, response, universe):
        self.key = key
        self.response = response
        mbr_of = getattr(response.region, "mbr", None)
        mbr = mbr_of() if mbr_of is not None else None
        self.mbr = mbr if mbr is not None else universe


def check_semantics(kind, points: Sequence, requests: Iterable,
                    num_mutations: int = 12,
                    rng: Optional[random.Random] = None) -> None:
    """Assert the full semantics contract for ``kind`` over ``points``.

    ``kind`` is a registry kind string or a semantics instance;
    ``requests`` are concrete request objects of that type.  Raises
    ``AssertionError`` with a labelled message on the first violation.
    """
    sem = (query_semantics(kind) if isinstance(kind, str)
           else kind)
    assert isinstance(sem, QuerySemantics), sem
    assert sem.kind, "semantics must declare a kind"
    assert query_semantics(sem.kind) is sem, \
        f"{sem.kind!r} does not resolve to this semantics in the registry"

    rng = rng if rng is not None else random.Random(0)
    server = LocationServer.from_points(points)
    entries = list(server.tree.points())
    universe = server.universe
    mutations = _random_mutations(server, rng, num_mutations)

    for request in requests:
        if sem.request_type is not None:
            assert isinstance(request, sem.request_type), request
            assert query_semantics(request) is sem, \
                "request type does not resolve to this semantics"
        response = sem.execute(server, request)
        loc = sem.location(request)
        ids = _result_ids(response)

        # --- region soundness ----------------------------------------
        assert response.region.contains(loc, _EPS), \
            f"{sem.kind}: region excludes its own query location"
        must, may = sem.oracle(entries, request)
        assert must <= ids, (f"{sem.kind}: answer misses mandatory ids "
                             f"{sorted(must - ids)[:5]}")
        assert ids <= may, (f"{sem.kind}: answer has impossible ids "
                            f"{sorted(ids - may)[:5]}")

        # --- cache round-trip ----------------------------------------
        key = sem.cache_key(request)
        assert key == sem.cache_key(request), \
            f"{sem.kind}: cache key is not deterministic"
        if key is not None:
            assert key[0] == sem.kind, \
                f"{sem.kind}: cache key must lead with the kind"
            served = sem.serve_cached(request, response)
            assert _result_ids(served) == ids, \
                f"{sem.kind}: serve_cached changed the result set"

        for m in mutations:
            mutated = None

            if key is not None:
                shim = _CacheEntryShim(key, response, universe)
                if sem.cache_survives(shim, m.op, m.oid, m.x, m.y):
                    mutated = _fresh_server(points, [m])
                    fresh = sem.execute(mutated, request)
                    assert _result_ids(fresh) == ids, \
                        (f"{sem.kind}: cache_survives kept an entry the "
                         f"{m.op} of oid {m.oid} invalidates")

            # --- staleness shrink containment ------------------------
            stale = sem.stale_region(request, response, [m], universe)
            if stale is None:
                continue
            for _ in range(_PROBES):
                px = universe.xmin + rng.random() * universe.width
                py = universe.ymin + rng.random() * universe.height
                if stale.contains((px, py)):
                    assert response.region.contains((px, py), _EPS), \
                        (f"{sem.kind}: stale region grew beyond the "
                         f"original under {m.op} of oid {m.oid}")
            if stale.contains(loc):
                if mutated is None:
                    mutated = _fresh_server(points, [m])
                fresh = sem.execute(mutated, request)
                assert _result_ids(fresh) == ids, \
                    (f"{sem.kind}: stale region certifies a wrong answer "
                     f"under {m.op} of oid {m.oid}")
