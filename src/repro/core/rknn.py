"""Reverse-kNN validity queries.

A reverse-kNN query at ``q`` returns every data object ``o`` that
counts ``q`` among its own ``k`` nearest neighbours — formally,
``dist(o, q) < r_o`` where ``r_o`` is the distance from ``o`` to its
k-th nearest *data* object.  The thresholds ``r_o`` do not depend on
``q`` at all, which is what makes the query a natural fit for the
paper's validity-region contract: each member ``o`` stays a member
exactly while the client remains inside the disk ``D(o, r_o)``, so the
shipped region is the intersection of the member disks with a safety
disk around ``q`` that keeps every non-member out.

Candidates come from the classical 60-degree sector lemma: partition
the plane around ``q`` into six half-open sectors and keep the ``k``
``q``-nearest objects of each.  For any discarded object ``o`` there
are ``k`` kept objects ``c`` in its sector with ``dist(c, q) <=
dist(o, q)`` and an angle of at most 60 degrees at ``q``; the law of
cosines then gives ``dist(c, o) <= dist(o, q)``, so ``o`` already has
``k`` neighbours no farther than ``q`` — it can never be a member.
Only the (at most ``6k``) candidates need their exact k-NN distance.

The safety radius around ``q`` is the smallest of

* ``dist(c, q) - r_c`` over non-member candidates ``c`` (moving less
  keeps ``q`` outside their membership disks), and
* ``dist(o, q) - m_o`` over non-candidates ``o``, where ``m_o`` is the
  k-th smallest distance from ``o`` to the candidate set — an upper
  bound on ``r_o`` (a k-th order statistic over a subset dominates the
  one over the full set), and at most ``dist(o, q)`` by the sector
  lemma, so the slack is never negative.

Answers are computed from a point-in-time dataset snapshot (zero
simulated node accesses, like the columnar kernels); the budget is
ignored and responses are never degraded.  The result is a *set* —
entries are reported in oid order — so cached answers re-serve without
re-ranking.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.core.api import (
    QueryBudget,
    QueryDetail,
    QuerySemantics,
    register_query_type,
)
from repro.core.validity import (
    POINT_BYTES,
    CompositeValidityRegion,
    ValidityDisk,
)
from repro.geometry import Rect
from repro.index.entry import LeafEntry

__all__ = [
    "RKNNDetail",
    "RKNNRequest",
    "RKNNResponse",
    "RKNNSemantics",
    "compute_rknn_validity",
]


@dataclass(frozen=True)
class RKNNRequest:
    """A reverse-kNN query: who counts ``location`` among its k nearest?"""

    kind: ClassVar[str] = "rknn"

    location: Tuple[float, float]
    k: int = 1
    trace_id: Optional[str] = None
    #: Accepted for interface parity; reverse-kNN answers from a
    #: dataset snapshot and never degrades, so the budget is ignored.
    budget: Optional[QueryBudget] = None
    #: Replica-read staleness bound (see ``KNNRequest.max_stale``).
    max_stale: Optional[int] = None

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")


@dataclass
class RKNNDetail(QueryDetail):
    """How a reverse-kNN answer was derived (and what keeps it alive).

    ``member_knn`` maps each member oid to its sorted k smallest
    distances to other data objects — the exact competitor list the
    staleness and continuous tiers fold pending inserts into.
    ``candidates`` is the sector-filtered candidate set with
    ``candidate_radii`` their exact k-NN distances.
    """

    kind = "rknn"

    query: Tuple[float, float]
    k: int
    members: List[LeafEntry]
    member_knn: Dict[int, Tuple[float, ...]]
    candidates: Tuple[LeafEntry, ...]
    candidate_radii: Dict[int, float]
    #: Radius of the safety disk around the query point.
    safety_radius: float
    num_points: int
    degraded: bool = False

    @property
    def influence_set(self) -> List[LeafEntry]:
        member_ids = set(self.member_knn)
        return [c for c in self.candidates if c.oid not in member_ids]


@dataclass
class RKNNResponse:
    """What the server ships back for a reverse-kNN query."""

    result: List[LeafEntry]
    region: object
    detail: RKNNDetail

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + self.region.transfer_bytes()


def _distances_sq(entries, x: float, y: float, kernel=None, columns=None):
    """Squared distances from ``(x, y)`` to every entry, batched through
    the columnar kernel when one is available."""
    if (kernel is not None and columns is not None
            and getattr(kernel, "columnar", False)):
        return kernel.distances_sq(columns, x, y)
    return [(e.x - x) ** 2 + (e.y - y) ** 2 for e in entries]


def _knn_distances(entries, center: LeafEntry, k: int,
                   kernel=None, columns=None) -> List[float]:
    """The ``k`` smallest distances from ``center`` to *other* entries."""
    d2 = _distances_sq(entries, center.x, center.y,
                       kernel=kernel, columns=columns)
    smallest = heapq.nsmallest(
        k, (d2[i] for i, e in enumerate(entries) if e.oid != center.oid))
    return [math.sqrt(v) for v in smallest]


def compute_rknn_validity(entries, location, k: int, universe: Rect,
                          kernel=None, columns=None) -> RKNNDetail:
    """The reverse-kNN answer and its validity machinery at ``location``."""
    q = (float(location[0]), float(location[1]))
    entries = list(entries)
    diag = math.hypot(universe.width, universe.height)

    # 60-degree sector filter: at most 6k candidates survive.
    sectors: List[List[Tuple[float, int, LeafEntry]]] = [[] for _ in range(6)]
    dist_q: Dict[int, float] = {}
    for e in entries:
        d = math.hypot(e.x - q[0], e.y - q[1])
        dist_q[e.oid] = d
        angle = math.atan2(e.y - q[1], e.x - q[0]) % (2.0 * math.pi)
        sectors[min(int(angle / (math.pi / 3.0)), 5)].append((d, e.oid, e))
    candidates: List[LeafEntry] = []
    for bucket in sectors:
        bucket.sort()
        candidates.extend(e for _d, _o, e in bucket[:k])
    candidates.sort(key=lambda e: e.oid)
    candidate_ids = {c.oid for c in candidates}

    # Exact k-NN distance per candidate; members are strict.
    members: List[LeafEntry] = []
    member_knn: Dict[int, Tuple[float, ...]] = {}
    candidate_radii: Dict[int, float] = {}
    for c in candidates:
        knn = _knn_distances(entries, c, k, kernel=kernel, columns=columns)
        radius = knn[k - 1] if len(knn) >= k else math.inf
        candidate_radii[c.oid] = radius
        if dist_q[c.oid] < radius:
            members.append(c)
            member_knn[c.oid] = tuple(knn)

    # Safety disk around q: keep every non-member out of membership.
    slacks: List[float] = []
    for c in candidates:
        if c.oid not in member_knn:
            slacks.append(dist_q[c.oid] - candidate_radii[c.oid])
    for e in entries:
        if e.oid in candidate_ids:
            continue
        # m_o: k-th smallest distance to the candidates — an upper
        # bound on r_o, and <= dist(o, q) by the sector lemma.
        m_o = heapq.nsmallest(
            k, ((e.x - c.x) ** 2 + (e.y - c.y) ** 2 for c in candidates))
        slacks.append(dist_q[e.oid] - math.sqrt(m_o[k - 1]))
    rho = min(slacks) if slacks else diag
    rho = max(0.0, min(rho, diag))

    return RKNNDetail(
        query=q,
        k=k,
        members=members,
        member_knn=member_knn,
        candidates=tuple(candidates),
        candidate_radii=candidate_radii,
        safety_radius=rho,
        num_points=len(entries),
    )


def _detail_region(detail: RKNNDetail, universe: Rect):
    diag = math.hypot(universe.width, universe.height)
    components = [ValidityDisk(m.point,
                               min(detail.member_knn[m.oid][detail.k - 1]
                                   if len(detail.member_knn[m.oid]) >= detail.k
                                   else math.inf, diag))
                  for m in detail.members]
    components.append(ValidityDisk(detail.query, detail.safety_radius))
    if len(components) == 1:
        return components[0]
    return CompositeValidityRegion(components)


def _insert_upper_bound(candidates, k: int, x: float, y: float) -> float:
    """An upper bound on the inserted point's k-NN distance, from the
    retained candidate set (a subset of the dataset)."""
    d2 = heapq.nsmallest(
        k, ((c.x - x) ** 2 + (c.y - y) ** 2 for c in candidates))
    if len(d2) < k:
        return math.inf
    return math.sqrt(d2[k - 1])


class RKNNSemantics(QuerySemantics):
    """Reverse-kNN behind the query-type registry."""

    kind = "rknn"
    request_type = RKNNRequest
    supports_subscriptions = True

    # --- execution ----------------------------------------------------
    def execute(self, server, request):
        detail = compute_rknn_validity(
            server.dataset_entries(), request.location, request.k,
            universe=server.universe,
            kernel=getattr(server, "kernel", None),
            columns=(server._kernel_columns()
                     if hasattr(server, "_kernel_columns") else None))
        server.queries_processed += 1
        result = sorted(detail.members, key=lambda e: e.oid)
        return RKNNResponse(result=result,
                            region=_detail_region(detail, server.universe),
                            detail=detail)

    # --- cache --------------------------------------------------------
    def cache_key(self, request) -> Optional[tuple]:
        return ("rknn", request.k)

    # cache_survives stays the base False: a mutation anywhere can flip
    # an arbitrary object's k-NN threshold, so no surgical test is sound
    # without re-deriving the member radii (the staleness tier's job).

    # --- replica staleness --------------------------------------------
    def stale_region(self, request, response, pending, universe):
        detail: RKNNDetail = response.detail
        if any(m.op == "delete" for m in pending):
            return None  # a delete can only grow thresholds: members join
        loc = detail.query
        diag = math.hypot(universe.width, universe.height)
        updated: Dict[int, float] = {}
        member_knn = {oid: list(knn) for oid, knn in detail.member_knn.items()}
        slack = math.inf
        for m in pending:
            for member in detail.members:
                knn = member_knn[member.oid]
                d = math.hypot(member.x - m.x, member.y - m.y)
                if knn and len(knn) >= detail.k and d >= knn[-1]:
                    continue
                knn.append(d)
                knn.sort()
                del knn[detail.k:]
                if len(knn) >= detail.k:
                    radius = knn[detail.k - 1]
                    if math.hypot(member.x - loc[0],
                                  member.y - loc[1]) >= radius:
                        return None  # the insert evicts a member at q
                    updated[member.oid] = radius
            bound = _insert_upper_bound(detail.candidates, detail.k,
                                        m.x, m.y)
            gap = math.hypot(m.x - loc[0], m.y - loc[1]) - bound
            if gap <= 0.0:
                return None  # cannot refute the insert joining the result
            slack = min(slack, gap)
        components = [response.region]
        by_oid = {e.oid: e for e in detail.members}
        for oid, radius in updated.items():
            components.append(ValidityDisk(by_oid[oid].point,
                                           min(radius, diag)))
        components.append(ValidityDisk(loc, min(slack, diag)))
        return CompositeValidityRegion(components)

    # --- continuous ---------------------------------------------------
    def subscribe_init(self, hub, sub, request) -> None:
        response = hub.owner.answer(request)
        sub._state = _RknnSubState(request, response.detail)
        sub._needs_refresh = False
        hub._set_response(sub, list(response.result), response.region,
                          origin="subscribe")

    def continuous_apply(self, hub, sub, mutation) -> tuple:
        if mutation.op == "delete":
            return ("exhausted",)  # thresholds grow: members may join
        state: _RknnSubState = sub._state
        detail = state.detail
        loc = detail.query
        diag = math.hypot(hub.owner.universe.width,
                          hub.owner.universe.height)
        changed: List[Tuple[LeafEntry, float]] = []
        for member in detail.members:
            knn = state.member_knn[member.oid]
            d = math.hypot(member.x - mutation.x, member.y - mutation.y)
            if len(knn) >= detail.k and d >= knn[-1]:
                continue
            knn.append(d)
            knn.sort()
            del knn[detail.k:]
            if len(knn) >= detail.k:
                radius = knn[detail.k - 1]
                if math.hypot(member.x - loc[0],
                              member.y - loc[1]) >= radius:
                    return ("exhausted",)  # result changes: re-fetch
                changed.append((member, radius))
        bound = _insert_upper_bound(state.candidates, detail.k,
                                    mutation.x, mutation.y)
        gap = (math.hypot(mutation.x - loc[0], mutation.y - loc[1])
               - bound)
        if gap <= 0.0:
            return ("exhausted",)
        state.candidates.append(mutation.entry)
        region = CompositeValidityRegion(
            [sub.response.region]
            + [ValidityDisk(member.point, min(radius, diag))
               for member, radius in changed]
            + [ValidityDisk(loc, min(gap, diag))])
        return ("patch", list(sub.response.result), region)

    def continuous_move(self, hub, sub, location):
        if sub.response.region.contains(location):
            return ("serve", sub.response)
        return None

    def refetch_request(self, request, location):
        return replace(request, location=location)

    # --- oracle -------------------------------------------------------
    def oracle(self, points, request) -> Tuple[set, set]:
        eps = 1e-9
        pts = list(points)
        qx, qy = request.location
        must, may = set(), set()
        for o in pts:
            others = sorted(math.hypot(o.x - e.x, o.y - e.y)
                            for e in pts if e.oid != o.oid)
            radius = (others[request.k - 1]
                      if len(others) >= request.k else math.inf)
            d = math.hypot(o.x - qx, o.y - qy)
            if d < radius - eps:
                must.add(o.oid)
            if d < radius + eps:
                may.add(o.oid)
        return must, may


@dataclass
class _RknnSubState:
    """Server-retained reverse-kNN subscription state.

    ``member_knn`` is a mutable working copy of the members' competitor
    lists (pending inserts are folded in exactly); ``candidates`` grows
    with every applied insert so the refutation bound stays valid.
    """

    request: RKNNRequest
    detail: RKNNDetail
    member_knn: Dict[int, List[float]] = field(init=False)
    candidates: List[LeafEntry] = field(init=False)

    def __post_init__(self):
        self.member_knn = {oid: list(knn)
                           for oid, knn in self.detail.member_knn.items()}
        self.candidates = list(self.detail.candidates)


register_query_type(RKNNSemantics())
