"""Validity regions for location-based window queries (paper, Section 4).

For a window of extents ``(wx, wy)`` whose *focus* (centre) sits at
``f``, a data point ``p`` is in the result iff ``f`` lies inside the
**Minkowski region** of ``p`` — the rectangle of extents ``(wx, wy)``
centred at ``p``.  Hence the exact validity region of the focus is

    (intersection of the Minkowski regions of the inner points)
    minus (union of the Minkowski regions of the outer points).

The intersection term (the **inner validity region**) is itself a
rectangle.  Server processing (Section 4 / Figure 17):

1. a window query retrieves the result (the inner points) and yields
   the inner validity region;
2. a second query over the *marginal* rectangle — the envelope swept by
   the window while the focus roams the inner region, minus the window
   itself — retrieves the candidate outer points;
3. outer Minkowski rectangles overlapping the inner region are carved
   out.  The paper ships a **conservative rectangle** (Figure 19); the
   exact rectilinear region is also produced here for analysis.

Influence objects are the points whose Minkowski boundaries form the
edges of the *final* conservative rectangle: an outer object whose cut
removes an inner-bounded edge *replaces* that inner point in the
influence set (the Figure 33 discussion — the total stays around four,
roughly two inner plus two outer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geometry import Point, Rect, RectilinearRegion
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.window import annulus_query
from repro.core.api import BudgetClock, QueryDetail
from repro.core.validity import WindowValidityRegion

_SIDES = ("xmin", "ymin", "xmax", "ymax")


@dataclass
class WindowValidityResult(QueryDetail):
    """Everything the server computes for one location-based window query.

    The canonical :class:`~repro.core.api.QueryDetail` for ``kind ==
    "window"`` (exported as ``WindowDetail``).
    """

    kind = "window"

    focus: Point
    window: Rect
    result: List[LeafEntry]
    inner_influence: List[LeafEntry]
    outer_influence: List[LeafEntry]
    #: Intersection of inner Minkowski regions, clipped to the universe.
    inner_region: Rect
    #: The rectangle shipped to the client (Figure 19).
    conservative_region: Rect
    #: Ground-truth region (inner region minus outer Minkowski holes).
    exact_region: RectilinearRegion
    #: True when the hole count exceeded ``exact_region_hole_cap`` and
    #: ``exact_region`` was downgraded to the conservative rectangle (a
    #: sound under-approximation).  Happens only for degenerate queries —
    #: e.g. an empty window whose inner region is the whole universe.
    exact_region_is_lower_bound: bool = False
    #: True when the query budget ran out before the influence query:
    #: the window result is exact, but the shipped region collapsed to
    #: the focus point (the client re-queries on any movement).
    degraded: bool = False

    @property
    def influence_set(self) -> List[LeafEntry]:
        return self.inner_influence + self.outer_influence

    @property
    def num_influence_objects(self) -> int:
        return len(self.inner_influence) + len(self.outer_influence)

    def validity_region(self) -> WindowValidityRegion:
        return WindowValidityRegion(self.conservative_region)


def compute_window_validity(tree: RStarTree, focus, width: float, height: float,
                            universe: Optional[Rect] = None,
                            result_phase: str = "result",
                            influence_phase: str = "influence",
                            exact_region_hole_cap: int = 1024,
                            empty_window_region_factor: float = 3.0,
                            clock: Optional[BudgetClock] = None
                            ) -> WindowValidityResult:
    """Process a location-based window query end to end.

    ``exact_region_hole_cap`` bounds the cost of materializing the exact
    (diagnostic) region; beyond it the conservative rectangle is used as
    a sound lower bound and ``exact_region_is_lower_bound`` is set.  The
    shipped validity region is unaffected.

    ``empty_window_region_factor``: when the window is empty its exact
    inner region is the whole universe, which would force the influence
    query to scan the entire dataset.  The inner region is instead
    capped to ``factor x`` the window extents around the focus — a
    smaller validity region is always sound, and the influence query
    stays local.  Pass ``math.inf`` to disable the cap.

    ``clock``: a running query-budget clock.  When it is exhausted after
    the result retrieval, the influence query is skipped and the
    response **degrades**: the result is still exact, but — with the
    outer Minkowski holes unknown — the only sound validity region is
    the focus point itself, so the shipped rectangle collapses to it.
    """
    if width <= 0 or height <= 0:
        raise ValueError("window extents must be positive")
    if universe is None:
        universe = tree.root.mbr
    focus = Point(float(focus[0]), float(focus[1]))
    window = Rect.around(focus, width, height)

    with tree.disk.phase(result_phase):
        inner = tree.window(window)

    if clock is not None and clock.exhausted():
        point_rect = Rect(focus.x, focus.y, focus.x, focus.y)
        return WindowValidityResult(
            focus=focus,
            window=window,
            result=inner,
            inner_influence=[],
            outer_influence=[],
            inner_region=point_rect,
            conservative_region=point_rect,
            exact_region=RectilinearRegion(point_rect),
            exact_region_is_lower_bound=True,
            degraded=True,
        )

    inner_region, side_blockers = _inner_validity(
        focus, window, inner, universe, empty_window_region_factor)

    # Envelope swept by the window while the focus roams the inner region.
    extended = Rect(
        window.xmin - (focus.x - inner_region.xmin),
        window.ymin - (focus.y - inner_region.ymin),
        window.xmax + (inner_region.xmax - focus.x),
        window.ymax + (inner_region.ymax - focus.y),
    )
    with tree.disk.phase(influence_phase):
        candidates = annulus_query(tree, extended, window)

    holes = []
    for e in candidates:
        mink = Rect.around((e.x, e.y), width, height)
        overlap = mink.intersection(inner_region)
        if overlap is not None and overlap.area() > 0.0:
            holes.append((e, mink))

    conservative, cuts = _conservative_cut(focus, inner_region, holes)
    inner_influence, outer_influence = _attribute_influence(
        conservative, inner_region, side_blockers, cuts)

    capped = len(holes) > exact_region_hole_cap
    if capped:
        exact = RectilinearRegion(conservative)
    else:
        exact = RectilinearRegion(inner_region, [mink for _, mink in holes])

    return WindowValidityResult(
        focus=focus,
        window=window,
        result=inner,
        inner_influence=inner_influence,
        outer_influence=outer_influence,
        inner_region=inner_region,
        conservative_region=conservative,
        exact_region=exact,
        exact_region_is_lower_bound=capped,
    )


def _inner_validity(focus: Point, window: Rect, inner: List[LeafEntry],
                    universe: Rect, empty_factor: float = math.inf
                    ) -> Tuple[Rect, Dict[str, List[LeafEntry]]]:
    """Intersection of inner Minkowski regions + the blockers per side.

    Equivalently (and cheaper): the focus may travel right until the
    window's left edge hits the leftmost inner point, etc.  A side that
    is bounded by the universe instead of a point has no blockers.
    """
    if not inner:
        no_blockers = {side: [] for side in _SIDES}
        if math.isinf(empty_factor):
            return universe, no_blockers
        capped = Rect.around(focus, empty_factor * window.width,
                             empty_factor * window.height)
        region = capped.intersection(universe)
        if region is None:
            region = Rect(focus.x, focus.y, focus.x, focus.y)
        return region, no_blockers
    slack_right = min(e.x - window.xmin for e in inner)
    slack_left = min(window.xmax - e.x for e in inner)
    slack_up = min(e.y - window.ymin for e in inner)
    slack_down = min(window.ymax - e.y for e in inner)
    unclipped = Rect(focus.x - slack_left, focus.y - slack_down,
                     focus.x + slack_right, focus.y + slack_up)
    region = unclipped.intersection(universe)
    if region is None:  # focus outside the universe: degenerate but legal
        region = Rect(focus.x, focus.y, focus.x, focus.y)

    blockers: Dict[str, List[LeafEntry]] = {side: [] for side in _SIDES}
    if region.xmax == unclipped.xmax:
        blockers["xmax"] = [e for e in inner
                            if e.x - window.xmin == slack_right]
    if region.xmin == unclipped.xmin:
        blockers["xmin"] = [e for e in inner
                            if window.xmax - e.x == slack_left]
    if region.ymax == unclipped.ymax:
        blockers["ymax"] = [e for e in inner
                            if e.y - window.ymin == slack_up]
    if region.ymin == unclipped.ymin:
        blockers["ymin"] = [e for e in inner
                            if window.ymax - e.y == slack_down]
    return region, blockers


def _conservative_cut(focus: Point, inner_region: Rect,
                      holes: List[Tuple[LeafEntry, Rect]]
                      ) -> Tuple[Rect, List[Tuple[LeafEntry, str, float]]]:
    """Shrink the inner region to a hole-free rectangle (Figure 19).

    Each overlapping outer Minkowski rectangle is removed by moving one
    edge of the current rectangle; among the cuts that keep the focus
    inside, the one preserving the most area is chosen.  Holes are
    processed largest-overlap-first so dominating obstacles are handled
    before slivers they may already cover.  Returns the final rectangle
    and the applied cuts (entry, side, new coordinate).

    Both the processing order and the per-hole cut choice are decided on
    *normalized, quantized* areas with deterministic tie-breaks (object
    id, fixed side priority).  Raw float areas would leave ties — e.g.
    several Minkowski rectangles fully inside the inner region all
    overlap by exactly the window area — to be broken by tree-traversal
    order, which is not invariant under translating/scaling the
    instance.
    """
    region = inner_region
    cuts: List[Tuple[LeafEntry, str, float]] = []
    norm = inner_region.area() or 1.0

    def _hole_key(hole: Tuple[LeafEntry, Rect]) -> Tuple[float, int]:
        entry, mink = hole
        return (-round(mink.overlap_area(inner_region) / norm, 9), entry.oid)

    for entry, mink in sorted(holes, key=_hole_key):
        overlap = mink.intersection(region)
        if overlap is None or overlap.area() <= 0.0:
            continue  # an earlier cut already removed this hole
        candidates = []
        if mink.xmin >= focus.x:
            candidates.append(("xmax", Rect(region.xmin, region.ymin,
                                            mink.xmin, region.ymax)))
        if mink.xmax <= focus.x:
            candidates.append(("xmin", Rect(mink.xmax, region.ymin,
                                            region.xmax, region.ymax)))
        if mink.ymin >= focus.y:
            candidates.append(("ymax", Rect(region.xmin, region.ymin,
                                            region.xmax, mink.ymin)))
        if mink.ymax <= focus.y:
            candidates.append(("ymin", Rect(region.xmin, mink.ymax,
                                            region.xmax, region.ymax)))
        # The focus is never inside an outer Minkowski rectangle, so at
        # least one cut direction is always available.
        side, region = max(
            candidates,
            key=lambda c: (round(c[1].area() / norm, 9),
                           -_SIDES.index(c[0])))
        cuts.append((entry, side, getattr(region, side)))
    return region, cuts


def _attribute_influence(final: Rect, inner_region: Rect,
                         side_blockers: Dict[str, List[LeafEntry]],
                         cuts: List[Tuple[LeafEntry, str, float]]
                         ) -> Tuple[List[LeafEntry], List[LeafEntry]]:
    """Map each edge of the final rectangle to its influence object(s).

    An edge belongs to the outer object whose cut produced its final
    coordinate; failing that, to the inner blockers of the original
    inner-region side (when that side survived uncut); failing that, to
    the universe boundary (no influence object).
    """
    outer: List[LeafEntry] = []
    inner: List[LeafEntry] = []
    seen_outer: set = set()
    seen_inner: set = set()
    for side in _SIDES:
        value = getattr(final, side)
        cut_entries = [e for e, s, v in cuts if s == side and v == value]
        if cut_entries:
            for e in cut_entries:
                if e.oid not in seen_outer:
                    seen_outer.add(e.oid)
                    outer.append(e)
        elif value == getattr(inner_region, side):
            for e in side_blockers[side]:
                if e.oid not in seen_inner:
                    seen_inner.add(e.oid)
                    inner.append(e)
    return inner, outer
