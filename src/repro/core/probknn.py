"""Probabilistic kNN under client location uncertainty.

The client does not know its position exactly — only that it lies in a
disk of radius ``uncertainty`` around a reported ``location``.  A
probabilistic kNN query returns every object that could possibly be
among the ``k`` nearest for *some* position in the disk, annotated with
a conservative membership probability and a three-way band:

* ``certain`` — the object is in the top-k for **every** position in
  the disk (fewer than ``k`` competitors can undercut it even in the
  worst case: ``#{j : d_j < d_o + 2u} <= k - 1``);
* ``likely`` — estimated membership probability at least one half
  (``d_o <= D_k + u``);
* ``possible`` — everything else within the candidate horizon.

With ``d_o`` the distance from the reported centre to object ``o``,
``D_k`` the k-th smallest such distance and ``u`` the uncertainty
radius, the candidate horizon is ``d_o <= D_k + 2u``: any object
farther than that is beaten by ``k`` others at every disk position
(the true position moves every distance by at most ``u``).  The
probability estimate ``p_o = clamp((D_k + 2u - d_o) / 2u, 0, 1)``
linearizes the overlap of the horizon with the uncertainty disk — a
deliberately simple, monotone surrogate; the *bands* carry the
guarantees.

The shipped validity region is an annulus (degenerating to a disk)
around the reported centre: wherever the centre stays within the
region, the candidate set, the band labels and the distance ordering
of the candidates are all unchanged, because every slack that could
flip one of those decisions is at least twice the region radius (each
comparand moves by at most the displacement, including the order
statistic ``D_k``).  Numeric probabilities drift continuously and are
recomputable client-side.

Like reverse-kNN, answers come from a dataset snapshot: zero simulated
node accesses, budgets ignored, never degraded.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.core.api import (
    QueryBudget,
    QueryDetail,
    QuerySemantics,
    register_query_type,
)
from repro.core.validity import POINT_BYTES, AnnulusValidityRegion
from repro.geometry import Rect
from repro.index.entry import LeafEntry

__all__ = [
    "ProbKNNDetail",
    "ProbKNNRequest",
    "ProbKNNResponse",
    "ProbKNNSemantics",
    "compute_probknn_validity",
]


@dataclass(frozen=True)
class ProbKNNRequest:
    """A kNN query under a location-uncertainty disk."""

    kind: ClassVar[str] = "probknn"

    location: Tuple[float, float]
    #: Radius of the client's location-uncertainty disk (> 0).
    uncertainty: float
    k: int = 1
    trace_id: Optional[str] = None
    #: Accepted for interface parity; snapshot-answered, never degraded.
    budget: Optional[QueryBudget] = None
    #: Replica-read staleness bound (see ``KNNRequest.max_stale``).
    max_stale: Optional[int] = None

    def __post_init__(self):
        if self.uncertainty <= 0:
            raise ValueError("uncertainty must be positive")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be non-negative")


@dataclass
class ProbKNNDetail(QueryDetail):
    """The probability-ranked candidate horizon of a probabilistic kNN.

    ``distances``, ``probabilities`` and ``bands`` align with the
    response's result list (sorted by centre distance, ties by oid).
    """

    kind = "probknn"

    query: Tuple[float, float]
    k: int
    uncertainty: float
    #: k-th smallest centre distance over the whole dataset.
    kth_distance: float
    distances: Tuple[float, ...]
    probabilities: Tuple[float, ...]
    bands: Tuple[str, ...]
    #: Radius of the shipped annulus region.
    safety_radius: float
    num_points: int
    degraded: bool = False


@dataclass
class ProbKNNResponse:
    """What the server ships back for a probabilistic kNN query."""

    result: List[LeafEntry]
    region: AnnulusValidityRegion
    detail: ProbKNNDetail

    def transfer_bytes(self) -> int:
        # One 8-byte probability + 1-byte band tag rides with each point.
        return ((POINT_BYTES + 9) * len(self.result)
                + self.region.transfer_bytes())


def compute_probknn_validity(entries, location, uncertainty: float, k: int,
                             universe: Rect, kernel=None,
                             columns=None) -> Tuple[List[LeafEntry],
                                                    ProbKNNDetail]:
    """The probabilistic kNN candidates and detail at ``location``."""
    center = (float(location[0]), float(location[1]))
    u = float(uncertainty)
    entries = list(entries)
    diag = math.hypot(universe.width, universe.height)
    if (kernel is not None and columns is not None
            and getattr(kernel, "columnar", False)):
        d2 = kernel.distances_sq(columns, center[0], center[1])
        dist = [math.sqrt(v) for v in d2]
    else:
        dist = [math.hypot(e.x - center[0], e.y - center[1])
                for e in entries]
    if not entries:
        detail = ProbKNNDetail(
            query=center, k=k, uncertainty=u, kth_distance=math.inf,
            distances=(), probabilities=(), bands=(),
            safety_radius=diag, num_points=0)
        return [], detail

    order = sorted(range(len(entries)), key=lambda i: (dist[i],
                                                       entries[i].oid))
    sorted_d = sorted(dist)
    d_k = sorted_d[min(k, len(entries)) - 1]
    horizon = d_k + 2.0 * u

    result: List[LeafEntry] = []
    distances: List[float] = []
    probabilities: List[float] = []
    bands: List[str] = []
    slacks: List[float] = []
    for i in order:
        d_o = dist[i]
        if d_o > horizon:
            slacks.append(d_o - horizon)
            continue
        result.append(entries[i])
        distances.append(d_o)
        slacks.append(horizon - d_o)
        # Competitors that can undercut o somewhere in the disk.
        rivals = bisect.bisect_left(sorted_d, d_o + 2.0 * u) - 1
        if rivals <= k - 1:
            bands.append("certain")
        elif d_o <= d_k + u:
            bands.append("likely")
        else:
            bands.append("possible")
        probabilities.append(min(1.0, max(0.0,
                                          (horizon - d_o) / (2.0 * u))))
        # Band-flip slacks: the nearest competitor distance to the
        # certain threshold, and the likely threshold itself.
        t = d_o + 2.0 * u
        j = bisect.bisect_left(sorted_d, t)
        if j < len(sorted_d):
            slacks.append(sorted_d[j] - t)
        if j > 0:
            slacks.append(t - sorted_d[j - 1])
        slacks.append(abs(d_o - (d_k + u)))
    # Ordering slacks: adjacent candidate distance gaps.
    for a, b in zip(distances, distances[1:]):
        slacks.append(b - a)

    rho = min(slacks) / 2.0 if slacks else diag
    rho = max(0.0, min(rho, diag))
    detail = ProbKNNDetail(
        query=center, k=k, uncertainty=u, kth_distance=d_k,
        distances=tuple(distances), probabilities=tuple(probabilities),
        bands=tuple(bands), safety_radius=rho, num_points=len(entries))
    return result, detail


class ProbKNNSemantics(QuerySemantics):
    """Probabilistic kNN behind the query-type registry."""

    kind = "probknn"
    request_type = ProbKNNRequest
    supports_subscriptions = True

    # --- execution ----------------------------------------------------
    def execute(self, server, request):
        result, detail = compute_probknn_validity(
            server.dataset_entries(), request.location,
            request.uncertainty, request.k, universe=server.universe,
            kernel=getattr(server, "kernel", None),
            columns=(server._kernel_columns()
                     if hasattr(server, "_kernel_columns") else None))
        server.queries_processed += 1
        region = AnnulusValidityRegion(detail.query, 0.0,
                                       detail.safety_radius)
        return ProbKNNResponse(result=result, region=region, detail=detail)

    # --- cache --------------------------------------------------------
    def cache_key(self, request) -> Optional[tuple]:
        return ("probknn", request.k, request.uncertainty)

    def cache_survives(self, entry, op, oid, x, y) -> bool:
        detail: ProbKNNDetail = entry.response.detail
        slack = self._mutation_slack(detail, op,
                                     {e.oid for e in entry.response.result},
                                     oid, x, y)
        # Surviving in place means the cached region stays sound as-is.
        return (slack is not None
                and slack / 2.0 >= detail.safety_radius)

    @staticmethod
    def _mutation_slack(detail: ProbKNNDetail, op: str, result_ids,
                        oid: int, x: float, y: float) -> Optional[float]:
        """How far (before halving) the mutated point stays clear of
        every decision boundary, or ``None`` when it crosses one."""
        cx, cy = detail.query
        d_m = math.hypot(x - cx, y - cy)
        horizon = detail.kth_distance + 2.0 * detail.uncertainty
        if op == "delete":
            if oid in result_ids:
                return None  # a candidate vanishes: the result changes
            # A far delete must stay outside every certain-band count.
            slack = d_m - horizon
            for d_o in detail.distances:
                slack = min(slack, d_m - (d_o + 2.0 * detail.uncertainty))
            return slack if slack > 0.0 else None
        slack = d_m - horizon
        for d_o in detail.distances:
            slack = min(slack, d_m - (d_o + 2.0 * detail.uncertainty))
        return slack if slack > 0.0 else None

    # --- replica staleness --------------------------------------------
    def stale_region(self, request, response, pending, universe):
        detail: ProbKNNDetail = response.detail
        result_ids = {e.oid for e in response.result}
        rho = detail.safety_radius
        for m in pending:
            slack = self._mutation_slack(detail, m.op, result_ids,
                                         m.oid, m.x, m.y)
            if slack is None:
                return None
            rho = min(rho, slack / 2.0)
        if rho == detail.safety_radius:
            return response.region
        return AnnulusValidityRegion(detail.query, 0.0, max(rho, 0.0))

    # --- continuous ---------------------------------------------------
    def subscribe_init(self, hub, sub, request) -> None:
        response = hub.owner.answer(request)
        sub._state = response.detail
        sub._needs_refresh = False
        hub._set_response(sub, list(response.result), response.region,
                          origin="subscribe")

    def continuous_apply(self, hub, sub, mutation) -> tuple:
        detail: ProbKNNDetail = sub._state
        result_ids = {e.oid for e in sub.response.result}
        slack = self._mutation_slack(detail, mutation.op, result_ids,
                                     mutation.oid, mutation.x, mutation.y)
        if slack is None:
            return ("exhausted",)
        rho = min(sub.response.region.outer, slack / 2.0)
        if rho >= sub.response.region.outer:
            return ("skip",)  # the old region already keeps it clear
        region = AnnulusValidityRegion(detail.query, 0.0, max(rho, 0.0))
        return ("patch", list(sub.response.result), region)

    def continuous_move(self, hub, sub, location):
        # Stored distances are centre-relative: a new centre means a
        # fresh computation, so every move takes the escape hatch.
        return None

    def refetch_request(self, request, location):
        return replace_location(request, location)

    # --- oracle -------------------------------------------------------
    def oracle(self, points, request) -> Tuple[set, set]:
        eps = 1e-9
        pts = list(points)
        cx, cy = request.location
        u = request.uncertainty
        ds = sorted(math.hypot(e.x - cx, e.y - cy) for e in pts)
        if not ds:
            return set(), set()
        d_k = ds[min(request.k, len(ds)) - 1]
        horizon = d_k + 2.0 * u
        must, may = set(), set()
        for e in pts:
            d = math.hypot(e.x - cx, e.y - cy)
            if d < horizon - eps:
                must.add(e.oid)
            if d <= horizon + eps:
                may.add(e.oid)
        return must, may


def replace_location(request: ProbKNNRequest,
                     location) -> ProbKNNRequest:
    from dataclasses import replace
    return replace(request, location=(float(location[0]),
                                      float(location[1])))


register_query_type(ProbKNNSemantics())
