"""The mobile client: caching, validity checking, local re-answering.

The client keeps the latest response and, on every position update,
first checks whether it is still inside the cached validity region.
If so, the cached result is re-used (for kNN the *set* is unchanged but
the ordering may not be — the client re-sorts the k cached points by
distance, a trivial local computation); otherwise a fresh query goes to
the server.  :class:`ClientStats` records exactly the savings the
paper's motivation claims.

With ``incremental=True`` the client uses the delta protocol of the
paper's Section 7 on re-queries: the server ships only the objects
added and the ids removed relative to the cached result, which the
client applies locally — same answers, fewer bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geometry import distance_sq
from repro.index.entry import LeafEntry
from repro.core.server import (
    DeltaResponse,
    KNNResponse,
    LocationServer,
    RangeResponse,
    WindowResponse,
)


@dataclass
class ClientStats:
    """Protocol accounting for one client session."""

    position_updates: int = 0
    server_queries: int = 0
    cache_answers: int = 0
    bytes_received: int = 0

    @property
    def query_saving(self) -> float:
        """Fraction of position updates answered without the server."""
        if self.position_updates == 0:
            return 0.0
        return self.cache_answers / self.position_updates


class MobileClient:
    """A location-aware client talking to a :class:`LocationServer`."""

    def __init__(self, server: LocationServer, incremental: bool = False):
        self.server = server
        self.incremental = incremental
        self.stats = ClientStats()
        # Caches carry the server epoch they were computed under; a
        # bumped epoch (dataset update) invalidates them.
        self._knn_cache: Optional[Tuple[int, KNNResponse, List[LeafEntry],
                                        int]] = None
        self._window_cache: Optional[
            Tuple[float, float, WindowResponse, List[LeafEntry], int]] = None
        self._range_cache: Optional[Tuple[float, RangeResponse, int]] = None

    # ------------------------------------------------------------------
    # kNN
    # ------------------------------------------------------------------
    def knn(self, location, k: int = 1) -> List[LeafEntry]:
        """The k nearest neighbours at ``location``, nearest first.

        Served locally whenever the cached validity region still covers
        the location (and the cached ``k`` matches).
        """
        self.stats.position_updates += 1
        cached = self._knn_cache
        if cached is not None and cached[3] != self.server.epoch:
            cached = self._knn_cache = None
        if cached is not None:
            cached_k, response, entries, _ = cached
            if cached_k == k and response.region.contains(location):
                self.stats.cache_answers += 1
                return _sorted_by_distance(entries, location)
        if self.incremental and cached is not None and cached[0] == k:
            delta = self.server.knn_query_delta(
                location, k, (e.oid for e in cached[2]))
            entries = _apply_delta(cached[2], delta)
            response = delta.full
            self.stats.bytes_received += delta.transfer_bytes()
        else:
            response = self.server.knn_query(location, k=k)
            entries = list(response.neighbors)
            self.stats.bytes_received += response.transfer_bytes()
        self.stats.server_queries += 1
        self._knn_cache = (k, response, entries, self.server.epoch)
        return _sorted_by_distance(entries, location)

    # ------------------------------------------------------------------
    # window
    # ------------------------------------------------------------------
    def window(self, focus, width: float, height: float) -> List[LeafEntry]:
        """The window result for a window of fixed extents at ``focus``."""
        self.stats.position_updates += 1
        cached = self._window_cache
        if cached is not None and cached[4] != self.server.epoch:
            cached = self._window_cache = None
        if cached is not None:
            cw, ch, response, entries, _ = cached
            if (cw, ch) == (width, height) and response.region.contains(focus):
                self.stats.cache_answers += 1
                return list(entries)
        if (self.incremental and cached is not None
                and (cached[0], cached[1]) == (width, height)):
            delta = self.server.window_query_delta(
                focus, width, height, (e.oid for e in cached[3]))
            entries = _apply_delta(cached[3], delta)
            response = delta.full
            self.stats.bytes_received += delta.transfer_bytes()
        else:
            response = self.server.window_query(focus, width, height)
            entries = list(response.result)
            self.stats.bytes_received += response.transfer_bytes()
        self.stats.server_queries += 1
        self._window_cache = (width, height, response, entries,
                              self.server.epoch)
        return list(entries)

    # ------------------------------------------------------------------
    # circular range (§7 extension)
    # ------------------------------------------------------------------
    def range(self, location, radius: float) -> List[LeafEntry]:
        """All objects within ``radius`` of ``location``."""
        self.stats.position_updates += 1
        cached = self._range_cache
        if cached is not None and cached[2] != self.server.epoch:
            cached = self._range_cache = None
        if cached is not None:
            cr, response, _ = cached
            if cr == radius and response.region.contains(location):
                self.stats.cache_answers += 1
                return list(response.result)
        response = self.server.range_query(location, radius)
        self.stats.server_queries += 1
        self.stats.bytes_received += response.transfer_bytes()
        self._range_cache = (radius, response, self.server.epoch)
        return list(response.result)

    def invalidate_cache(self) -> None:
        self._knn_cache = None
        self._window_cache = None
        self._range_cache = None


def _sorted_by_distance(entries: List[LeafEntry], location) -> List[LeafEntry]:
    return sorted(entries,
                  key=lambda e: distance_sq((e.x, e.y), location))


def _apply_delta(previous: List[LeafEntry],
                 delta: DeltaResponse) -> List[LeafEntry]:
    removed = set(delta.removed_ids)
    entries = [e for e in previous if e.oid not in removed]
    entries.extend(delta.added)
    return entries
