"""The mobile client: caching, validity checking, local re-answering.

The client keeps the latest response and, on every position update,
first checks whether it is still inside the cached validity region.
If so, the cached result is re-used (for kNN the *set* is unchanged but
the ordering may not be — the client re-sorts the k cached points by
distance, a trivial local computation); otherwise a fresh query goes to
the server.  :class:`ClientStats` records exactly the savings the
paper's motivation claims.

With ``incremental=True`` the client uses the delta protocol of the
paper's Section 7 on re-queries: the server ships only the objects
added and the ids removed relative to the cached result, which the
client applies locally — same answers, fewer bytes.

With ``subscribe=True`` (and a server exposing ``subscribe``, such as
:class:`~repro.service.service.QueryService` or
:class:`~repro.service.replica.ReplicaSet`) the client registers each
query kind as a **continuous query**: the server pushes O(delta)
patches or invalidations over the subscription's bounded queue
whenever the dataset mutates, and the client drains them on every
position update — so mutations refresh the cache instead of killing
it.  Leaving the validity region calls ``move()`` on the subscription,
which the server repairs from its retained candidate margin whenever
that is provably sound, again without touching the index.

With ``max_stale`` set, the client degrades gracefully when the server
fails transiently (simulated page-read errors, an open circuit
breaker): instead of raising, it serves the last cached result for the
same query, provided its server epoch lags the current one by at most
``max_stale`` updates.  Stale answers are flagged — counted in
:attr:`ClientStats.stale_answers` and visible via
:attr:`MobileClient.last_served` / :attr:`MobileClient.last_staleness`
— so callers can always distinguish a fresh answer from a best-effort
one.

All three query types go through the typed request objects of
:mod:`repro.core.api` and one generic cache — a :class:`CacheEntry` per
query kind — so the per-type methods only differ in how they build the
request and post-process the entries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.geometry import distance_sq
from repro.index.entry import LeafEntry
from repro.core.api import KNNRequest, QueryResponse, RangeRequest, WindowRequest
from repro.core.server import DeltaResponse, LocationServer
from repro.obs.context import new_trace_id


@dataclass
class ClientStats:
    """Protocol accounting for one client session."""

    position_updates: int = 0
    server_queries: int = 0
    cache_answers: int = 0
    bytes_received: int = 0
    #: Updates answered from a stale cache because the server failed.
    stale_answers: int = 0
    #: Server pushes applied to the cache (subscription mode).
    pushes_applied: int = 0
    #: Region exits repaired via ``subscription.move()`` (these also
    #: count as ``server_queries``; most cost zero node accesses).
    subscription_moves: int = 0

    @property
    def query_saving(self) -> float:
        """Fraction of position updates answered without the server."""
        if self.position_updates == 0:
            return 0.0
        return self.cache_answers / self.position_updates

    #: Alias under the service-layer name.
    cache_hit_ratio = query_saving


@dataclass
class CacheEntry:
    """One cached server response, shared by all three query types.

    ``key`` is the query-parameter tuple the response answers (``(k,)``
    for kNN, ``(width, height)`` for window, ``(radius,)`` for range);
    ``entries`` is the client's working copy of the result set — under
    the delta protocol it is patched in place of a full re-transfer;
    ``epoch`` is the server epoch the validity region was computed
    under, so a dataset update invalidates the entry.
    """

    key: Tuple
    response: QueryResponse
    entries: List[LeafEntry]
    epoch: int
    trace_id: Optional[str] = None

    def answers(self, key: Tuple, location) -> bool:
        """Can this entry answer a query with ``key`` at ``location``?"""
        return self.key == key and self.response.region.contains(location)


class MobileClient:
    """A location-aware client talking to a :class:`LocationServer`.

    ``metrics`` optionally names a metrics registry (duck-typed; see
    :class:`repro.service.metrics.MetricsRegistry`) into which the
    client reports ``client.*`` counters alongside its local
    :class:`ClientStats`.
    """

    def __init__(self, server: LocationServer, incremental: bool = False,
                 metrics=None, max_stale: Optional[int] = None,
                 subscribe: bool = False):
        if max_stale is not None and max_stale < 0:
            raise ValueError("max_stale must be None or >= 0")
        if subscribe and not hasattr(server, "subscribe"):
            raise ValueError(
                "subscribe=True needs a server with a subscribe() method "
                "(a QueryService or ReplicaSet)")
        self.server = server
        self.incremental = incremental
        self.subscribed = subscribe
        self.stats = ClientStats()
        self.metrics = metrics
        #: Maximum server-epoch lag a fallback answer may have; ``None``
        #: disables graceful degradation (server errors propagate).
        self.max_stale = max_stale
        #: How the last update was answered: "cache", "server" or "stale".
        self.last_served: Optional[str] = None
        #: Epoch lag of the last stale answer (0 for fresh answers).
        self.last_staleness: int = 0
        #: One entry per query kind, opened on first use — any kind the
        #: registry knows (including third-party ones) caches here.
        self._caches: Dict[str, Optional[CacheEntry]] = {}
        #: Live subscriptions per query kind (subscription mode only).
        self._subs: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # the per-type entry points
    # ------------------------------------------------------------------
    def knn(self, location, k: int = 1) -> List[LeafEntry]:
        """The k nearest neighbours at ``location``, nearest first.

        Served locally whenever the cached validity region still covers
        the location (and the cached ``k`` matches).
        """
        entries = self._answer("knn", (k,), location,
                               KNNRequest(_point(location), k=k))
        return _sorted_by_distance(entries, location)

    def window(self, focus, width: float, height: float) -> List[LeafEntry]:
        """The window result for a window of fixed extents at ``focus``."""
        entries = self._answer("window", (width, height), focus,
                               WindowRequest(_point(focus), width, height))
        return list(entries)

    def range(self, location, radius: float) -> List[LeafEntry]:
        """All objects within ``radius`` of ``location`` (§7 extension)."""
        entries = self._answer("range", (radius,), location,
                               RangeRequest(_point(location), radius))
        return list(entries)

    def rknn(self, location, k: int = 1) -> List[LeafEntry]:
        """The objects that count ``location`` among their own k nearest
        (reverse kNN), cached under its bisector-fenced region."""
        from repro.core.rknn import RKNNRequest
        entries = self._answer("rknn", (k,), location,
                               RKNNRequest(_point(location), k=k))
        return list(entries)

    def probknn(self, location, uncertainty: float,
                k: int = 1) -> List[LeafEntry]:
        """The probabilistic kNN candidates for an uncertain location
        (a disk of radius ``uncertainty``), cached under the
        probability-banded annulus region."""
        from repro.core.probknn import ProbKNNRequest
        entries = self._answer(
            "probknn", (uncertainty, k), location,
            ProbKNNRequest(_point(location), uncertainty=uncertainty, k=k))
        return list(entries)

    def invalidate_cache(self) -> None:
        for kind in self._caches:
            self._caches[kind] = None

    def cache_entry(self, kind: str) -> Optional[CacheEntry]:
        """The live cache entry for ``kind``, or ``None``."""
        return self._caches.get(kind)

    # ------------------------------------------------------------------
    # the generic protocol
    # ------------------------------------------------------------------
    def _answer(self, kind: str, key: Tuple, location,
                request) -> List[LeafEntry]:
        """Cache check → (delta or full) server query → cache refresh.

        Returns the client's entry list for the query; callers must copy
        before handing it out (it is the cached working set).
        """
        self.stats.position_updates += 1
        self._count("client.position_updates")
        # The client is the edge of the pipeline: it mints the trace id
        # the service and every layer below will correlate under.
        if request.trace_id is None:
            request = replace(request, trace_id=new_trace_id())
        cached = self._caches.get(kind)
        # Keep a reference to an epoch-stale entry: it cannot answer
        # normally, but it is the fallback if the server fails.
        fallback = cached
        if self.subscribed:
            # Subscription mode: pushes (drained below) keep the cache
            # epoch-correct, so the epoch drop does not apply.
            try:
                return self._answer_subscribed(kind, key, location, request)
            except Exception as exc:
                return self._stale_fallback(key, fallback, exc)
        if cached is not None and cached.epoch != self.server.epoch:
            # Dataset changed under us: the region (and the delta base)
            # are both unusable.
            cached = self._caches[kind] = None
        if cached is not None and cached.answers(key, location):
            self.stats.cache_answers += 1
            self._count("client.cache_answers")
            self._event("client.cache_answer", kind=kind,
                        trace_id=cached.trace_id)
            self.last_served = "cache"
            self.last_staleness = 0
            return cached.entries
        try:
            if (self.incremental and cached is not None
                    and cached.key == key and hasattr(request, "as_delta")):
                delta: DeltaResponse = self.server.answer(
                    request.as_delta(e.oid for e in cached.entries))
                entries = _apply_delta(cached.entries, delta)
                response = delta.full
                received = delta.transfer_bytes()
            else:
                response = self.server.answer(request)
                entries = list(response.result)
                received = response.transfer_bytes()
        except Exception as exc:
            return self._stale_fallback(key, fallback, exc)
        self.stats.server_queries += 1
        self.stats.bytes_received += received
        self._count("client.server_queries")
        self._count("client.bytes_received", received)
        self._caches[kind] = CacheEntry(
            key=key, response=response, entries=entries,
            epoch=self.server.epoch, trace_id=request.trace_id)
        self.last_served = "server"
        self.last_staleness = 0
        return entries

    def _answer_subscribed(self, kind: str, key: Tuple, location,
                           request) -> List[LeafEntry]:
        """The pub/sub protocol: drain pushes → cache check → move().

        The subscription's queue is drained first; its *last* update is
        authoritative (every push carries full state), refreshing or
        invalidating the cache.  A cache miss (the client left the
        region) becomes ``subscription.move()`` — repaired server-side
        from the candidate margin when sound, a full re-query
        otherwise.  Broken or shape-changed subscriptions are closed
        and re-established.
        """
        pair = self._subs.get(kind)
        sub = None
        if pair is not None:
            sub_key, sub = pair
            if sub_key != key or sub.broken or sub.closed:
                sub.close()
                del self._subs[kind]
                self._caches[kind] = None
                sub = None
        if sub is None:
            sub = self.server.subscribe(request)
            self._subs[kind] = (key, sub)
            self._event("client.subscribe", kind=kind,
                        trace_id=request.trace_id)
            return self._refresh_subscribed(kind, key, sub.response,
                                            request.trace_id)
        updates = sub.drain()
        if updates:
            self.stats.pushes_applied += len(updates)
            self._count("client.pushes_applied", len(updates))
            last = updates[-1]
            if last.kind == "patch":
                received = sum(u.transfer_bytes for u in updates)
                self.stats.bytes_received += received
                self._count("client.bytes_received", received)
                self._caches[kind] = CacheEntry(
                    key=key, response=last.response,
                    entries=list(last.response.result),
                    epoch=self.server.epoch, trace_id=request.trace_id)
            else:  # invalidated: the move() below re-queries
                self._caches[kind] = None
        cached = self._caches.get(kind)
        if cached is not None and cached.answers(key, location):
            self.stats.cache_answers += 1
            self._count("client.cache_answers")
            self._event("client.cache_answer", kind=kind,
                        trace_id=cached.trace_id)
            self.last_served = "cache"
            self.last_staleness = 0
            return cached.entries
        response = sub.move(_point(location))
        self.stats.subscription_moves += 1
        self._count("client.subscription_moves")
        return self._refresh_subscribed(kind, key, response,
                                        request.trace_id)

    def _refresh_subscribed(self, kind: str, key: Tuple,
                            response, trace_id) -> List[LeafEntry]:
        received = response.transfer_bytes()
        self.stats.server_queries += 1
        self.stats.bytes_received += received
        self._count("client.server_queries")
        self._count("client.bytes_received", received)
        entries = list(response.result)
        self._caches[kind] = CacheEntry(
            key=key, response=response, entries=entries,
            epoch=self.server.epoch, trace_id=trace_id)
        self.last_served = "server"
        self.last_staleness = 0
        return entries

    def close(self) -> None:
        """Tear down any live subscriptions (idempotent)."""
        for kind, (_key, sub) in list(self._subs.items()):
            sub.close()
            del self._subs[kind]

    def _stale_fallback(self, key: Tuple, cached: Optional[CacheEntry],
                        exc: Exception) -> List[LeafEntry]:
        """Serve the stale cache for a failed server call, or re-raise.

        Only *transient* failures (duck-typed ``transient`` attribute —
        page-read errors, an open breaker) are eligible, and only when a
        cached answer for the same query parameters exists whose epoch
        lag is within :attr:`max_stale`.  The cache is left as-is: the
        next successful query refreshes it.
        """
        if (self.max_stale is None
                or not getattr(exc, "transient", False)
                or cached is None or cached.key != key):
            raise exc
        lag = self.server.epoch - cached.epoch
        if lag > self.max_stale:
            raise exc
        self.stats.stale_answers += 1
        self._count("client.stale_answers")
        self._event("client.stale_answer", trace_id=cached.trace_id,
                    staleness=lag, error=f"{type(exc).__name__}: {exc}")
        self.last_served = "stale"
        self.last_staleness = lag
        return cached.entries

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _event(self, event: str, trace_id: Optional[str] = None,
               **fields) -> None:
        """Report into the server's event log when it keeps one.

        Duck-typed like ``metrics``: a bare :class:`LocationServer` has
        no ``events`` attribute and the client stays silent.
        """
        events = getattr(self.server, "events", None)
        if events is not None:
            events.emit("client", event=event, trace_id=trace_id, **fields)


def _point(location) -> Tuple[float, float]:
    return (float(location[0]), float(location[1]))


def _sorted_by_distance(entries: List[LeafEntry], location) -> List[LeafEntry]:
    return sorted(entries,
                  key=lambda e: distance_sq((e.x, e.y), location))


def _apply_delta(previous: List[LeafEntry],
                 delta: DeltaResponse) -> List[LeafEntry]:
    removed = set(delta.removed_ids)
    entries = [e for e in previous if e.oid not in removed]
    entries.extend(delta.added)
    return entries
