"""Location-based spatial queries: the paper's contribution.

A location-based query returns, besides the ordinary result, a
**validity region** within which the result stays correct, plus the
minimal **influence set** of data points that determine that region.
The mobile client then answers repeated queries locally for as long as
it remains inside the region.

* :mod:`repro.core.nn_validity` — Section 3: validity regions of (k)NN
  queries, computed with TPNN/TPkNN probes aimed at the vertices of a
  shrinking convex region.
* :mod:`repro.core.window_validity` — Section 4: validity regions of
  window queries via Minkowski regions of inner and outer objects.
* :mod:`repro.core.server` / :mod:`repro.core.client` — the
  client/server protocol the paper's introduction motivates.
"""

from repro.core.api import (
    KNNRequest,
    QueryBudget,
    QueryDetail,
    QueryRequest,
    QueryResponse,
    QuerySemantics,
    RangeRequest,
    WindowRequest,
    query_semantics,
    register_query_type,
    registered_query_kinds,
)
from repro.core.validity import (
    AnnulusValidityRegion,
    CompositeValidityRegion,
    NNValidityRegion,
    ValidityDisk,
    WindowValidityRegion,
)
from repro.core.rknn import RKNNDetail, RKNNRequest, RKNNResponse
from repro.core.probknn import ProbKNNDetail, ProbKNNRequest, ProbKNNResponse
from repro.core.conformance import check_semantics
from repro.core.nn_validity import (
    NNValidityResult,
    compute_nn_validity,
    retrieve_influence_set_1nn,
    retrieve_influence_set_knn,
)
from repro.core.window_validity import WindowValidityResult, compute_window_validity
from repro.core.range_validity import (
    RangeValidityRegion,
    RangeValidityResult,
    compute_range_validity,
)
from repro.core.server import (
    DeltaResponse,
    KNNResponse,
    LocationServer,
    RangeResponse,
    WindowResponse,
)
from repro.core.client import CacheEntry, MobileClient, ClientStats

#: Canonical names of the typed detail hierarchy (see docs/API.md).
KNNDetail = NNValidityResult
WindowDetail = WindowValidityResult
RangeDetail = RangeValidityResult

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "QueryBudget",
    "QueryDetail",
    "QuerySemantics",
    "register_query_type",
    "query_semantics",
    "registered_query_kinds",
    "check_semantics",
    "KNNDetail",
    "WindowDetail",
    "RangeDetail",
    "RKNNDetail",
    "ProbKNNDetail",
    "KNNRequest",
    "WindowRequest",
    "RangeRequest",
    "RKNNRequest",
    "ProbKNNRequest",
    "RKNNResponse",
    "ProbKNNResponse",
    "NNValidityRegion",
    "WindowValidityRegion",
    "ValidityDisk",
    "AnnulusValidityRegion",
    "CompositeValidityRegion",
    "NNValidityResult",
    "compute_nn_validity",
    "retrieve_influence_set_1nn",
    "retrieve_influence_set_knn",
    "WindowValidityResult",
    "compute_window_validity",
    "RangeValidityRegion",
    "RangeValidityResult",
    "compute_range_validity",
    "LocationServer",
    "KNNResponse",
    "WindowResponse",
    "RangeResponse",
    "DeltaResponse",
    "MobileClient",
    "ClientStats",
    "CacheEntry",
]
