"""Validity regions for location-based (k)NN queries (paper, Section 3).

The validity region of a kNN query is the **order-k Voronoi cell** of
its result set: the locus of locations whose k nearest neighbours are
exactly that set.  Since the server maintains no Voronoi diagram, the
cell is computed on the fly:

1. start with the data universe as the candidate region;
2. pick any non-confirmed vertex ``v`` of the region and issue a
   TPNN/TPkNN query from ``q`` aimed at ``v``;
3. if the query discovers a *new* influence pair, clip the region by
   the corresponding bisector half-plane (vertices that survive keep
   their confirmation state, new vertices start unconfirmed);
   otherwise confirm ``v``;
4. stop when every vertex is confirmed.

Lemma 3.1 guarantees the final region is exactly the Voronoi cell and
the collected set contains no false hits; Lemma 3.2 bounds the number
of TP queries by ``n_inf + n_v``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry import ConvexPolygon, Point, Rect, bisector_halfplane
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.nn import nearest_neighbors
from repro.queries.tp import tp_knn
from repro.core.api import BudgetClock, QueryDetail
from repro.core.validity import NNValidityRegion, ValidityDisk

#: Vertex selection policies for step 2.  The paper picks an arbitrary
#: vertex; the ablation bench compares these orders.
VERTEX_POLICIES = ("fifo", "lifo", "random", "nearest", "farthest")


@dataclass
class NNValidityResult(QueryDetail):
    """Everything the server computes for one location-based kNN query.

    The canonical :class:`~repro.core.api.QueryDetail` for ``kind ==
    "knn"`` (exported as ``KNNDetail``).
    """

    kind = "knn"

    query: Point
    neighbors: List[LeafEntry]
    #: (result object, influence object) pairs — the paper's S_inf_p.
    influence_pairs: List[Tuple[LeafEntry, LeafEntry]]
    region: ConvexPolygon
    num_tp_queries: int = 0
    num_confirmations: int = 0
    #: Wall-clock seconds spent clipping the region by bisector
    #: half-planes (the trace span the service layer reports).
    clip_seconds: float = 0.0
    #: True when the query budget ran out before every vertex was
    #: confirmed: the kNN result is still exact, but the shipped region
    #: is the conservative safe disk below instead of the Voronoi cell.
    degraded: bool = False
    #: Radius of the degraded safe disk around the query (set iff
    #: ``degraded``): half the margin between the nearest unverified
    #: candidate and the farthest result neighbour, within which no
    #: bisector can be crossed.
    safe_radius: Optional[float] = None

    @property
    def influence_set(self) -> List[LeafEntry]:
        """Distinct influence objects (the paper's S_inf)."""
        seen: Set[int] = set()
        out: List[LeafEntry] = []
        for _, inf in self.influence_pairs:
            if inf.oid not in seen:
                seen.add(inf.oid)
                out.append(inf)
        return out

    @property
    def num_influence_objects(self) -> int:
        return len(self.influence_set)

    @property
    def num_edges(self) -> int:
        """Edge count of the validity region (client check cost proxy)."""
        return self.region.num_edges

    def validity_region(self, universe: Rect):
        """The compact client-side representation.

        Degraded responses ship the safe disk (constant payload) instead
        of the influence-pair half-plane region.
        """
        if self.degraded:
            return ValidityDisk((self.query.x, self.query.y),
                                self.safe_radius or 0.0)
        return NNValidityRegion(self.influence_pairs, universe)


def compute_nn_validity(tree: RStarTree, q, k: int = 1,
                        universe: Optional[Rect] = None,
                        nn_method: str = "best_first",
                        vertex_policy: str = "fifo",
                        rng: Optional[random.Random] = None,
                        nn_phase: str = "nn",
                        tp_phase: str = "tpnn",
                        clock: Optional[BudgetClock] = None,
                        kernel=None,
                        columns=None) -> NNValidityResult:
    """Process a location-based kNN query end to end (Section 3.2).

    Step (i) runs an ordinary kNN query (charged to phase ``nn_phase``),
    step (ii) retrieves the influence set with TP queries (phase
    ``tp_phase``), step (iii) packages the response.

    ``universe`` defaults to the MBR of the dataset; the validity
    region is always clipped to it.

    ``clock`` is a running :class:`~repro.core.api.BudgetClock`; when it
    is exhausted mid-probing, step (ii) stops early and the result is
    **degraded**: still the exact kNN set, but with the conservative
    safe disk of :func:`degraded_safe_radius` as its validity region.

    With a columnar ``kernel`` (see :mod:`repro.kernel.backends`) and a
    ``columns`` snapshot of the dataset, steps (i) and (ii) evaluate
    whole candidate sets at once instead of traversing the tree; the
    phase blocks still open (so trace spans keep their shape) but
    charge zero node accesses.
    """
    if universe is None:
        universe = tree.root.mbr
    q = Point(float(q[0]), float(q[1]))
    columnar = (kernel is not None and getattr(kernel, "columnar", False)
                and columns is not None)
    with tree.disk.phase(nn_phase):
        if columnar:
            neighbors = [e for _d2, e in kernel.knn(columns, q.x, q.y, k)]
        else:
            neighbors = [n.entry for n in
                         nearest_neighbors(tree, q, k, method=nn_method)]
    if len(neighbors) < k:
        # Fewer than k objects exist: the result never changes anywhere.
        return NNValidityResult(q, neighbors, [],
                                ConvexPolygon.from_rect(universe))
    with tree.disk.phase(tp_phase):
        return retrieve_influence_set_knn(tree, q, neighbors, universe,
                                          vertex_policy=vertex_policy,
                                          rng=rng, clock=clock,
                                          kernel=kernel, columns=columns)


def retrieve_influence_set_1nn(tree: RStarTree, q, nearest: LeafEntry,
                               universe: Rect,
                               vertex_policy: str = "fifo",
                               rng: Optional[random.Random] = None
                               ) -> NNValidityResult:
    """Algorithm ``Retrieve_Influence_Set_1NN`` (Figure 10).

    The single-NN case of the paper: influence objects are recognized by
    identity (the pair partner is always the nearest neighbour ``o``).
    """
    return retrieve_influence_set_knn(tree, q, [nearest], universe,
                                      vertex_policy=vertex_policy, rng=rng)


def retrieve_influence_set_knn(tree: RStarTree, q, neighbors: Sequence[LeafEntry],
                               universe: Rect,
                               vertex_policy: str = "fifo",
                               rng: Optional[random.Random] = None,
                               clock: Optional[BudgetClock] = None,
                               kernel=None,
                               columns=None) -> NNValidityResult:
    """Algorithm ``Retrieve_Influence_Set_kNN`` (Figure 12).

    Maintains the influence *pair* set S_inf_p: for k > 1 the same
    influence object may contribute several edges, one per result
    object it forms a crossed bisector with, so vertex confirmation
    keys on pairs rather than objects.

    With a ``clock``, each probe iteration first checks the budget;
    on exhaustion the loop stops and a degraded result is returned.

    With a columnar ``kernel`` + ``columns`` snapshot, each TPNN probe
    evaluates influence times over the whole candidate column set in
    one batch instead of a best-first tree search.
    """
    if vertex_policy not in VERTEX_POLICIES:
        raise ValueError(f"unknown vertex policy {vertex_policy!r}")
    if not neighbors:
        raise ValueError("result set must be non-empty")
    q = Point(float(q[0]), float(q[1]))
    # Numerical tolerance scaled to the universe so the algorithm behaves
    # identically in unit squares and 7000 km maps.
    eps = 1e-12 * max(universe.width, universe.height, 1.0)

    region = ConvexPolygon.from_rect(universe)
    confirmed: Dict[Tuple[float, float], bool] = {
        (v.x, v.y): False for v in region.vertices
    }
    pair_oids: Set[Tuple[int, int]] = set()
    pairs: List[Tuple[LeafEntry, LeafEntry]] = []
    known_influence_oids: Set[int] = set()
    num_tp = 0
    num_confirm = 0
    clip_seconds = 0.0
    # Safety valve: the algorithm provably terminates (each TP query
    # either confirms a vertex or shrinks the region), but degenerate
    # float behaviour should fail loudly rather than spin.
    max_queries = 64 + 16 * (len(neighbors) + len(tree.root.entries) + 64)
    columnar = (kernel is not None and getattr(kernel, "columnar", False)
                and columns is not None)
    # One probe context per (query, result) pair: it amortizes the
    # direction-independent work (distances, near-subset candidate
    # levels) across every TP probe of the retrieval loop.
    probe_ctx = (kernel.tp_context(columns, q.x, q.y, neighbors)
                 if columnar else None)

    degraded = False
    while True:
        vertex = _pick_vertex(region, confirmed, q, vertex_policy, rng)
        if vertex is None:
            break
        if clock is not None and clock.exhausted():
            degraded = True
            break
        if num_tp > max_queries:
            raise RuntimeError("influence-set retrieval failed to converge")
        if abs(vertex.x - q.x) <= eps and abs(vertex.y - q.y) <= eps:
            confirmed[(vertex.x, vertex.y)] = True  # degenerate: v == q
            num_confirm += 1
            continue
        direction = q.towards(vertex)
        if columnar:
            event = probe_ctx.probe(direction[0], direction[1],
                                    prefer_new=known_influence_oids)
        else:
            event = tp_knn(tree, q, direction, neighbors,
                           prefer_new=known_influence_oids)
        num_tp += 1
        if not event.found:
            confirmed[(vertex.x, vertex.y)] = True
            num_confirm += 1
            continue
        pair_key = (event.influence.oid, event.paired_with.oid)
        if pair_key in pair_oids:
            confirmed[(vertex.x, vertex.y)] = True
            num_confirm += 1
            continue
        pair_oids.add(pair_key)
        known_influence_oids.add(event.influence.oid)
        pairs.append((event.paired_with, event.influence))
        clip_start = perf_counter()
        halfplane = bisector_halfplane(event.paired_with.point,
                                       event.influence.point)
        region = region.clip(halfplane, eps=eps)
        clip_seconds += perf_counter() - clip_start
        if region.is_empty:
            # Numerically degenerate (q on a cell boundary): report the
            # empty region; the client will simply re-query immediately.
            break
        confirmed = {
            (v.x, v.y): confirmed.get((v.x, v.y), False)
            for v in region.vertices
        }

    safe_radius = None
    if degraded:
        safe_radius = degraded_safe_radius(
            tree, q, neighbors,
            kernel=kernel if columnar else None, columns=columns)
    return NNValidityResult(
        query=q,
        neighbors=list(neighbors),
        influence_pairs=pairs,
        region=region,
        num_tp_queries=num_tp,
        num_confirmations=num_confirm,
        clip_seconds=clip_seconds,
        degraded=degraded,
        safe_radius=safe_radius,
    )


def degraded_safe_radius(tree: RStarTree, q: Point,
                         neighbors: Sequence[LeafEntry],
                         phase: str = "degraded",
                         kernel=None, columns=None) -> float:
    """Radius of the conservative safe disk of a degraded kNN response.

    Let ``d_k`` be the distance from ``q`` to its farthest result
    neighbour and ``d_next`` the distance to the nearest *unverified*
    candidate (the (k+1)-th NN).  Moving the client by ``delta`` changes
    any point distance by at most ``delta``, so while

        delta <= (d_next - d_k) / 2

    every result object remains at least as close as every non-result
    object and the kNN set cannot change.  One (k+1)-NN probe (charged
    to ``phase``) prices the bound; when fewer than k+1 objects exist
    the result can never change and the radius is infinite — callers
    clip to the universe via the region's ``contains`` conjunction.
    """
    k = len(neighbors)
    d_k = max(q.distance_to((e.x, e.y)) for e in neighbors)
    with tree.disk.phase(phase):
        if (kernel is not None and getattr(kernel, "columnar", False)
                and columns is not None):
            ranked_d2 = kernel.knn(columns, q.x, q.y, k + 1)
            if len(ranked_d2) <= k:
                ranked = ranked_d2
                d_next = 0.0
            else:
                ranked = ranked_d2
                d_next = ranked_d2[-1][0] ** 0.5
        else:
            ranked = nearest_neighbors(tree, q, k + 1)
            d_next = ranked[-1].dist if len(ranked) > k else 0.0
    if len(ranked) <= k:
        # The whole dataset is in the result: valid everywhere.  A disk
        # spanning the universe diagonal is an equivalent, finite stand-in.
        mbr = tree.root.mbr
        return ((mbr.width ** 2 + mbr.height ** 2) ** 0.5)
    return max(0.0, (d_next - d_k) / 2.0)


def _pick_vertex(region: ConvexPolygon, confirmed: Dict[Tuple[float, float], bool],
                 q: Point, policy: str,
                 rng: Optional[random.Random]) -> Optional[Point]:
    """The next non-confirmed vertex under the chosen policy."""
    pending = [v for v in region.vertices if not confirmed[(v.x, v.y)]]
    if not pending:
        return None
    if policy == "fifo":
        return pending[0]
    if policy == "lifo":
        return pending[-1]
    if policy == "random":
        return (rng or random).choice(pending)
    if policy == "nearest":
        return min(pending, key=lambda v: q.distance_sq_to(v))
    return max(pending, key=lambda v: q.distance_sq_to(v))  # farthest
