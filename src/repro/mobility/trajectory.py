"""Mobility traces.

A trajectory is a sequence of timed position samples with the velocity
in effect at each sample — the velocity matters because the TP baseline
needs it, and because a *changing* velocity is precisely what defeats
time-based validity schemes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.geometry import Point, Rect


class TrajectoryStep(NamedTuple):
    """One position sample."""

    time: float
    position: Point
    velocity: Tuple[float, float]


@dataclass(frozen=True)
class Trajectory:
    """An immutable sequence of samples at a fixed time step."""

    steps: Tuple[TrajectoryStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TrajectoryStep]:
        return iter(self.steps)

    def positions(self) -> List[Point]:
        return [s.position for s in self.steps]

    def total_distance(self) -> float:
        pos = self.positions()
        return sum(pos[i].distance_to(pos[i + 1]) for i in range(len(pos) - 1))


def random_waypoint(universe: Rect, num_steps: int, speed: float,
                    dt: float = 1.0,
                    seed: Optional[int] = None,
                    start: Optional[Tuple[float, float]] = None) -> Trajectory:
    """The random-waypoint model: straight legs between random targets.

    The client travels at constant ``speed`` towards a uniformly random
    waypoint, picks a new one on arrival, and is sampled every ``dt``.
    """
    _check(num_steps, speed, dt)
    rng = random.Random(seed)
    pos = Point(*start) if start is not None else _random_point(rng, universe)
    target = _random_point(rng, universe)
    steps: List[TrajectoryStep] = []
    for i in range(num_steps):
        while pos.distance_to(target) < 1e-12:
            target = _random_point(rng, universe)
        direction = pos.towards(target)
        velocity = (direction.x * speed, direction.y * speed)
        steps.append(TrajectoryStep(i * dt, pos, velocity))
        remaining = pos.distance_to(target)
        travel = speed * dt
        while travel >= remaining:  # may pass through several waypoints
            pos = target
            travel -= remaining
            target = _random_point(rng, universe)
            while pos.distance_to(target) < 1e-12:
                target = _random_point(rng, universe)
            remaining = pos.distance_to(target)
        if travel > 0.0:
            direction = pos.towards(target)
            pos = Point(pos.x + direction.x * travel, pos.y + direction.y * travel)
    return Trajectory(tuple(steps))


def random_walk(universe: Rect, num_steps: int, speed: float,
                dt: float = 1.0, turn_sigma: float = 0.5,
                seed: Optional[int] = None,
                start: Optional[Tuple[float, float]] = None) -> Trajectory:
    """A correlated random walk: the heading drifts by a Gaussian turn
    each step and reflects off the universe boundary."""
    _check(num_steps, speed, dt)
    rng = random.Random(seed)
    pos = Point(*start) if start is not None else _random_point(rng, universe)
    heading = rng.uniform(0.0, 2.0 * math.pi)
    steps: List[TrajectoryStep] = []
    for i in range(num_steps):
        velocity = (speed * math.cos(heading), speed * math.sin(heading))
        steps.append(TrajectoryStep(i * dt, pos, velocity))
        nx = pos.x + velocity[0] * dt
        ny = pos.y + velocity[1] * dt
        if not universe.xmin <= nx <= universe.xmax:
            heading = math.pi - heading
            nx = min(max(nx, universe.xmin), universe.xmax)
        if not universe.ymin <= ny <= universe.ymax:
            heading = -heading
            ny = min(max(ny, universe.ymin), universe.ymax)
        pos = Point(nx, ny)
        heading += rng.gauss(0.0, turn_sigma)
    return Trajectory(tuple(steps))


def straight_run(start, direction, num_steps: int, speed: float,
                 dt: float = 1.0) -> Trajectory:
    """A constant-velocity run (the TP baseline's best case)."""
    _check(num_steps, speed, dt)
    norm = math.hypot(direction[0], direction[1])
    if norm == 0.0:
        raise ValueError("direction must be non-zero")
    vx, vy = direction[0] / norm * speed, direction[1] / norm * speed
    steps = [
        TrajectoryStep(i * dt,
                       Point(start[0] + vx * i * dt, start[1] + vy * i * dt),
                       (vx, vy))
        for i in range(num_steps)
    ]
    return Trajectory(tuple(steps))


def _random_point(rng: random.Random, universe: Rect) -> Point:
    return Point(rng.uniform(universe.xmin, universe.xmax),
                 rng.uniform(universe.ymin, universe.ymax))


def _check(num_steps: int, speed: float, dt: float) -> None:
    if num_steps < 0:
        raise ValueError("num_steps must be non-negative")
    if speed <= 0.0:
        raise ValueError("speed must be positive")
    if dt <= 0.0:
        raise ValueError("dt must be positive")
