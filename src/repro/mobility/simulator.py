"""End-to-end protocol simulation over a mobility trace.

Replays one trajectory against each client protocol over the *same*
dataset and reports, per protocol, how many position updates required a
server round-trip.  This is the system-level payoff the paper's
introduction promises; the per-query server cost is measured separately
by the Figure 27/34 benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry import Rect
from repro.index.rstar import RStarTree
from repro.core.client import MobileClient
from repro.core.server import LocationServer
from repro.baselines.naive import NaiveClient
from repro.baselines.sr01 import SR01Client, SR01Server
from repro.baselines.tp_baseline import TPClient
from repro.baselines.voronoi import VoronoiBaselineServer, VoronoiClient
from repro.mobility.trajectory import Trajectory


@dataclass(frozen=True)
class ProtocolReport:
    """Outcome of one protocol over one trajectory."""

    protocol: str
    position_updates: int
    server_queries: int
    bytes_received: int

    @property
    def query_saving(self) -> float:
        if self.position_updates == 0:
            return 0.0
        return 1.0 - self.server_queries / self.position_updates

    def row(self) -> str:
        return (f"{self.protocol:<18} {self.position_updates:>8} "
                f"{self.server_queries:>8} {self.query_saving:>8.1%} "
                f"{self.bytes_received:>10}")


def simulate_window_protocols(tree: RStarTree, trajectory: Trajectory,
                              width: float, height: float,
                              universe: Optional[Rect] = None,
                              include_tp: bool = True,
                              incremental: bool = False
                              ) -> List[ProtocolReport]:
    """Run every window protocol over ``trajectory`` and report savings.

    Answers are cross-checked against the naive client at every step.
    """
    if universe is None:
        universe = tree.root.mbr
    server = LocationServer(tree, universe)
    validity_client = MobileClient(server, incremental=incremental)
    naive_client = NaiveClient(tree)
    tp_client = TPClient(tree) if include_tp else None

    for step in trajectory:
        reference = validity_client.window(step.position, width, height)
        ref_ids = sorted(e.oid for e in reference)
        naive_ids = sorted(
            e.oid for e in naive_client.window(step.position, width, height))
        if naive_ids != ref_ids:
            raise AssertionError(
                f"naive window protocol diverged at t={step.time}")
        if tp_client is not None:
            tp_ids = sorted(e.oid for e in tp_client.window(
                step.position, width, height, step.velocity, step.time))
            if tp_ids != ref_ids:
                raise AssertionError(
                    f"tp window protocol diverged at t={step.time}")

    name = "validity-region" + ("+delta" if incremental else "")
    reports = [
        ProtocolReport(name,
                       validity_client.stats.position_updates,
                       validity_client.stats.server_queries,
                       validity_client.stats.bytes_received),
        ProtocolReport("naive", naive_client.position_updates,
                       naive_client.server_queries,
                       naive_client.bytes_received),
    ]
    if tp_client is not None:
        reports.append(
            ProtocolReport("tp", tp_client.position_updates,
                           tp_client.server_queries,
                           tp_client.bytes_received))
    return reports


def simulate_knn_protocols(tree: RStarTree, trajectory: Trajectory,
                           k: int = 1, sr01_m: Optional[int] = None,
                           universe: Optional[Rect] = None,
                           include_tp: bool = True,
                           include_zl01: bool = False) -> List[ProtocolReport]:
    """Run every kNN protocol over ``trajectory`` and report savings.

    Correctness is asserted as we go: every protocol must return the
    same neighbour *set* as the validity-region client at every step.

    ``include_zl01`` adds the Voronoi baseline [ZL01]; it pre-computes
    the full Voronoi diagram, so enable it only for small datasets, and
    only for k = 1 (the baseline's own limitation).  Its conservative
    validity *times* use the trajectory's exact speed as v_max.
    """
    if universe is None:
        universe = tree.root.mbr
    m = sr01_m if sr01_m is not None else max(2 * k, k + 4)

    server = LocationServer(tree, universe)
    validity_client = MobileClient(server)
    naive_client = NaiveClient(tree)
    sr01_client = SR01Client(SR01Server(tree), k=k, m=m)
    tp_client = TPClient(tree) if include_tp else None
    zl01_client = None
    if include_zl01:
        if k != 1:
            raise ValueError("[ZL01] supports single-NN queries only")
        zl01_server = VoronoiBaselineServer(tree, universe)
        zl01_server.precompute()
        import math as _math
        v_max = max(_math.hypot(*s.velocity) for s in trajectory)
        zl01_client = VoronoiClient(zl01_server, v_max=v_max)

    for step in trajectory:
        reference = validity_client.knn(step.position, k=k)
        ref_dists = sorted(round(e.point.distance_to(step.position), 9)
                           for e in reference)
        answers = [
            ("naive", naive_client.knn(step.position, k=k)),
            ("sr01", sr01_client.knn(step.position)),
            ("tp", tp_client.knn(step.position, step.velocity,
                                 step.time, k=k) if tp_client else None),
            ("zl01", [zl01_client.nn(step.position, step.time)]
             if zl01_client else None),
        ]
        for name, answer in answers:
            if answer is None:
                continue
            dists = sorted(round(e.point.distance_to(step.position), 9)
                           for e in answer)
            if dists != ref_dists:
                raise AssertionError(
                    f"protocol {name} diverged at t={step.time}: "
                    f"{dists} != {ref_dists}")

    reports = [
        ProtocolReport("validity-region",
                       validity_client.stats.position_updates,
                       validity_client.stats.server_queries,
                       validity_client.stats.bytes_received),
        ProtocolReport("naive", naive_client.position_updates,
                       naive_client.server_queries,
                       naive_client.bytes_received),
        ProtocolReport(f"sr01(m={m})", sr01_client.position_updates,
                       sr01_client.server_queries,
                       sr01_client.bytes_received),
    ]
    if tp_client is not None:
        reports.append(
            ProtocolReport("tp", tp_client.position_updates,
                           tp_client.server_queries,
                           tp_client.bytes_received))
    if zl01_client is not None:
        from repro.core.validity import POINT_BYTES
        reports.append(
            ProtocolReport("zl01", zl01_client.position_updates,
                           zl01_client.server_queries,
                           zl01_client.server_queries * (POINT_BYTES + 8)))
    return reports
