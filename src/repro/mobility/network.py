"""A simple wireless-network cost model for the protocol comparison.

The paper argues validity regions "reduce the number of queries issued
to the server, while introducing minimal computational and network
overhead".  To make that claim quantitative end to end, this model
converts a protocol report (round-trips + bytes) into time and energy
figures for a parameterized wireless link — the classic two-parameter
model: per-request latency plus payload over bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.simulator import ProtocolReport


@dataclass(frozen=True)
class NetworkModel:
    """A wireless uplink/downlink abstraction.

    Defaults approximate a 2003-era GPRS link (the paper's era):
    600 ms round-trip latency, 40 kbit/s downlink, 60 bytes of uplink
    per query, 1 J per second of active radio.
    """

    round_trip_s: float = 0.6
    downlink_bytes_per_s: float = 5_000.0
    uplink_bytes_per_query: int = 60
    radio_watts: float = 1.0

    def __post_init__(self):
        if self.round_trip_s < 0:
            raise ValueError("latency must be non-negative")
        if self.downlink_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time_s(self, report: ProtocolReport) -> float:
        """Total time the client spends waiting on the network."""
        payload = (report.bytes_received
                   + report.server_queries * self.uplink_bytes_per_query)
        return (report.server_queries * self.round_trip_s
                + payload / self.downlink_bytes_per_s)

    def radio_energy_j(self, report: ProtocolReport) -> float:
        """Energy spent with the radio active (time x power)."""
        return self.transfer_time_s(report) * self.radio_watts

    def mean_response_time_s(self, report: ProtocolReport) -> float:
        """Average response latency per position update.

        Cache answers are free (local computation); only server
        round-trips pay network time.
        """
        if report.position_updates == 0:
            return 0.0
        return self.transfer_time_s(report) / report.position_updates
