"""Client mobility: trajectories and end-to-end protocol simulation.

The paper's motivating scenario — "the closest restaurant as the user
moves along" — needs moving clients.  This package generates standard
mobility traces (random waypoint, random walk, straight runs) and
replays them against any of the client protocols (validity regions,
naive re-query, [SR01], [ZL01], TP), producing the query-saving and
network statistics that quantify the paper's claimed benefit.
"""

from repro.mobility.trajectory import (
    Trajectory,
    TrajectoryStep,
    random_walk,
    random_waypoint,
    straight_run,
)
from repro.mobility.network import NetworkModel
from repro.mobility.simulator import (
    ProtocolReport,
    simulate_knn_protocols,
    simulate_window_protocols,
)

__all__ = [
    "Trajectory",
    "TrajectoryStep",
    "random_waypoint",
    "random_walk",
    "straight_run",
    "NetworkModel",
    "ProtocolReport",
    "simulate_knn_protocols",
    "simulate_window_protocols",
]
