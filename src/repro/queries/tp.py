"""Time-parameterized (TP) queries [TP02].

A TP query takes the *current* result of a spatial query plus a motion
(the query point moving along a ray, or a window translating with a
velocity vector) and returns the first future **influence event**: the
object that changes the result, and the time at which it does.

The influence time is used as a distance metric in a best-first search
over the R*-tree, exactly as mindist is used in ordinary NN search; the
MBR bounds below are admissible lower bounds of the influence time of
any point inside the rectangle, so the search only visits nodes that
may contain the first influencing object.

For nearest-neighbour queries the influence time of a candidate ``p``
with respect to a current neighbour ``o`` is the instant the moving
query crosses their perpendicular bisector.  With the query at ``q``
moving along unit direction ``v``, squaring distances gives

    |q + t*v - p|^2 - |q + t*v - o|^2
        = (|q - p|^2 - |q - o|^2) - 2*t*(v . (p - o)),

which is *linear* in ``t``; the crossing time is

    t = (|q - p|^2 - |q - o|^2) / (2 * v . (p - o)),

defined (and non-negative) whenever ``v . (p - o) > 0``.
"""

from __future__ import annotations

import heapq
import math
from typing import List, NamedTuple, Optional, Sequence, Set, Tuple

try:  # numpy is optional: the vectorized leaf scan degrades gracefully
    import numpy as np
except ImportError:  # pragma: no cover - exercised via stdlib-only CI
    np = None

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree

INFINITY = math.inf

#: Leaf scans with more than this many (entry, result) pairs switch to
#: the vectorized numpy path.
_VECTORIZE_THRESHOLD = 512


class TPEvent(NamedTuple):
    """The first influence event of a TP nearest-neighbour query.

    ``influence`` is the data point that will change the result (``None``
    when nothing ever does), ``paired_with`` is the current result object
    whose bisector is crossed first (for 1NN queries this is *the*
    nearest neighbour), and ``time`` is the travelled distance at which
    the crossing happens (the paper's validity computation issues TPNN
    queries with unit speed, so time equals distance).
    """

    time: float
    influence: Optional[LeafEntry]
    paired_with: Optional[LeafEntry]

    @property
    def found(self) -> bool:
        return self.influence is not None


class WindowTPEvent(NamedTuple):
    """The first influence event of a TP window query.

    ``arrivals``/``departures`` list every object entering/leaving the
    result at ``time`` (the paper's change set ``C``).
    """

    time: float
    arrivals: Tuple[LeafEntry, ...]
    departures: Tuple[LeafEntry, ...]


# ----------------------------------------------------------------------
# TP nearest neighbour
# ----------------------------------------------------------------------
def tp_nn(tree: RStarTree, q, direction, nearest: LeafEntry,
          prefer_new: Optional[Set[int]] = None) -> TPEvent:
    """TPNN: first object to become closer than ``nearest``.

    ``direction`` must be a unit vector; ``q`` moves as ``q + t*direction``.
    """
    return tp_knn(tree, q, direction, [nearest], prefer_new=prefer_new)


def tp_knn(tree: RStarTree, q, direction, result: Sequence[LeafEntry],
           prefer_new: Optional[Set[int]] = None) -> TPEvent:
    """TPkNN: first swap between a non-result object and a result object.

    Parameters
    ----------
    result:
        The current k nearest neighbours of ``q``.
    prefer_new:
        Object ids already known to the caller.  When two candidate
        events happen at exactly the same time, an object *not* in this
        set is preferred — this resolves degenerate ties (cocircular
        points) in favour of discovering new influence objects, which
        the validity-region algorithm needs for completeness.
    """
    vx, vy = float(direction[0]), float(direction[1])
    norm = math.hypot(vx, vy)
    if norm == 0.0:
        raise ValueError("TP query direction must be non-zero")
    vx /= norm
    vy /= norm
    qx, qy = float(q[0]), float(q[1])
    known = prefer_new or frozenset()
    result_oids = {e.oid for e in result}
    # Per result object o: (dist_sq(q, o), v . o) reused by every bound.
    res_info = [((e.x - qx) ** 2 + (e.y - qy) ** 2, vx * e.x + vy * e.y, e)
                for e in result]

    def exact_time(p: LeafEntry) -> Tuple[float, Optional[LeafEntry]]:
        p_dist_sq = (p.x - qx) ** 2 + (p.y - qy) ** 2
        v_dot_p = vx * p.x + vy * p.y
        best_t, best_o = INFINITY, None
        for o_dist_sq, v_dot_o, o in res_info:
            den = 2.0 * (v_dot_p - v_dot_o)
            if den <= 0.0:
                continue
            t = (p_dist_sq - o_dist_sq) / den
            if t < 0.0:
                t = 0.0  # p already as close as o: immediate influence
            if t < best_t:
                best_t, best_o = t, o
        return best_t, best_o

    def node_bound(mbr: Rect) -> float:
        """Admissible lower bound of the influence time of any p in mbr."""
        min_p_dist_sq = mbr.mindist_sq((qx, qy))
        # max of v . p over the rectangle is attained at a corner.
        v_dot_p_max = (vx * (mbr.xmax if vx > 0 else mbr.xmin)
                       + vy * (mbr.ymax if vy > 0 else mbr.ymin))
        bound = INFINITY
        for o_dist_sq, v_dot_o, _ in res_info:
            den_max = 2.0 * (v_dot_p_max - v_dot_o)
            if den_max <= 0.0:
                continue
            num_min = min_p_dist_sq - o_dist_sq
            pair = num_min / den_max if num_min > 0.0 else 0.0
            if pair < bound:
                bound = pair
        return bound

    best_time = INFINITY
    best_entry: Optional[LeafEntry] = None
    best_pair: Optional[LeafEntry] = None
    counter = 0
    heap = [(node_bound(tree.root.mbr), counter, tree.root)]
    while heap:
        bound, _, node = heapq.heappop(heap)
        if bound > best_time:
            break
        if bound == best_time and not (best_entry is not None
                                       and best_entry.oid in known):
            # Nothing in this subtree can beat or usefully tie the winner.
            break
        tree.read_node(node)
        if node.is_leaf:
            if (np is not None
                    and len(node.entries) * len(result)
                    >= _VECTORIZE_THRESHOLD):
                candidates = _leaf_scan_vectorized(
                    node.entries, qx, qy, vx, vy, res_info, result_oids)
            else:
                candidates = ((e, *exact_time(e)) for e in node.entries
                              if e.oid not in result_oids)
            for e, t, paired in candidates:
                if paired is None:
                    continue
                wins = t < best_time or (
                    t == best_time
                    and best_entry is not None
                    and best_entry.oid in known
                    and e.oid not in known)
                if wins:
                    best_time, best_entry, best_pair = t, e, paired
        else:
            for child in node.entries:
                child_bound = node_bound(child.mbr)
                if child_bound <= best_time:
                    counter += 1
                    heapq.heappush(heap, (child_bound, counter, child))
    if best_entry is None:
        return TPEvent(INFINITY, None, None)
    return TPEvent(best_time, best_entry, best_pair)


def _leaf_scan_vectorized(entries, qx, qy, vx, vy, res_info, result_oids):
    """Vectorized leaf scan for large k: the per-entry minimum crossing
    time over all result objects, returning the entries achieving the
    leaf-wide minimum (all of them, so tie preferences still apply)."""
    xs = np.fromiter((e.x for e in entries), dtype=float, count=len(entries))
    ys = np.fromiter((e.y for e in entries), dtype=float, count=len(entries))
    p_dist_sq = (xs - qx) ** 2 + (ys - qy) ** 2
    v_dot_p = vx * xs + vy * ys
    best_t = np.full(len(entries), np.inf)
    best_j = np.zeros(len(entries), dtype=int)
    for j, (o_dist_sq, v_dot_o, _) in enumerate(res_info):
        den = 2.0 * (v_dot_p - v_dot_o)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(den > 0.0,
                         np.maximum((p_dist_sq - o_dist_sq)
                                    / np.where(den > 0.0, den, 1.0), 0.0),
                         np.inf)
        improved = t < best_t
        best_t[improved] = t[improved]
        best_j[improved] = j
    for i, e in enumerate(entries):
        if e.oid in result_oids:
            best_t[i] = np.inf
    leaf_min = best_t.min()
    if not np.isfinite(leaf_min):
        return []
    return [(entries[i], float(best_t[i]), res_info[best_j[i]][2])
            for i in np.nonzero(best_t == leaf_min)[0]]


# ----------------------------------------------------------------------
# TP window
# ----------------------------------------------------------------------
def tp_window(tree: RStarTree, rect: Rect, velocity) -> WindowTPEvent:
    """First influence event of a window translating with ``velocity``.

    Objects currently inside influence the result when the trailing
    boundary passes them; outside objects influence it when the leading
    boundary reaches them (Figure 6a of the paper).
    """
    vx, vy = float(velocity[0]), float(velocity[1])
    if vx == 0.0 and vy == 0.0:
        return WindowTPEvent(INFINITY, (), ())

    def point_interval(px: float, py: float) -> Tuple[float, float]:
        """The (possibly empty) time interval during which the moving
        window contains the point; empty is returned as (inf, -inf)."""
        t_lo, t_hi = -INFINITY, INFINITY
        for p, lo, hi, v in ((px, rect.xmin, rect.xmax, vx),
                             (py, rect.ymin, rect.ymax, vy)):
            if v == 0.0:
                if not lo <= p <= hi:
                    return INFINITY, -INFINITY
            else:
                a = (p - hi) / v
                b = (p - lo) / v
                if a > b:
                    a, b = b, a
                t_lo = max(t_lo, a)
                t_hi = min(t_hi, b)
        if t_lo > t_hi:
            return INFINITY, -INFINITY
        return t_lo, t_hi

    def influence_time(e: LeafEntry) -> float:
        t_lo, t_hi = point_interval(e.x, e.y)
        if t_lo > t_hi or t_hi < 0.0:
            return INFINITY
        if t_lo <= 0.0:  # currently inside: influences when it leaves
            return t_hi
        return t_lo      # currently outside: influences when it enters

    def node_bound(mbr: Rect) -> float:
        """Admissible lower bound of influence_time over points in mbr."""
        bounds = []
        # Entry bound: the moving window must touch the rectangle first.
        t_lo, t_hi = _moving_rect_meet(rect, mbr, vx, vy)
        if t_lo <= t_hi and t_hi >= 0.0:
            bounds.append(max(t_lo, 0.0))
        # Exit bound for the part of the rectangle already inside.
        overlap = rect.intersection(mbr)
        if overlap is not None:
            exit_bound = INFINITY
            if vx > 0.0:
                exit_bound = min(exit_bound, (overlap.xmin - rect.xmin) / vx)
            elif vx < 0.0:
                exit_bound = min(exit_bound, (rect.xmax - overlap.xmax) / -vx)
            if vy > 0.0:
                exit_bound = min(exit_bound, (overlap.ymin - rect.ymin) / vy)
            elif vy < 0.0:
                exit_bound = min(exit_bound, (rect.ymax - overlap.ymax) / -vy)
            bounds.append(exit_bound)
        return min(bounds) if bounds else INFINITY

    best_time = INFINITY
    events: List[Tuple[float, bool, LeafEntry]] = []  # (time, was_inside, e)
    counter = 0
    heap = [(node_bound(tree.root.mbr), counter, tree.root)]
    while heap:
        bound, _, node = heapq.heappop(heap)
        if bound > best_time:
            break
        tree.read_node(node)
        if node.is_leaf:
            for e in node.entries:
                t = influence_time(e)
                if t < best_time:
                    best_time = t
                    events = [(t, rect.contains_point((e.x, e.y)), e)]
                elif t == best_time and t < INFINITY:
                    events.append((t, rect.contains_point((e.x, e.y)), e))
        else:
            for child in node.entries:
                child_bound = node_bound(child.mbr)
                if child_bound <= best_time:
                    counter += 1
                    heapq.heappush(heap, (child_bound, counter, child))
    if best_time is INFINITY or not events:
        return WindowTPEvent(INFINITY, (), ())
    departures = tuple(e for t, inside, e in events if inside)
    arrivals = tuple(e for t, inside, e in events if not inside)
    return WindowTPEvent(best_time, arrivals, departures)


def _moving_rect_meet(moving: Rect, static: Rect,
                      vx: float, vy: float) -> Tuple[float, float]:
    """Time interval during which ``moving + t*v`` intersects ``static``."""
    t_lo, t_hi = -INFINITY, INFINITY
    for m_lo, m_hi, s_lo, s_hi, v in (
            (moving.xmin, moving.xmax, static.xmin, static.xmax, vx),
            (moving.ymin, moving.ymax, static.ymin, static.ymax, vy)):
        if v == 0.0:
            if m_hi < s_lo or m_lo > s_hi:
                return INFINITY, -INFINITY
        else:
            a = (s_lo - m_hi) / v
            b = (s_hi - m_lo) / v
            if a > b:
                a, b = b, a
            t_lo = max(t_lo, a)
            t_hi = min(t_hi, b)
    if t_lo > t_hi:
        return INFINITY, -INFINITY
    return t_lo, t_hi
