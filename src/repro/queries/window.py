"""Window queries (thin, named wrappers over the tree traversal)."""

from __future__ import annotations

from typing import List

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree


def window_query(tree: RStarTree, rect: Rect) -> List[LeafEntry]:
    """All data points inside the closed rectangle ``rect``."""
    return tree.window(rect)


def window_count(tree: RStarTree, rect: Rect) -> int:
    """Cardinality of a window query (same node accesses)."""
    return len(tree.window(rect))


def annulus_query(tree: RStarTree, outer: Rect, inner: Rect) -> List[LeafEntry]:
    """Points inside ``outer`` but outside the *open* ``inner`` rectangle.

    This is the "marginal rectangle" retrieval of the paper's window
    algorithm (Section 4 / Figure 17): candidate outer influence objects
    live in the extended window minus the original window.  A single
    traversal of ``outer`` is used — exactly what the paper charges for
    the second query of Figure 34 — with the inner part filtered out
    in memory.  Points on the closed boundary of ``inner`` belong to the
    window result, so they are filtered out too.
    """
    return [e for e in tree.window(outer)
            if not inner.contains_point((e.x, e.y))]
