"""Continuous spatial queries for linearly moving clients.

Given a start location and a constant velocity, produce the *entire
future timeline* of results up to a horizon — the output format of the
continuous-NN work the paper surveys ([TPS02, BJKS02]): a list of
``<result, interval>`` tuples.  Each segment is obtained with one TP
query, so the timeline costs one ordinary query plus one TP query per
result change.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Tuple

from repro.geometry import Rect
from repro.index.rstar import RStarTree
from repro.queries.nn import nearest_neighbors
from repro.queries.tp import tp_knn, tp_window

#: Safety valve against degenerate event accumulation (e.g. a query
#: crossing a dense cluster causes legitimately many events; beyond
#: this, something is numerically wrong).
MAX_SEGMENTS = 100_000


class TimelineSegment(NamedTuple):
    """One constant-result stretch of a continuous query."""

    t_from: float
    t_to: float
    oids: Tuple[int, ...]


def continuous_knn(tree: RStarTree, start, velocity, t_end: float,
                   k: int = 1) -> List[TimelineSegment]:
    """The kNN *set* timeline along ``start + t * velocity``, t in [0, t_end].

    Segments are half-open ``[t_from, t_to)`` except the last, which
    closes at ``t_end``.  Ties at segment boundaries resolve to the
    incoming result.
    """
    speed = math.hypot(velocity[0], velocity[1])
    if speed == 0.0:
        raise ValueError("velocity must be non-zero")
    if t_end <= 0.0:
        raise ValueError("t_end must be positive")
    direction = (velocity[0] / speed, velocity[1] / speed)

    segments: List[TimelineSegment] = []
    t = 0.0
    while t < t_end and len(segments) < MAX_SEGMENTS:
        pos = (start[0] + velocity[0] * t, start[1] + velocity[1] * t)
        result = [n.entry for n in nearest_neighbors(tree, pos, k=k)]
        event = tp_knn(tree, pos, direction, result)
        # TP time is travelled distance from `pos`; convert to time.
        t_next = t + event.time / speed if event.found else math.inf
        # Nudge past the crossing so the next kNN reflects the swap.
        t_next_eval = min(t_next, t_end)
        segments.append(TimelineSegment(
            t, t_next_eval, tuple(sorted(e.oid for e in result))))
        if t_next >= t_end:
            break
        t = _step_past(t_next, t_end)
    return segments


def continuous_window(tree: RStarTree, rect: Rect, velocity,
                      t_end: float) -> List[TimelineSegment]:
    """The window-result timeline for a window translating with
    ``velocity`` over ``[0, t_end]``."""
    if velocity[0] == 0.0 and velocity[1] == 0.0:
        raise ValueError("velocity must be non-zero")
    if t_end <= 0.0:
        raise ValueError("t_end must be positive")

    segments: List[TimelineSegment] = []
    t = 0.0
    while t < t_end and len(segments) < MAX_SEGMENTS:
        moved = Rect(rect.xmin + velocity[0] * t, rect.ymin + velocity[1] * t,
                     rect.xmax + velocity[0] * t, rect.ymax + velocity[1] * t)
        result = tree.window(moved)
        event = tp_window(tree, moved, velocity)
        t_next = t + event.time
        t_next_eval = min(t_next, t_end)
        segments.append(TimelineSegment(
            t, t_next_eval, tuple(sorted(e.oid for e in result))))
        if t_next >= t_end:
            break
        t = _step_past(t_next, t_end)
    return segments


def _step_past(t_event: float, t_end: float) -> float:
    """A time strictly after ``t_event`` (by one ULP-scale nudge)."""
    nudge = max(abs(t_event), t_end) * 1e-12
    return t_event + max(nudge, 1e-300)
