"""Query algorithms over the R*-tree.

* :mod:`repro.queries.nn` — k-nearest-neighbour search: the depth-first
  branch-and-bound of Roussopoulos et al. [RKV95] and the optimal
  best-first algorithm of Hjaltason & Samet [HS99].
* :mod:`repro.queries.window` — window queries and derived variants.
* :mod:`repro.queries.tp` — time-parameterized queries [TP02]: given a
  query moving along a ray, find the object that changes the result
  first and the time at which it does.  TPNN/TPkNN are the workhorse of
  the paper's validity-region computation (Section 3.1).
"""

from repro.queries.nn import Neighbor, nearest_neighbors
from repro.queries.window import window_query
from repro.queries.range import nearest_outside, range_query
from repro.queries.tp import TPEvent, tp_knn, tp_nn, tp_window
from repro.queries.continuous import TimelineSegment, continuous_knn, continuous_window

__all__ = [
    "Neighbor",
    "nearest_neighbors",
    "window_query",
    "TPEvent",
    "tp_nn",
    "tp_knn",
    "tp_window",
    "range_query",
    "nearest_outside",
    "continuous_knn",
    "continuous_window",
    "TimelineSegment",
]
