"""k-nearest-neighbour search over the R*-tree.

Two classic algorithms are provided:

* ``method="depth_first"`` — the branch-and-bound of Roussopoulos,
  Kelly & Vincent [RKV95]: descend depth-first, visiting entries in
  *mindist* order and pruning subtrees whose mindist exceeds the
  distance of the k-th neighbour found so far.
* ``method="best_first"`` — Hjaltason & Samet's distance browsing
  [HS99]: a global priority queue over nodes and objects, which visits
  only nodes that may contain an actual neighbour (I/O optimal).

Both return identical answers; the experiments of Figure 27/28 use the
best-first algorithm for step (i) of the location-based NN query, and
the ablation bench compares the node accesses of the two.
"""

from __future__ import annotations

import heapq
import math
from typing import List, NamedTuple, Optional, Set

from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree


class Neighbor(NamedTuple):
    """One answer of a kNN query."""

    entry: LeafEntry
    dist: float


def nearest_neighbors(tree: RStarTree, q, k: int = 1,
                      method: str = "best_first",
                      exclude: Optional[Set[int]] = None) -> List[Neighbor]:
    """The ``k`` data points nearest to ``q``, closest first.

    ``exclude`` is a set of object ids to ignore (used by incremental
    algorithms).  Fewer than ``k`` results are returned only when the
    dataset is too small.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if method == "best_first":
        return _best_first(tree, q, k, exclude or frozenset())
    if method == "depth_first":
        return _depth_first(tree, q, k, exclude or frozenset())
    raise ValueError(f"unknown NN method {method!r}")


# ----------------------------------------------------------------------
# best-first [HS99]
# ----------------------------------------------------------------------
def _best_first(tree: RStarTree, q, k: int, exclude) -> List[Neighbor]:
    # The heap is ordered by *squared* distance — the ordering (and
    # hence the node-access sequence) is identical, and the per-entry
    # sqrt moves off the hot path to the k materialized results.
    result: List[Neighbor] = []
    counter = 0  # heap tie-breaker; nodes/entries are not comparable
    heap = [(0.0, counter, tree.root)]
    while heap:
        d2, _, item = heapq.heappop(heap)
        if isinstance(item, LeafEntry):
            result.append(Neighbor(item, math.sqrt(d2)))
            if len(result) == k:
                return result
            continue
        tree.read_node(item)
        if item.is_leaf:
            for e in item.entries:
                if e.oid in exclude:
                    continue
                counter += 1
                d2 = (e.x - q[0]) ** 2 + (e.y - q[1]) ** 2
                heapq.heappush(heap, (d2, counter, e))
        else:
            for child in item.entries:
                counter += 1
                heapq.heappush(heap,
                               (child.mbr.mindist_sq(q), counter, child))
    return result


# ----------------------------------------------------------------------
# depth-first [RKV95]
# ----------------------------------------------------------------------
def _depth_first(tree: RStarTree, q, k: int, exclude) -> List[Neighbor]:
    # Max-heap (by negated squared distance) of the best k candidates;
    # pruning compares squared quantities, sqrt runs once per result.
    best: List = []

    def kth_dist_sq() -> float:
        return -best[0][0] if len(best) == k else math.inf

    def visit(node) -> None:
        tree.read_node(node)
        if node.is_leaf:
            for e in node.entries:
                if e.oid in exclude:
                    continue
                d2 = (e.x - q[0]) ** 2 + (e.y - q[1]) ** 2
                if d2 < kth_dist_sq():
                    heapq.heappush(best, (-d2, e.oid, e))
                    if len(best) > k:
                        heapq.heappop(best)
            return
        children = sorted(node.entries, key=lambda c: c.mbr.mindist_sq(q))
        for child in children:
            if child.mbr.mindist_sq(q) < kth_dist_sq() or len(best) < k:
                visit(child)

    visit(tree.root)
    ordered = sorted(((-negd2, e) for negd2, _, e in best),
                     key=lambda t: t[0])
    return [Neighbor(e, math.sqrt(d2)) for d2, e in ordered]
