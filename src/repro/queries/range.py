"""Circular range queries ("all restaurants within 5 km").

These support the region-query extension sketched in the paper's
conclusion (Section 7).  ``range_query`` retrieves everything within
the radius; ``nearest_outside`` finds the closest object *beyond* the
radius — the object that would enter the result first, which bounds the
validity disk of a location-based range query.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional

from repro.index.entry import LeafEntry
from repro.index.rstar import RStarTree
from repro.queries.nn import Neighbor


def range_query(tree: RStarTree, center, radius: float) -> List[LeafEntry]:
    """All data points within (closed) distance ``radius`` of ``center``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    radius_sq = radius * radius
    result: List[LeafEntry] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        tree.read_node(node)
        if node.is_leaf:
            for e in node.entries:
                dx = e.x - center[0]
                dy = e.y - center[1]
                if dx * dx + dy * dy <= radius_sq:
                    result.append(e)
        else:
            for child in node.entries:
                if child.mbr.mindist_sq(center) <= radius_sq:
                    stack.append(child)
    return result


def nearest_outside(tree: RStarTree, center,
                    radius: float) -> Optional[Neighbor]:
    """The nearest data point strictly farther than ``radius``.

    Best-first search ordered by mindist; nodes cannot be pruned by the
    radius (a node overlapping the disk may still contain points beyond
    it), only by the best candidate found so far.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    best: Optional[Neighbor] = None
    counter = 0
    heap = [(0.0, counter, tree.root)]
    while heap:
        dist, _, node = heapq.heappop(heap)
        if best is not None and dist >= best.dist:
            break
        tree.read_node(node)
        if node.is_leaf:
            for e in node.entries:
                d = math.hypot(e.x - center[0], e.y - center[1])
                if d > radius and (best is None or d < best.dist):
                    best = Neighbor(e, d)
        else:
            for child in node.entries:
                child_dist = child.mbr.mindist(center)
                if best is None or child_dist < best.dist:
                    counter += 1
                    heapq.heappush(heap, (child_dist, counter, child))
    return best
