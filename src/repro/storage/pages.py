"""Page identity allocation for the simulated disk."""

from __future__ import annotations

from typing import Set


class PageStore:
    """Allocates and frees page identifiers.

    Each R*-tree node occupies one page (paper setup: 4 KB pages, one
    node per page).  The store tracks how many pages are live so buffer
    pools can be sized as a fraction of the tree ("LRU buffer equal to
    10 % of the R-tree size").
    """

    __slots__ = ("_next_id", "_live")

    def __init__(self) -> None:
        self._next_id = 0
        self._live: Set[int] = set()

    def allocate(self) -> int:
        """Reserve a fresh page id."""
        page_id = self._next_id
        self._next_id += 1
        self._live.add(page_id)
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page id.

        Raises :class:`KeyError` if the page is not live — freeing twice
        indicates a structural bug in the index.
        """
        self._live.remove(page_id)

    @property
    def num_pages(self) -> int:
        """Number of live pages (the on-disk size of the structure)."""
        return len(self._live)

    def is_live(self, page_id: int) -> bool:
        return page_id in self._live
