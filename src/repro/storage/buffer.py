"""An LRU buffer pool over simulated pages."""

from __future__ import annotations

from collections import OrderedDict


class LRUBufferPool:
    """Fixed-capacity page buffer with least-recently-used eviction.

    ``capacity`` is a number of pages.  A capacity of zero models the
    unbuffered case: every access is a fault.  The pool only tracks page
    *identities* — the actual node objects live in Python memory — which
    is all that is needed to count page faults.
    """

    __slots__ = ("_capacity", "_pages", "hits", "misses")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self._capacity = capacity
        self._pages: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, page_id: int) -> bool:
        """Touch a page; return ``True`` on a fault (miss), ``False`` on a hit."""
        if self._capacity == 0:
            self.misses += 1
            return True
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return False
        self.misses += 1
        if len(self._pages) >= self._capacity:
            self._pages.popitem(last=False)
        self._pages[page_id] = True
        return True

    def invalidate(self, page_id: int) -> None:
        """Drop a page (e.g. after a node is deleted or split away)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (a cold restart) without resetting hit counters."""
        self._pages.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A JSON-serializable snapshot (the service-layer report format)."""
        return {
            "capacity": self._capacity,
            "resident": len(self._pages),
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }
