"""The simulated disk: where node accesses become NA/PA statistics."""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator, Optional

from repro.obs.context import PHASE_SPAN_NAMES, current_trace
from repro.obs.context import span as obs_span
from repro.storage.buffer import LRUBufferPool
from repro.storage.counters import AccessStats

DEFAULT_PHASE = "default"

#: Signature of a phase listener: ``(phase_name, elapsed_seconds)``,
#: called once per completed :meth:`DiskSimulator.phase` block.
PhaseListener = Callable[[str, float], None]


class DiskSimulator:
    """Counts node accesses and page faults through an optional buffer.

    The index calls :meth:`read` for every node it touches.  Experiments
    wrap query executions in :meth:`phase` blocks so costs can be
    attributed ("nn" vs "tpnn", "result" vs "influence"), and size the
    buffer with :meth:`set_buffer`.  The service layer installs a
    :data:`PhaseListener` to turn those same blocks into wall-clock
    trace spans.
    """

    __slots__ = ("stats", "_buffer", "_phase", "_listener")

    def __init__(self, buffer_pages: int = 0):
        self.stats = AccessStats()
        self._buffer: Optional[LRUBufferPool] = (
            LRUBufferPool(buffer_pages) if buffer_pages > 0 else None
        )
        self._phase = DEFAULT_PHASE
        self._listener: Optional[PhaseListener] = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_buffer(self, pages: int) -> None:
        """(Re)install an LRU buffer of ``pages`` pages (0 disables it)."""
        self._buffer = LRUBufferPool(pages) if pages > 0 else None

    @property
    def buffer(self) -> Optional[LRUBufferPool]:
        return self._buffer

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> None:
        """Register an access to ``page_id`` under the current phase."""
        fault = True if self._buffer is None else self._buffer.access(page_id)
        self.stats.record(self._phase, fault)

    def invalidate(self, page_id: int) -> None:
        """Forget a page (freed by the index) from the buffer."""
        if self._buffer is not None:
            self._buffer.invalidate(page_id)

    # ------------------------------------------------------------------
    # phases and lifecycle
    # ------------------------------------------------------------------
    def set_phase_listener(self, listener: Optional[PhaseListener]
                           ) -> Optional[PhaseListener]:
        """Install (or clear) the phase listener; returns the previous one."""
        previous = self._listener
        self._listener = listener
        return previous

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute enclosed accesses to phase ``name`` (re-entrant).

        Under an active trace context (:mod:`repro.obs.context`) the
        block also records a disk-level child span — the leaf of the
        query's span tree — annotated with the node accesses and page
        faults the phase charged to this disk.
        """
        if current_trace() is not None:
            with obs_span(PHASE_SPAN_NAMES.get(name, name),
                          meta={"phase": name}) as span_:
                na0 = self.stats.node_accesses[name]
                pf0 = self.stats.page_faults[name]
                with self._plain_phase(name):
                    try:
                        yield
                    finally:
                        span_.meta["node_accesses"] = (
                            self.stats.node_accesses[name] - na0)
                        span_.meta["page_faults"] = (
                            self.stats.page_faults[name] - pf0)
        else:
            with self._plain_phase(name):
                yield

    @contextmanager
    def _plain_phase(self, name: str) -> Iterator[None]:
        previous = self._phase
        self._phase = name
        start = perf_counter() if self._listener is not None else 0.0
        try:
            yield
        finally:
            self._phase = previous
            if self._listener is not None:
                self._listener(name, perf_counter() - start)

    def reset_stats(self) -> None:
        """Zero the counters; the buffer contents stay warm."""
        self.stats.reset()

    def cold_restart(self) -> None:
        """Zero the counters and empty the buffer."""
        self.stats.reset()
        if self._buffer is not None:
            self._buffer.clear()
