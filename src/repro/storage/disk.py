"""The simulated disk: where node accesses become NA/PA statistics."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.storage.buffer import LRUBufferPool
from repro.storage.counters import AccessStats

DEFAULT_PHASE = "default"


class DiskSimulator:
    """Counts node accesses and page faults through an optional buffer.

    The index calls :meth:`read` for every node it touches.  Experiments
    wrap query executions in :meth:`phase` blocks so costs can be
    attributed ("nn" vs "tpnn", "result" vs "influence"), and size the
    buffer with :meth:`set_buffer`.
    """

    __slots__ = ("stats", "_buffer", "_phase")

    def __init__(self, buffer_pages: int = 0):
        self.stats = AccessStats()
        self._buffer: Optional[LRUBufferPool] = (
            LRUBufferPool(buffer_pages) if buffer_pages > 0 else None
        )
        self._phase = DEFAULT_PHASE

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_buffer(self, pages: int) -> None:
        """(Re)install an LRU buffer of ``pages`` pages (0 disables it)."""
        self._buffer = LRUBufferPool(pages) if pages > 0 else None

    @property
    def buffer(self) -> Optional[LRUBufferPool]:
        return self._buffer

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> None:
        """Register an access to ``page_id`` under the current phase."""
        fault = True if self._buffer is None else self._buffer.access(page_id)
        self.stats.record(self._phase, fault)

    def invalidate(self, page_id: int) -> None:
        """Forget a page (freed by the index) from the buffer."""
        if self._buffer is not None:
            self._buffer.invalidate(page_id)

    # ------------------------------------------------------------------
    # phases and lifecycle
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute enclosed accesses to phase ``name`` (re-entrant)."""
        previous = self._phase
        self._phase = name
        try:
            yield
        finally:
            self._phase = previous

    def reset_stats(self) -> None:
        """Zero the counters; the buffer contents stay warm."""
        self.stats.reset()

    def cold_restart(self) -> None:
        """Zero the counters and empty the buffer."""
        self.stats.reset()
        if self._buffer is not None:
            self._buffer.clear()
