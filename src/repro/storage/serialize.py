"""Binary serialization of R*-trees (a paged on-disk format).

A stored tree is a header plus one fixed-size page per node, mirroring
the disk layout the paper's cost model assumes (one node per page):

* header: magic, version, page size, node capacity, tree height, object
  count, root page index, page count;
* leaf page: level byte, entry count, then 20-byte point entries
  (u32 oid + 2 x f64) — the paper's entry size;
* inner page: level byte, entry count, then 36-byte child entries
  (u32 child page + 4 x f64 MBR).

The page size is chosen as the smallest multiple of 512 bytes that fits
``capacity`` entries of the larger kind, so any capacity round-trips.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.index.entry import LeafEntry
from repro.index.node import Node
from repro.index.rstar import RStarTree
from repro.storage.disk import DiskSimulator

MAGIC = b"RPRT"
VERSION = 1

_HEADER = struct.Struct("<4sHHIIIII")   # magic, version, reserved,
                                        # page_size, capacity, height,
                                        # size, root_page (+page count via len)
_PAGE_HEADER = struct.Struct("<BH")     # level, entry count
_LEAF_ENTRY = struct.Struct("<Idd")     # oid, x, y
_INNER_ENTRY = struct.Struct("<Idddd")  # child page, mbr


def page_size_for(capacity: int) -> int:
    """Smallest 512-byte multiple fitting ``capacity`` inner entries."""
    needed = _PAGE_HEADER.size + capacity * _INNER_ENTRY.size
    return ((needed + 511) // 512) * 512


def tree_to_bytes(tree: RStarTree) -> bytes:
    """Serialize ``tree`` to its paged binary image (no file involved).

    This is the byte string :func:`save_tree` writes; the process-pool
    shard backend ships it to workers so each one can rebuild its shard
    trees exactly once at initialization.
    """
    page_size = page_size_for(tree.capacity)
    # Assign dense page indices in a deterministic DFS order.
    order: List[Node] = list(tree.nodes())
    index: Dict[int, int] = {id(node): i for i, node in enumerate(order)}
    parts = [_HEADER.pack(MAGIC, VERSION, 0, page_size, tree.capacity,
                          tree.height, len(tree), index[id(tree.root)]),
             struct.pack("<I", len(order))]
    parts.extend(_encode_page(node, index, page_size) for node in order)
    return b"".join(parts)


def save_tree(tree: RStarTree, path: str) -> int:
    """Write ``tree`` to ``path``; returns the number of bytes written."""
    data = tree_to_bytes(tree)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def tree_from_bytes(data: bytes, disk: DiskSimulator | None = None,
                    source: str = "<bytes>") -> RStarTree:
    """Rebuild a tree from its :func:`tree_to_bytes` image.

    Entry order is preserved page-for-page, so a rebuilt tree traverses
    (and therefore answers and charges) exactly like the original.
    """
    if len(data) < _HEADER.size:
        raise ValueError(f"{source}: truncated header")
    magic, version, _, page_size, capacity, height, size, root_page = (
        _HEADER.unpack_from(data, 0))
    if magic != MAGIC:
        raise ValueError(f"{source}: not a serialized R*-tree")
    if version != VERSION:
        raise ValueError(f"{source}: unsupported version {version}")
    offset = _HEADER.size
    (num_pages,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if len(data) < offset + num_pages * page_size:
        raise ValueError(f"{source}: truncated page data")
    pages = [data[offset + i * page_size: offset + (i + 1) * page_size]
             for i in range(num_pages)]
    return _assemble(pages, capacity, height, size, root_page, disk, source)


def load_tree(path: str, disk: DiskSimulator | None = None) -> RStarTree:
    """Read a tree written by :func:`save_tree`.

    The loaded tree is fully functional (queries, inserts, deletes) and
    charged to ``disk`` like any other.
    """
    with open(path, "rb") as fh:
        return tree_from_bytes(fh.read(), disk=disk, source=path)


def _assemble(pages: List[bytes], capacity: int, height: int, size: int,
              root_page: int, disk: DiskSimulator | None,
              source: str) -> RStarTree:
    tree = RStarTree(capacity=capacity, disk=disk)
    tree.pages.free(tree.root.page_id)  # discard the placeholder root

    nodes: List[Node] = []
    children: List[List[int]] = []
    for raw_page in pages:
        node, child_pages = _decode_page(raw_page, tree)
        nodes.append(node)
        children.append(child_pages)
    for node, child_pages in zip(nodes, children):
        if not node.is_leaf:
            node.entries = [nodes[c] for c in child_pages]
    # MBRs must be tightened leaf-first: inner MBRs depend on children.
    for node in sorted(nodes, key=lambda n: n.level):
        node.recompute_mbr()
    if not 0 <= root_page < len(nodes):
        raise ValueError(f"{source}: root page {root_page} out of range")
    tree.root = nodes[root_page]
    tree._size = size
    if tree.height != height:
        raise ValueError(f"{source}: height mismatch "
                         f"({tree.height} != stored {height})")
    return tree


def _encode_page(node: Node, index: Dict[int, int], page_size: int) -> bytes:
    parts = [_PAGE_HEADER.pack(node.level, len(node.entries))]
    if node.is_leaf:
        for e in node.entries:
            parts.append(_LEAF_ENTRY.pack(e.oid, e.x, e.y))
    else:
        for child in node.entries:
            parts.append(_INNER_ENTRY.pack(index[id(child)],
                                           child.mbr.xmin, child.mbr.ymin,
                                           child.mbr.xmax, child.mbr.ymax))
    payload = b"".join(parts)
    if len(payload) > page_size:
        raise ValueError("node does not fit in a page — corrupt capacity?")
    return payload + b"\0" * (page_size - len(payload))


def _decode_page(raw: bytes, tree: RStarTree):
    level, count = _PAGE_HEADER.unpack_from(raw, 0)
    node = Node(level=level, page_id=tree.pages.allocate())
    offset = _PAGE_HEADER.size
    child_pages: List[int] = []
    if level == 0:
        for _ in range(count):
            oid, x, y = _LEAF_ENTRY.unpack_from(raw, offset)
            node.entries.append(LeafEntry(oid, x, y))
            offset += _LEAF_ENTRY.size
    else:
        for _ in range(count):
            child, *_mbr = _INNER_ENTRY.unpack_from(raw, offset)
            child_pages.append(child)
            offset += _INNER_ENTRY.size
    return node, child_pages
