"""Per-phase access statistics."""

from __future__ import annotations

from collections import Counter
from typing import Dict


class AccessStats:
    """Node-access and page-fault counts, attributed to named phases.

    Phases let one experiment split a single buffer-sharing run into the
    components the paper plots separately — e.g. Figure 27 stacks the
    cost of the initial NN query and the cost of the follow-up TPNN
    queries, while Figure 34 stacks the result window query and the
    influence-object window query.
    """

    __slots__ = ("node_accesses", "page_faults")

    def __init__(self) -> None:
        self.node_accesses: Counter = Counter()
        self.page_faults: Counter = Counter()

    def record(self, phase: str, fault: bool) -> None:
        """Record one node access (and optionally one page fault)."""
        self.node_accesses[phase] += 1
        if fault:
            self.page_faults[phase] += 1

    @property
    def total_node_accesses(self) -> int:
        return sum(self.node_accesses.values())

    @property
    def total_page_faults(self) -> int:
        return sum(self.page_faults.values())

    def node_accesses_by_phase(self) -> Dict[str, int]:
        return dict(self.node_accesses)

    def page_faults_by_phase(self) -> Dict[str, int]:
        return dict(self.page_faults)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot (the service-layer report format)."""
        return {
            "node_accesses": dict(self.node_accesses),
            "page_faults": dict(self.page_faults),
            "total_node_accesses": self.total_node_accesses,
            "total_page_faults": self.total_page_faults,
        }

    def reset(self) -> None:
        self.node_accesses.clear()
        self.page_faults.clear()

    def merge(self, other: "AccessStats") -> None:
        """Accumulate another run's counts into this one."""
        self.node_accesses.update(other.node_accesses)
        self.page_faults.update(other.page_faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AccessStats(NA={self.total_node_accesses}, "
                f"PA={self.total_page_faults}, "
                f"phases={sorted(self.node_accesses)})")
