"""Seeded fault injection for the simulated disk.

:class:`FaultyDiskSimulator` wraps (by subclassing) the
:class:`~repro.storage.disk.DiskSimulator` every R*-tree consults on
node reads, and executes a deterministic :class:`FaultPlan`: per-phase
read failures surface as :class:`PageReadError`, reads can be delayed by
a seeded latency distribution, and the buffer pool can be made *stuck*
for a window of reads (every access misses, nothing is admitted) — the
three failure shapes a paged server actually exhibits under slow or
dying disks.

Determinism: all randomness comes from one ``random.Random`` seeded by
the plan, and the stuck-buffer window is keyed on the global read
counter, so a single-threaded replay of the same access sequence
produces the same faults read-for-read.  Under concurrency the *draw
order* follows thread interleaving, but the marginal fault rate and the
explicitly pinned ``fail_reads`` indices are unaffected.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.obs.context import emit_event
from repro.storage.disk import DiskSimulator

__all__ = ["PageReadError", "FaultPlan", "FaultyDiskSimulator",
           "inject_faults"]


class PageReadError(OSError):
    """A simulated unrecoverable read of one page.

    ``transient`` marks the error as retryable for the service layer's
    retry policy and the client's stale-cache fallback (duck-typed so
    the storage layer needs no dependency on them).
    """

    transient = True

    def __init__(self, page_id: int, phase: str, read_index: int):
        super().__init__(
            f"simulated read failure of page {page_id} "
            f"(phase {phase!r}, read #{read_index})")
        self.page_id = page_id
        self.phase = phase
        self.read_index = read_index


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of how the disk misbehaves.

    ``read_failure_rate`` applies to every phase unless overridden in
    ``phase_failure_rates`` (keyed by the disk-phase name, e.g. ``"nn"``
    or ``"tpnn"``).  ``fail_reads`` pins specific 1-based read indices
    that always fail — the deterministic hook chaos tests use to script
    exact failure sequences.

    ``latency_mean_s`` injects an exponentially distributed sleep on a
    ``latency_rate`` fraction of reads (every read by default), the
    heavy-tailed shape of a contended spindle.

    ``stuck_buffer_at``/``stuck_buffer_reads`` describe a window of the
    read sequence during which the buffer pool is stuck: every read in
    the window is charged as a fault and the pool is neither consulted
    nor updated.
    """

    seed: int = 0
    read_failure_rate: float = 0.0
    phase_failure_rates: Mapping[str, float] = field(default_factory=dict)
    fail_reads: Tuple[int, ...] = ()
    latency_mean_s: float = 0.0
    latency_rate: float = 1.0
    stuck_buffer_at: Optional[int] = None
    stuck_buffer_reads: int = 0

    def __post_init__(self):
        object.__setattr__(self, "phase_failure_rates",
                           dict(self.phase_failure_rates))
        object.__setattr__(self, "fail_reads",
                           tuple(int(i) for i in self.fail_reads))
        for rate in (self.read_failure_rate, self.latency_rate,
                     *self.phase_failure_rates.values()):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be in [0, 1]")
        if self.latency_mean_s < 0.0:
            raise ValueError("latency_mean_s must be non-negative")

    def failure_rate(self, phase: str) -> float:
        return self.phase_failure_rates.get(phase, self.read_failure_rate)


class FaultyDiskSimulator(DiskSimulator):
    """A :class:`DiskSimulator` that executes a :class:`FaultPlan`.

    Build one directly, or graft a plan onto an existing tree with
    :func:`inject_faults` (which keeps the tree's buffer and statistics).
    Injected-fault accounting is kept separate from the paper's NA/PA
    statistics in :attr:`injected`.
    """

    __slots__ = ("plan", "injected", "_rng", "_reads", "_sleep", "replaced")

    def __init__(self, plan: FaultPlan, buffer_pages: int = 0,
                 sleep=time.sleep):
        super().__init__(buffer_pages)
        self.plan = plan
        self.injected: Dict[str, float] = {
            "read_failures": 0, "latency_events": 0,
            "latency_seconds": 0.0, "stuck_reads": 0,
        }
        self._rng = random.Random(plan.seed)
        self._reads = 0
        self._sleep = sleep

    @property
    def reads_attempted(self) -> int:
        """Total reads attempted (including ones that failed)."""
        return self._reads

    def _stuck(self, read_index: int) -> bool:
        start = self.plan.stuck_buffer_at
        if start is None:
            return False
        return start <= read_index < start + self.plan.stuck_buffer_reads

    def read(self, page_id: int) -> None:
        self._reads += 1
        index = self._reads
        plan = self.plan
        if plan.latency_mean_s > 0.0 and (
                plan.latency_rate >= 1.0
                or self._rng.random() < plan.latency_rate):
            delay = self._rng.expovariate(1.0 / plan.latency_mean_s)
            self.injected["latency_events"] += 1
            self.injected["latency_seconds"] += delay
            self._sleep(delay)
        rate = plan.failure_rate(self._phase)
        if index in plan.fail_reads or (
                rate > 0.0 and self._rng.random() < rate):
            # The access was attempted: charge it (as a fault — the read
            # never came back from the buffer) before failing.
            self.stats.record(self._phase, True)
            self.injected["read_failures"] += 1
            emit_event("fault", event="disk.read_failure", page_id=page_id,
                       phase=self._phase, read_index=index)
            raise PageReadError(page_id, self._phase, index)
        if self._stuck(index):
            # Stuck pool: bypass the buffer entirely — a guaranteed
            # fault that neither hits nor admits pages.
            self.injected["stuck_reads"] += 1
            self.stats.record(self._phase, True)
            emit_event("fault", event="disk.stuck_read", page_id=page_id,
                       phase=self._phase, read_index=index)
            return
        super().read(page_id)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable fault-injection accounting."""
        return {
            "reads_attempted": self._reads,
            **{k: v for k, v in self.injected.items()},
        }


def inject_faults(tree, plan: FaultPlan,
                  sleep=time.sleep) -> FaultyDiskSimulator:
    """Replace ``tree.disk`` with a faulty wrapper executing ``plan``.

    The existing access statistics and buffer pool are carried over, so
    NA/PA accounting and buffer warmth are continuous across the swap.
    Returns the installed :class:`FaultyDiskSimulator`; the previous
    disk is kept on its ``replaced`` attribute for restoration.
    """
    old = tree.disk
    faulty = FaultyDiskSimulator(plan, sleep=sleep)
    faulty.stats = old.stats
    faulty._buffer = old.buffer
    faulty._phase = old._phase
    faulty._listener = old._listener
    faulty.replaced = old
    tree.disk = faulty
    return faulty
