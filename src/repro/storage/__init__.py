"""Simulated paged storage.

The paper reports two server-side cost metrics:

* **NA** — node accesses: every R*-tree node touched by a query;
* **PA** — page accesses: node accesses that miss an LRU buffer sized at
  10 % of the tree (Section 6).

This package provides the machinery to measure both: a page allocator
(:class:`PageStore`), an LRU buffer pool (:class:`LRUBufferPool`) and a
:class:`DiskSimulator` that the index consults on every node read,
attributing costs to named *phases* (e.g. the initial NN query versus
the subsequent TPNN queries of Figure 27).
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.counters import AccessStats
from repro.storage.disk import DiskSimulator
from repro.storage.faulty import (
    FaultPlan,
    FaultyDiskSimulator,
    PageReadError,
    inject_faults,
)
from repro.storage.pages import PageStore

__all__ = [
    "LRUBufferPool",
    "AccessStats",
    "DiskSimulator",
    "PageStore",
    "FaultPlan",
    "FaultyDiskSimulator",
    "PageReadError",
    "inject_faults",
]
