"""A minimal SVG canvas for spatial drawings."""

from __future__ import annotations

import html
from typing import Iterable, List, Optional, Sequence

from repro.geometry import ConvexPolygon, Rect


class SvgCanvas:
    """Accumulates shapes in *world* coordinates, renders to SVG.

    World coordinates are mapped so the given universe fills the canvas
    with the y-axis pointing up (SVG's own y points down).
    """

    def __init__(self, universe: Rect, width_px: int = 640,
                 margin_px: int = 10):
        universe.validate()
        if universe.width <= 0 or universe.height <= 0:
            raise ValueError("universe must have positive extent")
        self.universe = universe
        self.width_px = width_px
        self.margin_px = margin_px
        scale = (width_px - 2 * margin_px) / universe.width
        self._scale = scale
        self.height_px = int(universe.height * scale) + 2 * margin_px
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def _x(self, wx: float) -> float:
        return self.margin_px + (wx - self.universe.xmin) * self._scale

    def _y(self, wy: float) -> float:
        return (self.height_px - self.margin_px
                - (wy - self.universe.ymin) * self._scale)

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    def add_points(self, points: Iterable, radius_px: float = 1.5,
                   color: str = "#555555", opacity: float = 1.0) -> None:
        for p in points:
            self._elements.append(
                f'<circle cx="{self._x(p[0]):.2f}" cy="{self._y(p[1]):.2f}" '
                f'r="{radius_px}" fill="{color}" opacity="{opacity}"/>')

    def add_marker(self, point, color: str = "#d62728",
                   radius_px: float = 4.0, label: Optional[str] = None) -> None:
        self.add_points([point], radius_px=radius_px, color=color)
        if label:
            self._elements.append(
                f'<text x="{self._x(point[0]) + 6:.2f}" '
                f'y="{self._y(point[1]) - 6:.2f}" font-size="11" '
                f'fill="{color}">{html.escape(label)}</text>')

    def add_rect(self, rect: Rect, stroke: str = "#1f77b4",
                 fill: str = "none", opacity: float = 0.35,
                 dashed: bool = False) -> None:
        dash = ' stroke-dasharray="4 3"' if dashed else ""
        self._elements.append(
            f'<rect x="{self._x(rect.xmin):.2f}" y="{self._y(rect.ymax):.2f}" '
            f'width="{rect.width * self._scale:.2f}" '
            f'height="{rect.height * self._scale:.2f}" '
            f'stroke="{stroke}" fill="{fill}" fill-opacity="{opacity}"{dash}/>')

    def add_polygon(self, polygon: ConvexPolygon, stroke: str = "#2ca02c",
                    fill: str = "#2ca02c", opacity: float = 0.25) -> None:
        if polygon.is_empty:
            return
        points = " ".join(f"{self._x(v.x):.2f},{self._y(v.y):.2f}"
                          for v in polygon.vertices)
        self._elements.append(
            f'<polygon points="{points}" stroke="{stroke}" '
            f'fill="{fill}" fill-opacity="{opacity}"/>')

    def add_disk(self, center, radius: float, stroke: str = "#9467bd",
                 fill: str = "#9467bd", opacity: float = 0.2) -> None:
        self._elements.append(
            f'<circle cx="{self._x(center[0]):.2f}" '
            f'cy="{self._y(center[1]):.2f}" '
            f'r="{radius * self._scale:.2f}" stroke="{stroke}" '
            f'fill="{fill}" fill-opacity="{opacity}"/>')

    def add_title(self, text: str) -> None:
        self._elements.append(
            f'<text x="{self.margin_px}" y="{self.margin_px + 4}" '
            f'font-size="13" fill="#000">{html.escape(text)}</text>')

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f'  {body}\n</svg>\n')

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_svg())


def render_nn_validity(result, universe: Rect, points: Sequence = (),
                       width_px: int = 640) -> SvgCanvas:
    """Draw an :class:`NNValidityResult`: data, query, neighbours,
    influence set and the validity region (paper Figure 7 style)."""
    canvas = SvgCanvas(universe, width_px=width_px)
    canvas.add_points(points, radius_px=1.2, color="#999999", opacity=0.7)
    canvas.add_polygon(result.region)
    for e in result.influence_set:
        canvas.add_marker((e.x, e.y), color="#ff7f0e", radius_px=3.0)
    for e in result.neighbors:
        canvas.add_marker((e.x, e.y), color="#2ca02c", radius_px=3.5)
    canvas.add_marker(result.query, color="#d62728", label="q")
    canvas.add_title(f"kNN validity region: {result.num_edges} edges, "
                     f"|S_inf|={result.num_influence_objects}")
    return canvas


def render_window_validity(result, universe: Rect, points: Sequence = (),
                           width_px: int = 640) -> SvgCanvas:
    """Draw a :class:`WindowValidityResult`: the window, its inner and
    conservative regions and the influence objects (Figure 17 style)."""
    canvas = SvgCanvas(universe, width_px=width_px)
    canvas.add_points(points, radius_px=1.2, color="#999999", opacity=0.7)
    canvas.add_rect(result.window, stroke="#1f77b4")
    canvas.add_rect(result.inner_region, stroke="#2ca02c", dashed=True)
    canvas.add_rect(result.conservative_region, stroke="#2ca02c",
                    fill="#2ca02c")
    for e in result.inner_influence:
        canvas.add_marker((e.x, e.y), color="#2ca02c", radius_px=3.0)
    for e in result.outer_influence:
        canvas.add_marker((e.x, e.y), color="#ff7f0e", radius_px=3.0)
    canvas.add_marker(result.focus, color="#d62728", label="focus")
    canvas.add_title(
        f"window validity: {len(result.result)} results, "
        f"{len(result.inner_influence)}+{len(result.outer_influence)} "
        f"influence objects")
    return canvas
