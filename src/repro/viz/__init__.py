"""Dependency-free SVG rendering of datasets, queries and validity regions.

The evaluation figures of the paper are line charts (regenerated as
text tables by ``benchmarks/``); its *explanatory* figures are spatial
drawings — query points, windows, Voronoi cells, Minkowski regions.
:class:`SvgCanvas` reproduces those: it renders points, rectangles,
polygons and disks into a standalone ``.svg`` file using nothing but
the standard library, so the library can illustrate its own output in
any environment.
"""

from repro.viz.svg import SvgCanvas, render_nn_validity, render_window_validity

__all__ = ["SvgCanvas", "render_nn_validity", "render_window_validity"]
