"""Trace-context propagation: activation, nesting, pool handoff."""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs import (
    EventLog,
    attach,
    current_trace,
    new_trace_id,
    span,
    start_trace,
)
from repro.obs.context import emit_event


def test_no_trace_is_the_fast_path():
    """Without an active trace every primitive is a cheap no-op."""
    assert current_trace() is None
    with span("index_descent") as s:
        assert s is None
    emit_event("query", event="query.start")  # must not raise
    assert current_trace() is None


def test_start_trace_activates_and_resets():
    assert current_trace() is None
    with start_trace(trace_id="t-1") as ctx:
        assert ctx.trace_id == "t-1"
        assert ctx.span_id is None  # the root
        assert current_trace() is ctx
    assert current_trace() is None


def test_new_trace_id_shape():
    tid = new_trace_id()
    assert len(tid) == 16
    int(tid, 16)  # hex
    assert tid != new_trace_id()


def test_span_nesting_builds_parent_child_ids():
    with start_trace() as ctx:
        with span("outer") as outer:
            assert outer.span_id == "s1"
            assert outer.parent_id is None  # child of the trace root
            with span("inner", meta={"k": 1}) as inner:
                assert inner.parent_id == outer.span_id
                # the active context now points at the inner span
                assert current_trace().span_id == inner.span_id
        spans = ctx.spans()
    names = [s.name for s in spans]
    assert names == ["outer", "inner"]  # chronological by start offset
    inner_span = next(s for s in spans if s.name == "inner")
    outer_span = next(s for s in spans if s.name == "outer")
    assert inner_span.parent_id == outer_span.span_id
    assert inner_span.meta == {"k": 1}
    # offsets/durations were filled in on exit, and the inner span is
    # contained in the outer one.
    assert outer_span.duration_ms >= inner_span.duration_ms >= 0.0
    assert inner_span.offset_ms >= outer_span.offset_ms


def test_two_clocks_never_mix():
    """Spans carry monotonic offsets; the trace carries one wall epoch."""
    before = time.time()
    with start_trace() as ctx:
        with span("work"):
            pass
        after = time.time()
        assert before <= ctx.started_at <= after
        (s,) = ctx.spans()
        # A monotonic offset is measured from the trace origin, so it is
        # tiny — nothing like an absolute epoch.
        assert 0.0 <= s.offset_ms < 60_000.0
        assert ctx.elapsed_ms() >= s.offset_ms


def test_pool_threads_do_not_inherit_context():
    with start_trace():
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert pool.submit(current_trace).result() is None


def test_attach_hands_the_trace_to_a_pool_worker():
    def worker(ctx):
        with attach(ctx):
            assert current_trace() is not None
            with span("shard_3", meta={"sid": 3}):
                with span("index_descent"):
                    pass
        assert current_trace() is None  # reset on detach

    with start_trace() as ctx:
        with span("shard_fanout") as fan:
            captured = current_trace()
            with ThreadPoolExecutor(max_workers=1) as pool:
                pool.submit(worker, captured).result()
        spans = {s.name: s for s in ctx.spans()}
    # The worker's spans landed in the submitting trace, parented under
    # the fan-out span that was active at capture time.
    assert spans["shard_3"].parent_id == fan.span_id
    assert spans["index_descent"].parent_id == spans["shard_3"].span_id


def test_attach_none_is_a_noop():
    with attach(None) as ctx:
        assert ctx is None
        assert current_trace() is None


def test_add_span_defaults_parent_to_context_span():
    with start_trace() as ctx:
        root_level = ctx.add_span("cache_probe", 0.0, 0.1)
        assert root_level.parent_id is None
        with span("shard_fanout") as fan:
            child = current_trace().add_span("merge", 1.0, 0.2)
        assert child.parent_id == fan.span_id
        explicit = ctx.add_span("late", 2.0, 0.1, parent_id=fan.span_id)
        assert explicit.parent_id == fan.span_id


def test_emit_event_correlates_with_active_span():
    log = EventLog()
    with start_trace(trace_id="t-ev", events=log):
        emit_event("query", event="query.start")
        with span("shard_fanout"):
            emit_event("shard", event="shard.scatter")
    root_ev, shard_ev = log.tail()
    assert root_ev["trace_id"] == shard_ev["trace_id"] == "t-ev"
    assert "span_id" not in root_ev  # emitted at the trace root
    assert shard_ev["span_id"] == "s1"
