"""Exporters: Prometheus line format, span trees, Chrome trace JSON."""

from __future__ import annotations

import json
import re

from repro.obs import chrome_trace, prometheus_text, span_tree, \
    write_chrome_trace
from repro.service import MetricsRegistry, QueryTrace, Span

# One sample line of the text exposition format (version 0.0.4):
# metric name, optional {labels}, a value.
_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9.eE+-]+$")


def _registry() -> MetricsRegistry:
    m = MetricsRegistry()
    m.counter("service.queries.knn").inc(3)
    m.counter("service.queries.window").inc(2)
    m.counter("service.cache.probes").inc(7)
    m.counter("service.shard.3.queries").inc(4)
    m.counter("service.node_accesses.nn").inc(11)
    m.gauge("service.fleet.clients").set(16)
    h = m.histogram("service.latency_ms.knn")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    return m


def test_prometheus_golden_lines():
    text = prometheus_text(_registry())
    lines = text.splitlines()
    # Per-kind counters fold the kind suffix into a label on one family.
    assert "repro_service_queries_total{kind=\"knn\"} 3" in lines
    assert "repro_service_queries_total{kind=\"window\"} 2" in lines
    # Shard / phase dimensions likewise.
    assert "repro_service_shard_queries_total{shard=\"3\"} 4" in lines
    assert "repro_service_node_accesses_total{phase=\"nn\"} 11" in lines
    # Unfolded names pass straight through.
    assert "repro_service_cache_probes_total 7" in lines
    assert "repro_service_fleet_clients 16.0" in lines
    # Histograms surface as summaries with quantile labels
    # (nearest-rank p50 of [1,2,3,4] is 3.0).
    assert ("repro_service_latency_ms{kind=\"knn\",quantile=\"0.5\"} 3.0"
            in lines)
    assert "repro_service_latency_ms_sum{kind=\"knn\"} 10.0" in lines
    assert "repro_service_latency_ms_count{kind=\"knn\"} 4" in lines


def test_prometheus_exposition_parses():
    """Every line is a comment or a well-formed sample; each family has
    exactly one TYPE header."""
    text = prometheus_text(_registry())
    assert text.endswith("\n")
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, prom_type = line.split(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = prom_type
        elif not line.startswith("#"):
            assert _EXPOSITION_LINE.match(line), f"bad sample line: {line!r}"
            metric = re.split(r"[{ ]", line, maxsplit=1)[0]
            family = re.sub(r"_(sum|count)$", "", metric)
            assert metric in types or family in types, (
                f"sample {metric} has no TYPE header")
    assert types["repro_service_queries_total"] == "counter"
    assert types["repro_service_fleet_clients"] == "gauge"
    assert types["repro_service_latency_ms"] == "summary"


def _trace() -> QueryTrace:
    return QueryTrace(
        trace_id="t-x", kind="knn", started_at=1_700_000_000.0,
        monotonic_origin=10.0, duration_ms=5.0,
        node_accesses={"nn": 7}, result_size=3,
        spans=[
            Span("cache_probe", 0.1, 0.2, span_id="s1"),
            Span("shard_fanout", 0.4, 4.0, span_id="s2"),
            Span("shard_3", 0.5, 1.5, span_id="s3", parent_id="s2",
                 meta={"sid": 3}),
            Span("index_descent", 0.6, 1.0, span_id="s4", parent_id="s3"),
            Span("serialization", 4.5, 0.3, span_id="s5"),
        ])


def test_span_tree_nests_children():
    tree = span_tree(_trace())
    assert tree["trace_id"] == "t-x"
    roots = [node["name"] for node in tree["spans"]]
    assert roots == ["cache_probe", "shard_fanout", "serialization"]
    fanout = tree["spans"][1]
    assert [c["name"] for c in fanout["children"]] == ["shard_3"]
    shard = fanout["children"][0]
    assert [c["name"] for c in shard["children"]] == ["index_descent"]


def test_span_tree_handles_legacy_flat_spans():
    trace = QueryTrace(trace_id="t-flat", kind="window", started_at=0.0,
                       spans=[Span("index_descent", 0.0, 1.0),
                              Span("serialization", 1.0, 0.1)])
    tree = span_tree(trace)
    assert [node["name"] for node in tree["spans"]] == [
        "index_descent", "serialization"]
    assert all(node["children"] == [] for node in tree["spans"])


def test_chrome_trace_structure_and_clocks():
    trace = _trace()
    doc = chrome_trace(trace)
    events = doc["traceEvents"]
    base_us = trace.started_at * 1e6
    # Metadata names the process and the shard track.
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["args"].get("name") == "shard 3" for e in meta)
    # The query slice and one slice per span, all absolute-time stamped.
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 1 + len(trace.spans)
    query = next(e for e in slices if e["cat"] == "query")
    assert query["ts"] == base_us
    assert query["dur"] == trace.duration_ms * 1e3
    shard = next(e for e in slices if e["name"] == "shard_3")
    assert shard["tid"] == 2 + 3  # its own track
    assert shard["ts"] == base_us + 0.5 * 1e3
    descent = next(e for e in slices if e["name"] == "index_descent")
    assert descent["tid"] == shard["tid"]  # children inherit the track
    probe = next(e for e in slices if e["name"] == "cache_probe")
    assert probe["tid"] == 1
    json.dumps(doc)  # serializable as-is


def test_write_chrome_trace_round_trips(tmp_path):
    path = write_chrome_trace(_trace(), tmp_path / "trace.json")
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["displayTimeUnit"] == "ms"
    assert any(e["name"] == "knn query" for e in doc["traceEvents"])
