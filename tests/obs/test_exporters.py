"""Exporters: Prometheus line format, span trees, Chrome trace JSON."""

from __future__ import annotations

import json
import re

import pytest

from repro.obs import chrome_trace, prometheus_text, span_tree, \
    write_chrome_trace
from repro.service import MetricsRegistry, QueryTrace, Span

# One sample line of the text exposition format (version 0.0.4):
# metric name, optional {labels}, a value.
_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9.eE+-]+(Inf)?$")


def _registry() -> MetricsRegistry:
    m = MetricsRegistry()
    m.counter("service.queries").inc(5)
    m.counter("service.queries", labels={"query_kind": "knn"}).inc(3)
    m.counter("service.queries", labels={"query_kind": "window"}).inc(2)
    m.counter("service.cache.probes").inc(7)
    m.counter("service.shard.queries",
              labels={"shard": "3", "backend": "thread"}).inc(4)
    m.counter("service.node_accesses", labels={"phase": "nn"}).inc(11)
    m.gauge("service.fleet.clients").set(16)
    h = m.histogram("service.latency_ms",
                    labels={"query_kind": "knn", "degraded": "false"},
                    buckets=(1.0, 2.5, 10.0))
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    s = m.histogram("service.batch_size")
    for v in (1.0, 2.0, 3.0, 4.0):
        s.record(v)
    return m


@pytest.mark.obs
def test_prometheus_golden_lines():
    """Pinned text-format output for labeled metrics: format drift —
    label ordering, escaping, bucket rendering — fails loudly here."""
    text = prometheus_text(_registry())
    lines = text.splitlines()
    # The unlabeled series is the pre-aggregated total; labeled series
    # carry the dimensional breakdown on the same family.
    assert 'repro_service_queries_total 5' in lines
    assert 'repro_service_queries_total{query_kind="knn"} 3' in lines
    assert 'repro_service_queries_total{query_kind="window"} 2' in lines
    # Multi-label series render keys sorted.
    assert ('repro_service_shard_queries_total'
            '{backend="thread",shard="3"} 4') in lines
    assert 'repro_service_node_accesses_total{phase="nn"} 11' in lines
    assert 'repro_service_cache_probes_total 7' in lines
    assert 'repro_service_fleet_clients 16.0' in lines
    # Bucketed histograms render native: cumulative le= series + +Inf.
    assert ('repro_service_latency_ms_bucket'
            '{degraded="false",le="1",query_kind="knn"} 1') in lines
    assert ('repro_service_latency_ms_bucket'
            '{degraded="false",le="2.5",query_kind="knn"} 2') in lines
    assert ('repro_service_latency_ms_bucket'
            '{degraded="false",le="10",query_kind="knn"} 4') in lines
    assert ('repro_service_latency_ms_bucket'
            '{degraded="false",le="+Inf",query_kind="knn"} 4') in lines
    assert ('repro_service_latency_ms_sum'
            '{degraded="false",query_kind="knn"} 10.0') in lines
    assert ('repro_service_latency_ms_count'
            '{degraded="false",query_kind="knn"} 4') in lines
    # Bucketless histograms keep the summary rendering
    # (nearest-rank p50 of [1,2,3,4] is 3.0).
    assert 'repro_service_batch_size{quantile="0.5"} 3.0' in lines
    assert 'repro_service_batch_size_sum 10.0' in lines


def test_prometheus_exposition_parses():
    """Every line is a comment or a well-formed sample; each family has
    exactly one TYPE header."""
    text = prometheus_text(_registry())
    assert text.endswith("\n")
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, prom_type = line.split(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = prom_type
        elif not line.startswith("#"):
            assert _EXPOSITION_LINE.match(line), f"bad sample line: {line!r}"
            metric = re.split(r"[{ ]", line, maxsplit=1)[0]
            family = re.sub(r"_(sum|count|bucket)$", "", metric)
            assert metric in types or family in types, (
                f"sample {metric} has no TYPE header")
    assert types["repro_service_queries_total"] == "counter"
    assert types["repro_service_fleet_clients"] == "gauge"
    assert types["repro_service_latency_ms"] == "histogram"
    assert types["repro_service_batch_size"] == "summary"


def _trace() -> QueryTrace:
    return QueryTrace(
        trace_id="t-x", kind="knn", started_at=1_700_000_000.0,
        monotonic_origin=10.0, duration_ms=5.0,
        node_accesses={"nn": 7}, result_size=3,
        spans=[
            Span("cache_probe", 0.1, 0.2, span_id="s1"),
            Span("shard_fanout", 0.4, 4.0, span_id="s2"),
            Span("shard_3", 0.5, 1.5, span_id="s3", parent_id="s2",
                 meta={"sid": 3}),
            Span("index_descent", 0.6, 1.0, span_id="s4", parent_id="s3"),
            Span("serialization", 4.5, 0.3, span_id="s5"),
        ])


def test_span_tree_nests_children():
    tree = span_tree(_trace())
    assert tree["trace_id"] == "t-x"
    roots = [node["name"] for node in tree["spans"]]
    assert roots == ["cache_probe", "shard_fanout", "serialization"]
    fanout = tree["spans"][1]
    assert [c["name"] for c in fanout["children"]] == ["shard_3"]
    shard = fanout["children"][0]
    assert [c["name"] for c in shard["children"]] == ["index_descent"]


def test_span_tree_handles_legacy_flat_spans():
    trace = QueryTrace(trace_id="t-flat", kind="window", started_at=0.0,
                       spans=[Span("index_descent", 0.0, 1.0),
                              Span("serialization", 1.0, 0.1)])
    tree = span_tree(trace)
    assert [node["name"] for node in tree["spans"]] == [
        "index_descent", "serialization"]
    assert all(node["children"] == [] for node in tree["spans"])


def test_chrome_trace_structure_and_clocks():
    trace = _trace()
    doc = chrome_trace(trace)
    events = doc["traceEvents"]
    base_us = trace.started_at * 1e6
    # Metadata names the process and the shard track.
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["args"].get("name") == "shard 3" for e in meta)
    # The query slice and one slice per span, all absolute-time stamped.
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 1 + len(trace.spans)
    query = next(e for e in slices if e["cat"] == "query")
    assert query["ts"] == base_us
    assert query["dur"] == trace.duration_ms * 1e3
    shard = next(e for e in slices if e["name"] == "shard_3")
    assert shard["tid"] == 2 + 3  # its own track
    assert shard["ts"] == base_us + 0.5 * 1e3
    descent = next(e for e in slices if e["name"] == "index_descent")
    assert descent["tid"] == shard["tid"]  # children inherit the track
    probe = next(e for e in slices if e["name"] == "cache_probe")
    assert probe["tid"] == 1
    json.dumps(doc)  # serializable as-is


def test_write_chrome_trace_round_trips(tmp_path):
    path = write_chrome_trace(_trace(), tmp_path / "trace.json")
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["displayTimeUnit"] == "ms"
    assert any(e["name"] == "knn query" for e in doc["traceEvents"])
