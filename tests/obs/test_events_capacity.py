"""EventLog accounting at the capacity boundary, alone and under load.

The log's contract is "counted, never silently lost": every emit is
either retained, sampled out, or dropped — and the three tallies add
up exactly, even with concurrent writers hammering a full ring.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import EventLog

pytestmark = pytest.mark.obs


def _hammer(log: EventLog, threads: int, per_thread: int,
            category: str = "query") -> None:
    """Emit from many threads at once, released by a single barrier."""
    barrier = threading.Barrier(threads)

    def writer(tid: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            log.emit(category, tid=tid, i=i)

    workers = [threading.Thread(target=writer, args=(t,))
               for t in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


class TestCapacityBoundary:
    def test_no_drop_at_exactly_capacity(self):
        log = EventLog(capacity=8)
        for i in range(8):
            log.emit("query", i=i)
        stats = log.stats()
        assert stats["retained"] == 8
        assert stats["dropped"] == 0

    def test_one_drop_at_capacity_plus_one(self):
        log = EventLog(capacity=8)
        for i in range(9):
            log.emit("query", i=i)
        stats = log.stats()
        assert stats["retained"] == 8
        assert stats["dropped"] == 1
        # The oldest event made way; the retained tail is 2..9.
        assert [e["seq"] for e in log.tail()] == list(range(2, 10))

    def test_capacity_zero_is_a_counting_sink(self):
        log = EventLog(capacity=0)
        for i in range(5):
            assert log.emit("query", i=i) is False
        stats = log.stats()
        assert stats["retained"] == 0
        assert stats["dropped"] == 5
        assert stats["emitted"] == {"query": 5}
        assert log.tail() == []


class TestConcurrentWriters:
    THREADS = 8
    PER_THREAD = 200

    def test_drop_accounting_is_exact_under_concurrency(self):
        total = self.THREADS * self.PER_THREAD
        log = EventLog(capacity=64)
        _hammer(log, self.THREADS, self.PER_THREAD)
        stats = log.stats()
        assert stats["emitted"] == {"query": total}
        assert stats["retained"] == 64
        assert stats["dropped"] == total - 64
        assert stats["sampled_out"] == {}

    def test_retained_tail_is_the_contiguous_newest_window(self):
        """Sequence numbers are unique and the ring holds exactly the
        newest capacity-many of them, in order."""
        total = self.THREADS * self.PER_THREAD
        log = EventLog(capacity=64)
        _hammer(log, self.THREADS, self.PER_THREAD)
        seqs = [e["seq"] for e in log.tail()]
        assert len(set(seqs)) == len(seqs)
        assert seqs == list(range(total - 64 + 1, total + 1))

    def test_sampling_counts_are_deterministic_under_concurrency(self):
        """1-in-N sampling keeps exactly ceil(total/N), no matter how
        the threads interleave — the counter lives under the lock."""
        total = self.THREADS * self.PER_THREAD
        keep_nth = 10
        log = EventLog(capacity=total, sample={"query": keep_nth})
        _hammer(log, self.THREADS, self.PER_THREAD)
        kept = -(-total // keep_nth)  # ceil: the 1st, 11th, 21st, ...
        stats = log.stats()
        assert stats["emitted"] == {"query": total}
        assert stats["sampled_out"] == {"query": total - kept}
        assert stats["retained"] == kept
        assert stats["dropped"] == 0

    def test_every_emit_is_accounted_exactly_once(self):
        """retained + sampled_out + dropped == emitted, always."""
        total = self.THREADS * self.PER_THREAD
        log = EventLog(capacity=32, sample={"query": 7})
        _hammer(log, self.THREADS, self.PER_THREAD)
        stats = log.stats()
        assert (stats["retained"] + sum(stats["sampled_out"].values())
                + stats["dropped"]) == total == sum(
                    stats["emitted"].values())

    def test_unsampled_category_survives_a_sampled_flood(self):
        """Per-category accounting is independent: a 1-in-50 query flood
        does not sample out a single fault event."""
        log = EventLog(capacity=4096, sample={"query": 50})
        barrier = threading.Barrier(2)

        def flood():
            barrier.wait()
            for i in range(500):
                log.emit("query", i=i)

        def faults():
            barrier.wait()
            for i in range(20):
                log.emit("fault", i=i)

        workers = [threading.Thread(target=flood),
                   threading.Thread(target=faults)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stats = log.stats()
        assert stats["emitted"] == {"query": 500, "fault": 20}
        assert stats["sampled_out"] == {"query": 490}
        assert len(log.tail(category="fault")) == 20
