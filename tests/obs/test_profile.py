"""Phase profiling: stack collapse, self-time, sampling, flamegraphs."""

from __future__ import annotations

import json

import pytest

from repro.obs import PhaseProfiler, collapse_trace
from repro.service import QueryTrace, Span

pytestmark = pytest.mark.obs


def _trace(kind: str = "knn", duration_ms: float = 10.0,
           spans=None) -> QueryTrace:
    return QueryTrace(trace_id="t", kind=kind, started_at=0.0,
                      duration_ms=duration_ms, spans=spans or [])


def _spans():
    return [
        Span("cache_probe", 0.0, 1.0, span_id="a"),
        Span("shard_fanout", 1.0, 8.0, span_id="b"),
        Span("shard_3", 1.5, 4.0, span_id="c", parent_id="b"),
        Span("index_descent", 2.0, 3.0, span_id="d", parent_id="c"),
    ]


class TestCollapse:
    def test_self_time_subtracts_direct_children(self):
        stacks = collapse_trace(_trace(spans=_spans()))
        assert stacks[("knn", "cache_probe")] == pytest.approx(1.0)
        # shard_fanout: 8.0 minus its child shard_3's 4.0.
        assert stacks[("knn", "shard_fanout")] == pytest.approx(4.0)
        assert stacks[("knn", "shard_fanout", "shard")] == pytest.approx(1.0)
        assert stacks[("knn", "shard_fanout", "shard", "index_descent")] \
            == pytest.approx(3.0)

    def test_uncovered_root_time_charged_to_kind(self):
        # duration 10, root spans cover 1 + 8 = 9 → 1 ms to ("knn",).
        stacks = collapse_trace(_trace(spans=_spans()))
        assert stacks[("knn",)] == pytest.approx(1.0)

    def test_self_time_clamped_at_zero(self):
        spans = [Span("parent", 0.0, 1.0, span_id="p"),
                 Span("child", 0.0, 5.0, span_id="c", parent_id="p")]
        stacks = collapse_trace(_trace(duration_ms=5.0, spans=spans))
        assert stacks[("knn", "parent")] == 0.0
        assert stacks[("knn", "parent", "child")] == pytest.approx(5.0)

    def test_numbered_frames_normalized_by_default(self):
        stacks = collapse_trace(_trace(spans=_spans()))
        assert not any("shard_3" in stack for stack in stacks)
        raw = collapse_trace(_trace(spans=_spans()), normalize=False)
        assert ("knn", "shard_fanout", "shard_3") in raw

    def test_flat_legacy_spans_hang_off_the_root(self):
        spans = [Span("index_descent", 0.0, 2.0),
                 Span("serialization", 2.0, 1.0)]
        stacks = collapse_trace(_trace(duration_ms=3.0, spans=spans))
        assert stacks[("knn", "index_descent")] == pytest.approx(2.0)
        assert stacks[("knn", "serialization")] == pytest.approx(1.0)

    def test_orphan_parent_ids_treated_as_roots(self):
        spans = [Span("lost", 0.0, 2.0, span_id="x", parent_id="gone")]
        stacks = collapse_trace(_trace(duration_ms=2.0, spans=spans))
        assert stacks[("knn", "lost")] == pytest.approx(2.0)


class TestProfiler:
    def test_aggregates_across_traces(self):
        prof = PhaseProfiler()
        prof.record(_trace(spans=_spans()))
        prof.record(_trace(spans=_spans()))
        table = {row["phase"]: row for row in prof.phase_table()}
        assert table["cache_probe"]["samples"] == 2
        assert table["cache_probe"]["self_ms"] == pytest.approx(2.0)
        # total_ms for shard_fanout includes everything beneath it.
        assert table["shard_fanout"]["total_ms"] \
            == pytest.approx(2 * (4.0 + 1.0 + 3.0))

    def test_table_sorted_by_self_time(self):
        prof = PhaseProfiler()
        prof.record(_trace(spans=_spans()))
        table = prof.phase_table()
        selfs = [row["self_ms"] for row in table]
        assert selfs == sorted(selfs, reverse=True)

    def test_sampling_is_deterministic(self):
        prof = PhaseProfiler(sample_1_in=3)
        for _ in range(7):
            prof.record(_trace(spans=_spans()))
        snap = prof.snapshot()
        assert snap["seen"] == 7
        assert snap["sampled"] == 3  # traces 1, 4, 7

    def test_overflow_folds_into_other(self):
        prof = PhaseProfiler(max_stacks=2)
        for i in range(5):
            spans = [Span(f"phase{i}", 0.0, 1.0, span_id="s")]
            prof.record(_trace(kind=f"kind{i}", duration_ms=1.0, spans=spans))
        snap = prof.snapshot()
        assert snap["overflowed"] > 0
        assert ("(other)",) in {tuple(s) for s in prof._stacks}
        assert len(prof._stacks) <= 2 + 1  # cap + the (other) bucket

    def test_flamegraph_collapsed_stack_format(self):
        prof = PhaseProfiler()
        prof.record(_trace(spans=_spans()))
        lines = prof.flamegraph().splitlines()
        assert "knn;cache_probe 1000" in lines
        assert "knn;shard_fanout;shard;index_descent 3000" in lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and value.isdigit()  # integer microseconds

    def test_snapshot_json_and_reset(self):
        prof = PhaseProfiler()
        prof.record(_trace(spans=_spans()))
        snap = prof.snapshot()
        json.dumps(snap)
        assert snap["stacks"] > 0 and snap["phases"]
        prof.reset()
        snap = prof.snapshot()
        assert snap == {"seen": 0, "sampled": 0, "sample_1_in": 1,
                        "stacks": 0, "overflowed": 0, "phases": []}

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PhaseProfiler(sample_1_in=0)
        with pytest.raises(ValueError):
            PhaseProfiler(max_stacks=0)
