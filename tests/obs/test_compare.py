"""The benchmark regression trail: record writer and compare tool."""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
COMPARE = os.path.join(REPO, "benchmarks", "compare.py")


def _load_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", COMPARE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare = _load_compare()


def _record(path, runs_metrics):
    record = {
        "schema": "repro-bench/1",
        "name": "synthetic",
        "runs": [{"recorded_at": float(i), "scale": "smoke", "metrics": m}
                 for i, m in enumerate(runs_metrics)],
    }
    with open(path, "w") as fh:
        json.dump(record, fh)
    return str(path)


def test_direction_table():
    assert compare.direction("knn.p95_ms") is False
    assert compare.direction("node_accesses") is False
    assert compare.direction("throughput_qps") is True
    assert compare.direction("s4c1024.hit_ratio") is True
    assert compare.direction("queries") is None  # unguarded


def test_synthetic_2x_latency_regression_fails(tmp_path):
    """The acceptance check: doubling a latency quantile exits non-zero."""
    path = _record(tmp_path / "BENCH_obs_synthetic.json",
                   [{"knn.p95_ms": 10.0, "throughput_qps": 100.0},
                    {"knn.p95_ms": 20.0, "throughput_qps": 100.0}])
    code, lines = compare.check_record(path, threshold=0.25)
    assert code == 1
    assert any("REGRESSED" in line and "knn.p95_ms" in line
               for line in lines)
    # And through the real CLI entry point.
    proc = subprocess.run([sys.executable, COMPARE, path],
                          capture_output=True, text=True)
    assert proc.returncode == 1
    assert "knn.p95_ms" in proc.stdout


def test_throughput_drop_regresses_lower_is_worse(tmp_path):
    path = _record(tmp_path / "BENCH_obs_synthetic.json",
                   [{"throughput_qps": 100.0}, {"throughput_qps": 50.0}])
    code, _ = compare.check_record(path, threshold=0.25)
    assert code == 1


def test_within_threshold_and_improvements_pass(tmp_path):
    path = _record(tmp_path / "BENCH_obs_synthetic.json",
                   [{"knn.p95_ms": 10.0, "throughput_qps": 100.0,
                     "queries": 400.0},
                    {"knn.p95_ms": 11.0, "throughput_qps": 220.0,
                     "queries": 100.0}])  # unguarded metric may swing
    code, lines = compare.check_record(path, threshold=0.25)
    assert code == 0
    assert any("ok" in line for line in lines)


def test_single_run_is_nothing_to_compare(tmp_path):
    path = _record(tmp_path / "BENCH_obs_synthetic.json",
                   [{"knn.p95_ms": 10.0}])
    code, lines = compare.check_record(path, threshold=0.25)
    assert code == 0
    assert any("nothing to compare" in line for line in lines)


def test_bad_input_exits_2(tmp_path):
    bad_schema = tmp_path / "BENCH_obs_bad.json"
    bad_schema.write_text('{"schema": "other/9", "runs": []}')
    assert compare.check_record(str(bad_schema), 0.25)[0] == 2
    not_json = tmp_path / "BENCH_obs_broken.json"
    not_json.write_text("{")
    assert compare.check_record(str(not_json), 0.25)[0] == 2


def test_no_records_is_a_clean_noop(tmp_path):
    env = dict(os.environ, REPRO_BENCH_DIR=str(tmp_path))
    proc = subprocess.run([sys.executable, COMPARE], env=env,
                          capture_output=True, text=True)
    assert proc.returncode == 0
    assert "no BENCH_obs_" in proc.stdout


def test_write_bench_record_appends_and_caps(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    monkeypatch.syspath_prepend(os.path.join(REPO, "benchmarks"))
    import common  # benchmarks/common.py
    for i in range(common.BENCH_HISTORY + 3):
        path = common.write_bench_record(
            "trail", {"p95_ms": 10.0 + i}, context={"i": i})
    with open(path) as fh:
        record = json.load(fh)
    assert record["schema"] == common.BENCH_SCHEMA
    assert len(record["runs"]) == common.BENCH_HISTORY  # bounded history
    assert record["runs"][-1]["context"] == {"i": common.BENCH_HISTORY + 2}
    # The freshly written record diffs cleanly (steady +1ms drift < 25%).
    assert compare.check_record(path, threshold=0.25)[0] == 0
