"""The SLO engine: windows, burn rates, alerts, the brownout ladder.

Everything runs on an injected fake clock, so window arithmetic is
exact and deterministic — no sleeps, no wall time.
"""

from __future__ import annotations

import pytest

from repro.obs import SLOConfig, SLOEngine
from repro.obs.slo import BROWNOUT_NAMES, _window_label
from repro.service import MetricsRegistry

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, s: float) -> None:
        self.t += s


def _engine(clock, **overrides) -> SLOEngine:
    """An availability SLO with test-friendly thresholds.

    target=0.9 gives a 10% error budget, so a recent bad fraction of
    0.2 burns at 2.0; fast_burn=2.0 / slow_burn=6.0 keep the ladder
    arithmetic readable.
    """
    cfg = dict(name="avail", objective="availability", target=0.9,
               fast_burn=2.0)
    cfg.update(overrides)
    return SLOEngine([SLOConfig(**cfg)], clock=clock, eval_interval_s=0.0)


def _seed_good(engine, n: int = 1000) -> None:
    for _ in range(n):
        engine.observe("knn", latency_ms=1.0)


class TestConfigValidation:
    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            SLOConfig(name="x", objective="throughput")

    def test_rejects_target_outside_unit_interval(self):
        for target in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError):
                SLOConfig(name="x", target=target)

    def test_rejects_unordered_windows(self):
        with pytest.raises(ValueError):
            SLOConfig(name="x", fast_windows=(3600, 300))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            SLOEngine([SLOConfig(name="a"), SLOConfig(name="a")])

    def test_budget_is_one_minus_target(self):
        assert SLOConfig(name="x", target=0.999).budget == pytest.approx(0.001)

    def test_window_labels(self):
        assert _window_label(300) == "5m"
        assert _window_label(3600) == "1h"
        assert _window_label(21600) == "6h"
        assert _window_label(259200) == "3d"
        assert _window_label(45) == "45s"


class TestBurnAndAlerts:
    def test_no_traffic_burns_nothing(self):
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        assert engine.evaluate() == 0
        row = engine.snapshot()["slos"]["avail"]
        assert all(b == 0.0 for b in row["burn_rate"].values())
        assert row["budget_remaining"] == 1.0

    def test_uniform_bad_fraction_sets_burn_rate(self):
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        for i in range(100):
            engine.observe("knn", error=(i < 20))  # 20% bad
        engine.evaluate()
        row = engine.snapshot()["slos"]["avail"]
        # 0.2 bad fraction over a 0.1 budget = burning 2x the allowance.
        assert row["burn_rate"]["5m"] == pytest.approx(2.0)
        assert row["burn_rate"]["3d"] == pytest.approx(2.0)

    def test_short_spike_alone_cannot_page(self):
        """Fast alert needs BOTH the 5m and 1h windows above threshold."""
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        _seed_good(engine)               # healthy hour-scale history
        clock.advance(600.0)             # past 5m, inside 1h
        for _ in range(30):
            engine.observe("knn", error=True)   # 5m window: 100% bad
        engine.evaluate()
        row = engine.snapshot()["slos"]["avail"]
        assert row["burn_rate"]["5m"] > 2.0
        assert row["burn_rate"]["1h"] < 2.0
        assert row["fast_alert"] is False
        assert engine.recommended_level() == 0

    def test_stale_history_alone_cannot_keep_paging(self):
        """Once the 5m window clears, the fast alert drops even though
        the 1h window still remembers the burst."""
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        for _ in range(50):
            engine.observe("knn", error=True)
        assert engine.evaluate() >= 1
        clock.advance(400.0)             # 5m window forgets the burst
        for _ in range(50):
            engine.observe("knn")
        assert engine.evaluate() == 0

    def test_slow_alert_is_a_ticket_not_a_page(self):
        clock = FakeClock(1000.0)
        engine = _engine(clock, fast_burn=50.0, slow_burn=1.5)
        for i in range(100):
            engine.observe("knn", error=(i % 5 == 0))  # 20% bad, burn 2.0
        assert engine.evaluate() == 0
        row = engine.snapshot()["slos"]["avail"]
        assert row["slow_alert"] is True
        assert row["fast_alert"] is False


class TestBrownoutLadder:
    def test_level_1_on_fast_alert(self):
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        _seed_good(engine)
        clock.advance(7200.0)            # old good stays only in 6h/3d
        for i in range(100):
            engine.observe("knn", error=(i < 25))  # recent burn 2.5
        assert engine.evaluate() == 1
        assert engine.snapshot()["brownout"] == "reduced"

    def test_level_2_when_5m_burn_doubles_fast_burn(self):
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        _seed_good(engine)
        clock.advance(7200.0)
        for i in range(100):
            engine.observe("knn", error=(i < 60))  # recent burn 6.0 >= 2x2.0
        assert engine.evaluate() == 2
        assert engine.snapshot()["brownout"] == "cache_only"

    def test_level_3_when_budget_exhausted(self):
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        for _ in range(50):
            engine.observe("knn", error=True)  # burn 10 in every window
        assert engine.evaluate() == 3
        row = engine.snapshot()["slos"]["avail"]
        assert row["budget_remaining"] <= 0.0
        assert engine.snapshot()["brownout"] == "reject"

    def test_level_names_align_with_admission_ladder(self):
        from repro.service.admission import LEVEL_NAMES
        assert BROWNOUT_NAMES == LEVEL_NAMES


class TestObjectives:
    def test_latency_objective_counts_slow_successes(self):
        clock = FakeClock(1000.0)
        engine = SLOEngine(
            [SLOConfig(name="lat", objective="latency", target=0.9,
                       threshold_ms=10.0, fast_burn=2.0)],
            clock=clock, eval_interval_s=0.0)
        for i in range(100):
            engine.observe("knn", latency_ms=50.0 if i < 30 else 1.0)
        engine.evaluate()
        row = engine.snapshot()["slos"]["lat"]
        assert row["observed"] == {"good": 70, "bad": 30}
        assert row["burn_rate"]["5m"] == pytest.approx(3.0)

    def test_staleness_objective_ignores_errors(self):
        clock = FakeClock(1000.0)
        engine = SLOEngine(
            [SLOConfig(name="fresh", objective="staleness", target=0.9,
                       max_staleness=2)],
            clock=clock, eval_interval_s=0.0)
        engine.observe("knn", error=True)            # not observable
        engine.observe("knn", staleness=1)           # within bound
        engine.observe("knn", staleness=5)           # violating
        engine.evaluate()
        row = engine.snapshot()["slos"]["fresh"]
        assert row["observed"] == {"good": 1, "bad": 1}

    def test_query_kind_filter(self):
        clock = FakeClock(1000.0)
        engine = SLOEngine(
            [SLOConfig(name="knn-only", target=0.9, query_kind="knn")],
            clock=clock, eval_interval_s=0.0)
        engine.observe("window", error=True)
        engine.observe("knn")
        engine.evaluate()
        row = engine.snapshot()["slos"]["knn-only"]
        assert row["observed"] == {"good": 1, "bad": 0}

    def test_latency_violation_names_the_slo(self):
        engine = SLOEngine([
            SLOConfig(name="lat-knn", objective="latency", target=0.99,
                      threshold_ms=10.0, query_kind="knn"),
            SLOConfig(name="avail", objective="availability"),
        ])
        assert engine.latency_violation("knn", 50.0) == "lat-knn"
        assert engine.latency_violation("knn", 5.0) is None
        assert engine.latency_violation("window", 50.0) is None


class TestEvaluationAndExport:
    def test_maybe_evaluate_is_rate_limited(self):
        clock = FakeClock(1000.0)
        engine = SLOEngine([SLOConfig(name="a")], clock=clock,
                           eval_interval_s=1.0)
        assert engine.maybe_evaluate() == 0      # first call evaluates
        assert engine.maybe_evaluate() is None   # too soon
        clock.advance(1.5)
        assert engine.maybe_evaluate() == 0

    def test_gauges_exported_to_registry(self):
        clock = FakeClock(1000.0)
        metrics = MetricsRegistry()
        engine = SLOEngine([SLOConfig(name="avail", target=0.9,
                                      fast_burn=2.0)],
                           metrics=metrics, clock=clock, eval_interval_s=0.0)
        for _ in range(10):
            engine.observe("knn", error=True)
        engine.evaluate()
        gauges = metrics.snapshot()["gauges"]
        assert gauges['slo.burn_rate{slo="avail",window="5m"}'] \
            == pytest.approx(10.0)
        assert gauges['slo.budget_remaining{slo="avail"}'] < 0.0
        assert gauges['slo.alert{severity="fast",slo="avail"}'] == 1.0
        assert gauges["slo.brownout_level"] == 3.0

    def test_snapshot_is_json_shaped(self):
        import json
        clock = FakeClock(1000.0)
        engine = _engine(clock)
        engine.observe("knn")
        engine.evaluate()
        snap = engine.snapshot()
        json.dumps(snap)
        assert snap["brownout_level"] == 0
        assert set(snap["slos"]) == {"avail"}
        assert snap["evaluated_at"] == 1000.0
