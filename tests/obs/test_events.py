"""EventLog: bounded ring, deterministic sampling, accounting."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import EventLog, start_trace
from repro.obs.context import emit_event


def test_bounded_ring_drops_oldest_and_counts():
    log = EventLog(capacity=4)
    for i in range(10):
        log.emit("query", i=i)
    assert len(log) == 4
    assert [e["i"] for e in log.tail()] == [6, 7, 8, 9]
    stats = log.stats()
    assert stats["retained"] == 4
    assert stats["emitted"] == {"query": 10}
    assert stats["dropped"] == 6


def test_sampling_keeps_every_nth_deterministically():
    log = EventLog(sample={"query": 3})
    kept = [log.emit("query", i=i) for i in range(9)]
    # keep-1-in-3: the 1st, 4th and 7th emissions are retained.
    assert kept == [True, False, False] * 3
    assert [e["i"] for e in log.tail()] == [0, 3, 6]
    stats = log.stats()
    assert stats["emitted"] == {"query": 9}
    assert stats["sampled_out"] == {"query": 6}


def test_unmapped_categories_keep_everything():
    log = EventLog(sample={"query": 100})
    for _ in range(5):
        log.emit("fault", event="disk.read_failure")
    assert len(log.tail(category="fault")) == 5


def test_capacity_zero_is_a_counting_noop():
    log = EventLog(capacity=0)
    assert log.emit("query") is False
    assert len(log) == 0
    assert log.tail() == []
    stats = log.stats()
    assert stats["emitted"] == {"query": 1}
    assert stats["dropped"] == 1


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        EventLog(capacity=-1)
    with pytest.raises(ValueError):
        EventLog(sample={"query": 0})


def test_tail_filters_and_jsonl_round_trip():
    log = EventLog()
    with start_trace(trace_id="t-a", events=log):
        emit_event("query", event="query.start")
    with start_trace(trace_id="t-b", events=log):
        emit_event("query", event="query.start")
        emit_event("cache", event="cache.miss")
    assert [e["trace_id"] for e in log.tail(trace_id="t-b")] == ["t-b", "t-b"]
    assert [e["category"] for e in log.tail(category="cache")] == ["cache"]
    assert len(log.tail(1)) == 1
    lines = log.to_jsonl().splitlines()
    assert len(lines) == 3
    parsed = [json.loads(line) for line in lines]
    assert [e["seq"] for e in parsed] == [1, 2, 3]  # stable ordering


def test_concurrent_writers_never_lose_accounting():
    log = EventLog(capacity=64)
    threads = [
        threading.Thread(
            target=lambda: [log.emit("query", n=i) for i in range(100)])
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = log.stats()
    assert stats["emitted"] == {"query": 800}
    assert stats["retained"] == 64
    assert stats["dropped"] == 800 - 64
    seqs = [e["seq"] for e in log.tail()]
    assert seqs == sorted(seqs)
