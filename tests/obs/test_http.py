"""The observability HTTP endpoint, scraped over a real socket."""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro import (
    AdmissionConfig,
    CacheConfig,
    KNNRequest,
    ResilienceConfig,
    SLOConfig,
    SLOEngine,
    TailSamplingConfig,
    WindowRequest,
    build_service,
)
from repro.obs import ObservabilityServer
from repro.obs.http import PROMETHEUS_CONTENT_TYPE


def _fetch(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


@pytest.fixture(scope="module")
def served():
    rnd = random.Random(42)
    points = [(rnd.random(), rnd.random()) for _ in range(600)]
    service = build_service(points, shards=2, cache=CacheConfig(capacity=32))
    service.answer(KNNRequest((0.5, 0.5), k=3, trace_id="t-http-knn"))
    service.answer(KNNRequest((0.5, 0.5), k=3))  # server-cache hit
    service.answer(WindowRequest((0.3, 0.3), width=0.2, height=0.2))
    with ObservabilityServer(service, port=0) as obs:
        assert obs.port != 0  # the ephemeral port resolved
        yield obs.url


def test_healthz(served):
    status, _ctype, body = _fetch(served + "/healthz")
    assert (status, body) == (200, "ok\n")


def test_metrics_is_prometheus_text(served):
    status, ctype, body = _fetch(served + "/metrics")
    assert status == 200
    assert ctype == PROMETHEUS_CONTENT_TYPE
    assert 'repro_service_queries_total{query_kind="knn"} 2' in body
    assert 'repro_service_cache_hits_total{query_kind="knn"} 1' in body
    assert 'le="+Inf"' in body  # native buckets on the latency family


def test_snapshot_is_the_full_stats_json(served):
    status, ctype, body = _fetch(served + "/snapshot")
    assert status == 200
    assert ctype == "application/json"
    snap = json.loads(body)
    assert snap["service"]["queries"] == 3
    assert snap["events"]["emitted"]["query"] >= 3


def test_trace_index_and_span_tree(served):
    _status, _ctype, body = _fetch(served + "/traces")
    index = json.loads(body)
    assert {t["trace_id"] for t in index} >= {"t-http-knn"}
    status, _ctype, body = _fetch(served + "/traces/t-http-knn")
    assert status == 200
    tree = json.loads(body)
    assert tree["kind"] == "knn"
    roots = {node["name"] for node in tree["spans"]}
    assert "shard_fanout" in roots
    fanout = next(n for n in tree["spans"] if n["name"] == "shard_fanout")
    shard_names = {c["name"] for c in fanout["children"]}
    assert shard_names and all(n.startswith("shard_") for n in shard_names)


def test_trace_chrome_view(served):
    _status, _ctype, body = _fetch(served + "/traces/t-http-knn/chrome")
    doc = json.loads(body)
    assert any(e.get("cat") == "query" for e in doc["traceEvents"])


def test_events_ndjson_with_filters(served):
    status, ctype, body = _fetch(served + "/events?category=query&n=50")
    assert status == 200
    assert ctype == "application/x-ndjson"
    events = [json.loads(line) for line in body.splitlines()]
    assert events and all(e["category"] == "query" for e in events)
    _status, _ctype, body = _fetch(
        served + "/events?trace_id=t-http-knn")
    assert all(json.loads(line)["trace_id"] == "t-http-knn"
               for line in body.splitlines())


@pytest.mark.parametrize("path", ["/nope", "/traces/absent",
                                  "/traces/t-http-knn/nope"])
def test_unknown_paths_are_json_404s(served, path):
    with pytest.raises(urllib.error.HTTPError) as err:
        _fetch(served + path)
    assert err.value.code == 404
    assert "error" in json.loads(err.value.read().decode("utf-8"))


def test_readyz_is_ready_on_a_healthy_service(served):
    status, ctype, body = _fetch(served + "/readyz")
    assert status == 200
    assert ctype == "application/json"
    detail = json.loads(body)
    assert detail["ready"] is True
    # No admission gate configured → readiness reports no admission block.
    assert "admission" not in detail


@pytest.mark.obs
@pytest.mark.parametrize("path", ["/slo", "/profile", "/profile/flame"])
def test_optional_surfaces_404_when_not_configured(served, path):
    with pytest.raises(urllib.error.HTTPError) as err:
        _fetch(served + path)
    assert err.value.code == 404
    assert "error" in json.loads(err.value.read().decode("utf-8"))


@pytest.fixture(scope="module")
def served_full():
    """A service with the full observability stack switched on."""
    rnd = random.Random(7)
    points = [(rnd.random(), rnd.random()) for _ in range(600)]
    slo = SLOEngine([
        SLOConfig(name="availability", objective="availability",
                  target=0.999),
        SLOConfig(name="latency", objective="latency", target=0.99,
                  threshold_ms=250.0),
    ])
    service = build_service(
        points, replicas=2, slo=slo,
        tail=TailSamplingConfig(keep_1_in=5),
        profile=True,
        resilience=ResilienceConfig(
            admission=AdmissionConfig(max_concurrency=8)))
    for i in range(12):
        service.answer(KNNRequest((0.1 + 0.07 * i, 0.5), k=3))
    with ObservabilityServer(service, port=0) as obs:
        yield obs.url, service


@pytest.mark.obs
def test_slo_endpoint_serves_the_engine_snapshot(served_full):
    url, _service = served_full
    status, ctype, body = _fetch(url + "/slo")
    assert (status, ctype) == (200, "application/json")
    snap = json.loads(body)
    assert set(snap["slos"]) == {"availability", "latency"}
    assert snap["brownout"] == "normal"
    # Snapshot reflects the engine's last (rate-limited) evaluation.
    row = snap["slos"]["availability"]
    assert row["observed"]["good"] >= 1
    assert row["observed"]["bad"] == 0
    assert row["fast_alert"] is False


@pytest.mark.obs
def test_profile_endpoints_serve_table_and_flamegraph(served_full):
    url, _service = served_full
    status, _ctype, body = _fetch(url + "/profile")
    assert status == 200
    snap = json.loads(body)
    assert snap["sampled"] >= 12
    assert any(row["phase"] == "replica" for row in snap["phases"])

    status, ctype, body = _fetch(url + "/profile/flame")
    assert status == 200
    assert ctype.startswith("text/plain")
    lines = body.splitlines()
    assert lines
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert stack and value.isdigit()
    assert any(line.startswith("knn;") for line in lines)


@pytest.mark.obs
def test_readyz_reports_replica_probes(served_full):
    url, _service = served_full
    _status, _ctype, body = _fetch(url + "/readyz")
    detail = json.loads(body)
    assert detail["ready"] is True
    assert len(detail["replicas"]) == 2
    assert all(r["status"] == "ok" for r in detail["replicas"])


@pytest.mark.obs
def test_readyz_503_when_admission_rejects(served_full):
    url, service = served_full
    service.admission.set_slo_level(3)
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            _fetch(url + "/readyz")
        assert err.value.code == 503
        detail = json.loads(err.value.read().decode("utf-8"))
        assert detail["ready"] is False
        assert "rejecting" in detail["reason"]
    finally:
        service.admission.set_slo_level(0)
