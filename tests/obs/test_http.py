"""The observability HTTP endpoint, scraped over a real socket."""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro import CacheConfig, KNNRequest, WindowRequest, build_service
from repro.obs import ObservabilityServer
from repro.obs.http import PROMETHEUS_CONTENT_TYPE


def _fetch(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


@pytest.fixture(scope="module")
def served():
    rnd = random.Random(42)
    points = [(rnd.random(), rnd.random()) for _ in range(600)]
    service = build_service(points, shards=2, cache=CacheConfig(capacity=32))
    service.answer(KNNRequest((0.5, 0.5), k=3, trace_id="t-http-knn"))
    service.answer(KNNRequest((0.5, 0.5), k=3))  # server-cache hit
    service.answer(WindowRequest((0.3, 0.3), width=0.2, height=0.2))
    with ObservabilityServer(service, port=0) as obs:
        assert obs.port != 0  # the ephemeral port resolved
        yield obs.url


def test_healthz(served):
    status, _ctype, body = _fetch(served + "/healthz")
    assert (status, body) == (200, "ok\n")


def test_metrics_is_prometheus_text(served):
    status, ctype, body = _fetch(served + "/metrics")
    assert status == 200
    assert ctype == PROMETHEUS_CONTENT_TYPE
    assert 'repro_service_queries_total{kind="knn"} 2' in body
    assert 'repro_service_cache_hits_total{kind="knn"} 1' in body
    assert 'quantile="0.95"' in body


def test_snapshot_is_the_full_stats_json(served):
    status, ctype, body = _fetch(served + "/snapshot")
    assert status == 200
    assert ctype == "application/json"
    snap = json.loads(body)
    assert snap["service"]["queries"] == 3
    assert snap["events"]["emitted"]["query"] >= 3


def test_trace_index_and_span_tree(served):
    _status, _ctype, body = _fetch(served + "/traces")
    index = json.loads(body)
    assert {t["trace_id"] for t in index} >= {"t-http-knn"}
    status, _ctype, body = _fetch(served + "/traces/t-http-knn")
    assert status == 200
    tree = json.loads(body)
    assert tree["kind"] == "knn"
    roots = {node["name"] for node in tree["spans"]}
    assert "shard_fanout" in roots
    fanout = next(n for n in tree["spans"] if n["name"] == "shard_fanout")
    shard_names = {c["name"] for c in fanout["children"]}
    assert shard_names and all(n.startswith("shard_") for n in shard_names)


def test_trace_chrome_view(served):
    _status, _ctype, body = _fetch(served + "/traces/t-http-knn/chrome")
    doc = json.loads(body)
    assert any(e.get("cat") == "query" for e in doc["traceEvents"])


def test_events_ndjson_with_filters(served):
    status, ctype, body = _fetch(served + "/events?category=query&n=50")
    assert status == 200
    assert ctype == "application/x-ndjson"
    events = [json.loads(line) for line in body.splitlines()]
    assert events and all(e["category"] == "query" for e in events)
    _status, _ctype, body = _fetch(
        served + "/events?trace_id=t-http-knn")
    assert all(json.loads(line)["trace_id"] == "t-http-knn"
               for line in body.splitlines())


@pytest.mark.parametrize("path", ["/nope", "/traces/absent",
                                  "/traces/t-http-knn/nope"])
def test_unknown_paths_are_json_404s(served, path):
    with pytest.raises(urllib.error.HTTPError) as err:
        _fetch(served + path)
    assert err.value.code == 404
    assert "error" in json.loads(err.value.read().decode("utf-8"))
