"""Smoke tests for the top-level public API."""

import warnings

import pytest

import repro
from repro.service import checkapi


def test_version():
    assert repro.__version__ == "1.7.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_api_docs_in_sync():
    """The CI drift check: repro.__all__ matches docs/API.md."""
    assert checkapi.check() == []


def test_checkapi_detects_drift(tmp_path):
    doc = tmp_path / "API.md"
    doc.write_text(
        f"{checkapi.BEGIN}\n"
        + "\n".join(f"`{n}`" for n in repro.__all__ if n != "__version__")
        + "\n`not_actually_exported`\n"
        + checkapi.END)
    problems = checkapi.check(doc)
    assert any("not_actually_exported" in p for p in problems)
    doc.write_text(f"{checkapi.BEGIN}\n`build_service`\n{checkapi.END}")
    assert any("LocationServer" in p for p in checkapi.check(doc))


def test_checkapi_requires_markers(tmp_path):
    doc = tmp_path / "API.md"
    doc.write_text("no markers here")
    with pytest.raises(SystemExit):
        checkapi.check(doc)


def test_build_service_front_door():
    service = repro.build_service(
        repro.uniform_points(500, seed=3), shards=2,
        cache=repro.CacheConfig(capacity=16))
    response = service.answer(repro.KNNRequest((0.5, 0.5), k=2))
    assert len(response.neighbors) == 2
    again = service.answer(repro.KNNRequest((0.5, 0.5), k=2))
    assert {e.oid for e in again.neighbors} == {
        e.oid for e in response.neighbors}
    assert service.cache.hits == 1


def test_build_service_accepts_execution_config():
    service = repro.build_service(
        repro.uniform_points(400, seed=5),
        execution=repro.ExecutionConfig(kernel="auto"))
    response = service.answer(repro.KNNRequest((0.5, 0.5), k=3))
    assert len(response.neighbors) == 3


def test_per_type_query_methods_are_removed():
    server = repro.LocationServer.from_points(
        repro.uniform_points(300, seed=4))
    for name in ("knn_query", "window_query", "range_query",
                 "knn_query_delta", "window_query_delta"):
        assert not hasattr(server, name)
    response = server.answer(repro.KNNRequest((0.5, 0.5), k=1))
    assert len(response.neighbors) == 1


def test_legacy_service_kwargs_warn():
    points = repro.uniform_points(300, seed=6)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with pytest.raises(DeprecationWarning):
            repro.build_service(points, cache_capacity=8)
        with pytest.raises(DeprecationWarning):
            repro.build_service(points, shards=2, max_workers=1)
    with pytest.raises(TypeError):
        repro.build_service(points, shards=2, max_workers=1,
                            execution=repro.ExecutionConfig())
    with pytest.raises(TypeError):
        repro.build_service(points, cache_capacity=8,
                            cache=repro.CacheConfig(capacity=8))


def test_execution_config_validation():
    with pytest.raises(ValueError):
        repro.ExecutionConfig(backend="carrier-pigeon")
    with pytest.raises(ValueError):
        repro.ExecutionConfig(kernel="fortran")
    with pytest.raises(ValueError):
        repro.ExecutionConfig(workers=0)
    assert set(repro.available_kernels()) >= {"scalar", "soa"}


def test_module_docstring_example():
    server = repro.LocationServer.from_points(
        repro.uniform_points(2_000, seed=1))
    client = repro.MobileClient(server)
    nearest = client.knn((0.5, 0.5), k=1)
    assert nearest == client.knn((0.5 + 1e-9, 0.5 + 1e-9), k=1)
    assert client.stats.cache_answers == 1


def test_end_to_end_window():
    server = repro.LocationServer.from_points(
        repro.uniform_points(2_000, seed=2))
    client = repro.MobileClient(server)
    result = client.window((0.5, 0.5), 0.1, 0.1)
    again = client.window((0.5 + 1e-9, 0.5), 0.1, 0.1)
    assert [e.oid for e in result] == [e.oid for e in again]
    assert client.stats.server_queries == 1
