"""Smoke tests for the top-level public API."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_module_docstring_example():
    server = repro.LocationServer.from_points(
        repro.uniform_points(2_000, seed=1))
    client = repro.MobileClient(server)
    nearest = client.knn((0.5, 0.5), k=1)
    assert nearest == client.knn((0.5 + 1e-9, 0.5 + 1e-9), k=1)
    assert client.stats.cache_answers == 1


def test_end_to_end_window():
    server = repro.LocationServer.from_points(
        repro.uniform_points(2_000, seed=2))
    client = repro.MobileClient(server)
    result = client.window((0.5, 0.5), 0.1, 0.1)
    again = client.window((0.5 + 1e-9, 0.5), 0.1, 0.1)
    assert [e.oid for e in result] == [e.oid for e in again]
    assert client.stats.server_queries == 1
