"""Tests for the window-protocol simulator."""

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.datasets import uniform_points
from repro.mobility import (
    random_waypoint,
    simulate_window_protocols,
    straight_run,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def tree():
    return bulk_load_str(uniform_points(2000, seed=30), capacity=16)


class TestWindowSimulator:
    def test_protocols_reported(self, tree):
        traj = random_waypoint(UNIT, 30, speed=0.002, seed=1)
        reports = simulate_window_protocols(tree, traj, 0.1, 0.1)
        assert {r.protocol for r in reports} == {"validity-region", "naive",
                                                 "tp"}

    def test_validity_beats_naive(self, tree):
        traj = random_waypoint(UNIT, 60, speed=0.001, seed=2)
        reports = {r.protocol: r
                   for r in simulate_window_protocols(tree, traj, 0.1, 0.1)}
        assert (reports["validity-region"].server_queries
                < reports["naive"].server_queries)

    def test_incremental_variant_fewer_bytes(self, tree):
        traj = random_waypoint(UNIT, 60, speed=0.002, seed=3)
        plain = {r.protocol: r
                 for r in simulate_window_protocols(tree, traj, 0.2, 0.2,
                                                    include_tp=False)}
        inc = {r.protocol: r
               for r in simulate_window_protocols(tree, traj, 0.2, 0.2,
                                                  include_tp=False,
                                                  incremental=True)}
        assert (inc["validity-region+delta"].bytes_received
                <= plain["validity-region"].bytes_received)
        assert (inc["validity-region+delta"].server_queries
                == plain["validity-region"].server_queries)

    def test_tp_shines_on_straight_runs(self, tree):
        traj = straight_run((0.1, 0.4), (1.0, 0.1), 40, speed=0.002)
        reports = {r.protocol: r
                   for r in simulate_window_protocols(tree, traj, 0.1, 0.1)}
        assert reports["tp"].server_queries < reports["naive"].server_queries
