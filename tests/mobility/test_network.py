"""Tests for the network cost model."""

import math

import pytest

from repro.mobility.network import NetworkModel
from repro.mobility.simulator import ProtocolReport


def report(updates=100, queries=20, received=4000):
    return ProtocolReport("x", updates, queries, received)


class TestNetworkModel:
    def test_transfer_time_components(self):
        model = NetworkModel(round_trip_s=1.0, downlink_bytes_per_s=1000.0,
                             uplink_bytes_per_query=0)
        rep = report(queries=5, received=2000)
        # 5 RTTs + 2000 bytes at 1000 B/s.
        assert math.isclose(model.transfer_time_s(rep), 5.0 + 2.0)

    def test_uplink_accounted(self):
        model = NetworkModel(round_trip_s=0.0, downlink_bytes_per_s=100.0,
                             uplink_bytes_per_query=50)
        rep = report(queries=4, received=0)
        assert math.isclose(model.transfer_time_s(rep), 200.0 / 100.0)

    def test_zero_queries_zero_time(self):
        model = NetworkModel()
        rep = report(queries=0, received=0)
        assert model.transfer_time_s(rep) == 0.0
        assert model.radio_energy_j(rep) == 0.0

    def test_energy_scales_with_power(self):
        low = NetworkModel(radio_watts=1.0)
        high = NetworkModel(radio_watts=2.0)
        rep = report()
        assert math.isclose(high.radio_energy_j(rep),
                            2.0 * low.radio_energy_j(rep))

    def test_mean_response_time(self):
        model = NetworkModel(round_trip_s=1.0,
                             downlink_bytes_per_s=1e12,
                             uplink_bytes_per_query=0)
        rep = report(updates=50, queries=10, received=0)
        assert math.isclose(model.mean_response_time_s(rep), 10.0 / 50.0)

    def test_empty_report(self):
        model = NetworkModel()
        rep = report(updates=0, queries=0, received=0)
        assert model.mean_response_time_s(rep) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(round_trip_s=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(downlink_bytes_per_s=0.0)

    def test_fewer_queries_beats_fewer_bytes_on_slow_links(self):
        """The paper's trade-off: validity regions ship more bytes per
        query but far fewer queries — a win whenever latency dominates."""
        model = NetworkModel(round_trip_s=0.6, downlink_bytes_per_s=5000.0)
        validity = ProtocolReport("validity", 100, 10, 4000)
        naive = ProtocolReport("naive", 100, 100, 2000)
        assert (model.transfer_time_s(validity)
                < model.transfer_time_s(naive))
