"""Tests for mobility traces and the protocol simulator."""

import math

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.datasets import uniform_points
from repro.mobility import (
    random_walk,
    random_waypoint,
    simulate_knn_protocols,
    straight_run,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestTrajectories:
    def test_waypoint_length_and_bounds(self):
        traj = random_waypoint(UNIT, 200, speed=0.01, seed=0)
        assert len(traj) == 200
        for step in traj:
            assert UNIT.contains_point(step.position, eps=1e-9)

    def test_waypoint_step_distance_is_speed_dt(self):
        traj = random_waypoint(UNIT, 100, speed=0.01, dt=2.0, seed=1)
        pos = traj.positions()
        for a, b in zip(pos, pos[1:]):
            assert a.distance_to(b) <= 0.02 + 1e-9

    def test_waypoint_deterministic(self):
        a = random_waypoint(UNIT, 50, speed=0.01, seed=7)
        b = random_waypoint(UNIT, 50, speed=0.01, seed=7)
        assert a.positions() == b.positions()

    def test_waypoint_velocity_has_speed(self):
        traj = random_waypoint(UNIT, 50, speed=0.03, seed=2)
        for step in traj:
            assert math.isclose(math.hypot(*step.velocity), 0.03,
                                rel_tol=1e-9)

    def test_waypoint_start(self):
        traj = random_waypoint(UNIT, 10, speed=0.01, seed=3,
                               start=(0.5, 0.5))
        assert traj.steps[0].position == (0.5, 0.5)

    def test_walk_bounds(self):
        traj = random_walk(UNIT, 300, speed=0.02, seed=4)
        for step in traj:
            assert UNIT.contains_point(step.position, eps=1e-9)

    def test_walk_turns(self):
        traj = random_walk(UNIT, 50, speed=0.01, seed=5, turn_sigma=1.0)
        velocities = {step.velocity for step in traj}
        assert len(velocities) > 10  # heading actually drifts

    def test_straight_run(self):
        traj = straight_run((0.0, 0.0), (1.0, 0.0), 5, speed=0.1)
        xs = [p.x for p in traj.positions()]
        assert xs == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        assert len({step.velocity for step in traj}) == 1

    def test_straight_run_zero_direction_raises(self):
        with pytest.raises(ValueError):
            straight_run((0, 0), (0, 0), 5, speed=0.1)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            random_waypoint(UNIT, -1, speed=0.1)
        with pytest.raises(ValueError):
            random_waypoint(UNIT, 10, speed=0.0)
        with pytest.raises(ValueError):
            random_walk(UNIT, 10, speed=0.1, dt=0.0)

    def test_total_distance(self):
        traj = straight_run((0, 0), (1, 0), 11, speed=0.1)
        assert math.isclose(traj.total_distance(), 1.0)


class TestSimulator:
    @pytest.fixture(scope="class")
    def tree(self):
        return bulk_load_str(uniform_points(2000, seed=10), capacity=16)

    def test_all_protocols_reported(self, tree):
        traj = random_waypoint(UNIT, 40, speed=0.005, seed=11)
        reports = simulate_knn_protocols(tree, traj, k=1)
        names = {r.protocol for r in reports}
        assert names == {"validity-region", "naive", "sr01(m=5)", "tp"}

    def test_naive_never_saves(self, tree):
        traj = random_waypoint(UNIT, 30, speed=0.005, seed=12)
        reports = {r.protocol: r for r in simulate_knn_protocols(tree, traj)}
        assert reports["naive"].server_queries == 30
        assert reports["naive"].query_saving == 0.0

    def test_validity_region_beats_naive(self, tree):
        traj = random_waypoint(UNIT, 60, speed=0.003, seed=13)
        reports = {r.protocol: r for r in simulate_knn_protocols(tree, traj)}
        assert (reports["validity-region"].server_queries
                < reports["naive"].server_queries)
        assert reports["validity-region"].query_saving > 0.3

    def test_slow_client_saves_more(self, tree):
        slow = random_waypoint(UNIT, 50, speed=0.001, seed=14)
        fast = random_waypoint(UNIT, 50, speed=0.05, seed=14)
        r_slow = {r.protocol: r for r in simulate_knn_protocols(tree, slow,
                                                                include_tp=False)}
        r_fast = {r.protocol: r for r in simulate_knn_protocols(tree, fast,
                                                                include_tp=False)}
        assert (r_slow["validity-region"].server_queries
                <= r_fast["validity-region"].server_queries)

    def test_k_greater_than_one(self, tree):
        traj = random_waypoint(UNIT, 30, speed=0.004, seed=15)
        reports = simulate_knn_protocols(tree, traj, k=3, sr01_m=9)
        names = {r.protocol for r in reports}
        assert "sr01(m=9)" in names

    def test_report_row_renders(self, tree):
        traj = random_waypoint(UNIT, 10, speed=0.01, seed=16)
        for r in simulate_knn_protocols(tree, traj, include_tp=False):
            row = r.row()
            assert r.protocol in row

    def test_straight_run_tp_wins_over_naive(self, tree):
        """With constant velocity the TP baseline shines — that is its
        designed-for case (and the paper's point is it only has this one)."""
        traj = straight_run((0.1, 0.5), (1.0, 0.05), 50, speed=0.002)
        reports = {r.protocol: r for r in simulate_knn_protocols(tree, traj)}
        assert reports["tp"].server_queries < reports["naive"].server_queries


class TestZL01InSimulator:
    def test_zl01_included_and_correct(self):
        from repro.index import bulk_load_str
        from repro.datasets import uniform_points
        tree = bulk_load_str(uniform_points(400, seed=19), capacity=8)
        traj = random_waypoint(UNIT, 40, speed=0.003, seed=20)
        reports = {r.protocol: r
                   for r in simulate_knn_protocols(tree, traj, k=1,
                                                   include_zl01=True)}
        assert "zl01" in reports
        # [ZL01] caches via validity *times*, so it also beats naive...
        assert reports["zl01"].server_queries <= reports["naive"].server_queries
        # ...but its conservative v_max times cannot beat true validity
        # regions, which are exact in space.
        assert (reports["validity-region"].server_queries
                <= reports["zl01"].server_queries)

    def test_zl01_requires_k1(self):
        from repro.index import bulk_load_str
        from repro.datasets import uniform_points
        tree = bulk_load_str(uniform_points(100, seed=21), capacity=8)
        traj = random_waypoint(UNIT, 5, speed=0.01, seed=22)
        with pytest.raises(ValueError):
            simulate_knn_protocols(tree, traj, k=2, include_zl01=True)
