"""Tests for kNN search (depth-first [RKV95] and best-first [HS99])."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.index import bulk_load_str
from repro.queries import nearest_neighbors
from tests.conftest import brute_knn

METHODS = ("best_first", "depth_first")


@pytest.fixture(params=METHODS)
def method(request):
    return request.param


class TestCorrectness:
    def test_single_nn(self, small_tree, uniform_1k, method):
        q = (0.31, 0.74)
        got = nearest_neighbors(small_tree, q, k=1, method=method)
        (want_i, want_d), = brute_knn(uniform_1k, q, 1)
        assert got[0].entry.oid == want_i
        assert math.isclose(got[0].dist, want_d)

    def test_knn_distances_match_brute_force(self, small_tree, uniform_1k,
                                             method, rng):
        for _ in range(25):
            q = (rng.random(), rng.random())
            k = rng.choice([1, 2, 5, 10, 40])
            got = nearest_neighbors(small_tree, q, k=k, method=method)
            want = brute_knn(uniform_1k, q, k)
            assert len(got) == k
            assert [round(n.dist, 10) for n in got] == [
                round(d, 10) for _, d in want]

    def test_results_sorted(self, small_tree, method, rng):
        got = nearest_neighbors(small_tree, (0.5, 0.5), k=20, method=method)
        dists = [n.dist for n in got]
        assert dists == sorted(dists)

    def test_k_exceeds_dataset(self, method):
        tree = bulk_load_str([(0.1, 0.1), (0.9, 0.9)], capacity=4)
        got = nearest_neighbors(tree, (0.0, 0.0), k=10, method=method)
        assert [n.entry.oid for n in got] == [0, 1]

    def test_empty_tree(self, method):
        tree = bulk_load_str([], capacity=4)
        assert nearest_neighbors(tree, (0.5, 0.5), k=3, method=method) == []

    def test_query_on_data_point(self, small_tree, uniform_1k, method):
        q = uniform_1k[123]
        got = nearest_neighbors(small_tree, q, k=1, method=method)
        assert got[0].entry.oid == 123
        assert got[0].dist == 0.0

    def test_exclude(self, small_tree, uniform_1k, method):
        q = (0.5, 0.5)
        first = nearest_neighbors(small_tree, q, k=1, method=method)[0]
        second = nearest_neighbors(small_tree, q, k=1, method=method,
                                   exclude={first.entry.oid})[0]
        assert second.entry.oid != first.entry.oid
        want = brute_knn(uniform_1k, q, 2)[1]
        assert math.isclose(second.dist, want[1])

    def test_invalid_k_raises(self, small_tree, method):
        with pytest.raises(ValueError):
            nearest_neighbors(small_tree, (0.5, 0.5), k=0, method=method)

    def test_unknown_method_raises(self, small_tree):
        with pytest.raises(ValueError):
            nearest_neighbors(small_tree, (0.5, 0.5), method="bogus")

    def test_query_outside_universe(self, small_tree, uniform_1k, method):
        q = (3.0, -2.0)
        got = nearest_neighbors(small_tree, q, k=3, method=method)
        want = brute_knn(uniform_1k, q, 3)
        assert [round(n.dist, 10) for n in got] == [
            round(d, 10) for _, d in want]

    def test_duplicate_points(self, method):
        tree = bulk_load_str([(0.5, 0.5)] * 7 + [(0.9, 0.9)], capacity=4)
        got = nearest_neighbors(tree, (0.5, 0.5), k=7, method=method)
        assert all(n.dist == 0.0 for n in got)
        assert len({n.entry.oid for n in got}) == 7


class TestNodeAccesses:
    def test_best_first_never_worse_than_depth_first(self, small_tree, rng):
        """[HS99] is I/O optimal: it reads no more nodes than [RKV95]."""
        for _ in range(15):
            q = (rng.random(), rng.random())
            k = rng.choice([1, 4, 16])
            small_tree.disk.reset_stats()
            nearest_neighbors(small_tree, q, k=k, method="best_first")
            na_bf = small_tree.disk.stats.total_node_accesses
            small_tree.disk.reset_stats()
            nearest_neighbors(small_tree, q, k=k, method="depth_first")
            na_df = small_tree.disk.stats.total_node_accesses
            assert na_bf <= na_df

    def test_nn_cheaper_than_full_scan(self, small_tree):
        small_tree.disk.reset_stats()
        nearest_neighbors(small_tree, (0.5, 0.5), k=1)
        assert (small_tree.disk.stats.total_node_accesses
                < small_tree.num_pages)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=30)
    def test_methods_agree_on_random_data(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 120)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=rnd.randint(4, 16))
        q = (rnd.random(), rnd.random())
        k = rnd.randint(1, n)
        bf = nearest_neighbors(tree, q, k=k, method="best_first")
        df = nearest_neighbors(tree, q, k=k, method="depth_first")
        assert [round(a.dist, 10) for a in bf] == [
            round(b.dist, 10) for b in df]
        want = brute_knn(points, q, k)
        assert [round(a.dist, 10) for a in bf] == [
            round(d, 10) for _, d in want]
