"""Tests for circular range queries."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.index import bulk_load_str
from repro.queries.range import nearest_outside, range_query


def brute_range(points, center, radius):
    return sorted(i for i, p in enumerate(points)
                  if math.dist(p, center) <= radius)


class TestRangeQuery:
    def test_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(25):
            c = (rng.random(), rng.random())
            r = rng.uniform(0.01, 0.4)
            got = sorted(e.oid for e in range_query(small_tree, c, r))
            assert got == brute_range(uniform_1k, c, r)

    def test_zero_radius(self, small_tree, uniform_1k):
        x, y = uniform_1k[3]
        got = {e.oid for e in range_query(small_tree, (x, y), 0.0)}
        assert 3 in got

    def test_negative_radius_raises(self, small_tree):
        with pytest.raises(ValueError):
            range_query(small_tree, (0.5, 0.5), -0.1)

    def test_covers_everything(self, small_tree, uniform_1k):
        got = range_query(small_tree, (0.5, 0.5), 2.0)
        assert len(got) == len(uniform_1k)

    def test_boundary_point_included(self):
        # 0.75 - 0.5 = 0.25 exactly in binary floating point.
        tree = bulk_load_str([(0.5, 0.5), (0.75, 0.5)], capacity=4)
        got = {e.oid for e in range_query(tree, (0.5, 0.5), 0.25)}
        assert got == {0, 1}  # closed range: the boundary point counts


class TestNearestOutside:
    def test_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(25):
            c = (rng.random(), rng.random())
            r = rng.uniform(0.0, 0.3)
            got = nearest_outside(small_tree, c, r)
            outside = [(math.dist(p, c), i) for i, p in enumerate(uniform_1k)
                       if math.dist(p, c) > r]
            if not outside:
                assert got is None
            else:
                want = min(outside)
                assert math.isclose(got.dist, want[0])

    def test_everything_inside_returns_none(self, small_tree):
        assert nearest_outside(small_tree, (0.5, 0.5), 10.0) is None

    def test_zero_radius_equals_nn_mostly(self, small_tree, uniform_1k, rng):
        """With r=0 the nearest-outside is the NN (unless the query sits
        exactly on a data point)."""
        c = (0.123, 0.456)
        got = nearest_outside(small_tree, c, 0.0)
        want = min(math.dist(p, c) for p in uniform_1k)
        assert math.isclose(got.dist, want)

    def test_negative_radius_raises(self, small_tree):
        with pytest.raises(ValueError):
            nearest_outside(small_tree, (0.5, 0.5), -1.0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=25)
    def test_random_instances(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 100)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=rnd.randint(4, 12))
        c = (rnd.random(), rnd.random())
        r = rnd.uniform(0.0, 0.5)
        got_range = sorted(e.oid for e in range_query(tree, c, r))
        assert got_range == brute_range(points, c, r)
        got_out = nearest_outside(tree, c, r)
        outside = [(math.dist(p, c), i) for i, p in enumerate(points)
                   if math.dist(p, c) > r]
        if outside:
            assert math.isclose(got_out.dist, min(outside)[0])
        else:
            assert got_out is None
