"""Tests for time-parameterized queries.

Every TP result is validated against brute-force influence-time scans
and, independently, by *replaying* the motion: stepping the query just
before and just after the reported event time and checking that the
result actually changes exactly there.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, distance_sq
from repro.index import bulk_load_str
from repro.queries import nearest_neighbors, tp_knn, tp_nn, tp_window
from repro.queries.tp import INFINITY
from tests.conftest import brute_knn_set


def brute_tp_knn(points, q, v, result_ids):
    """(time, influence index) by scanning all candidate/result pairs."""
    best = (INFINITY, None)
    for i, p in enumerate(points):
        if i in result_ids:
            continue
        pd = distance_sq(p, q)
        vp = v[0] * p[0] + v[1] * p[1]
        for j in result_ids:
            o = points[j]
            od = distance_sq(o, q)
            vo = v[0] * o[0] + v[1] * o[1]
            den = 2.0 * (vp - vo)
            if den <= 0.0:
                continue
            t = max(0.0, (pd - od) / den)
            if t < best[0]:
                best = (t, i)
    return best


class TestTPNN:
    def test_simple_crossing(self):
        # NN is at x=0.4; moving east, point at x=0.8 takes over at the
        # bisector x=0.6, i.e. after travelling 0.1 from q=(0.5, 0.5).
        tree = bulk_load_str([(0.4, 0.5), (0.8, 0.5)], capacity=4)
        o = nearest_neighbors(tree, (0.5, 0.5), k=1)[0].entry
        event = tp_nn(tree, (0.5, 0.5), (1.0, 0.0), o)
        assert event.found
        assert event.influence.oid == 1
        assert math.isclose(event.time, 0.1)

    def test_moving_away_no_influence(self):
        tree = bulk_load_str([(0.4, 0.5), (0.8, 0.5)], capacity=4)
        o = nearest_neighbors(tree, (0.45, 0.5), k=1)[0].entry
        event = tp_nn(tree, (0.45, 0.5), (-1.0, 0.0), o)
        assert not event.found and event.time == INFINITY

    def test_direction_normalized(self, small_tree):
        q = (0.5, 0.5)
        o = nearest_neighbors(small_tree, q, k=1)[0].entry
        e1 = tp_nn(small_tree, q, (1.0, 0.0), o)
        e2 = tp_nn(small_tree, q, (10.0, 0.0), o)
        assert math.isclose(e1.time, e2.time)
        assert e1.influence.oid == e2.influence.oid

    def test_zero_direction_raises(self, small_tree):
        o = nearest_neighbors(small_tree, (0.5, 0.5), k=1)[0].entry
        with pytest.raises(ValueError):
            tp_nn(small_tree, (0.5, 0.5), (0.0, 0.0), o)

    def test_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(40):
            q = (rng.random(), rng.random())
            ang = rng.random() * 2 * math.pi
            v = (math.cos(ang), math.sin(ang))
            o = nearest_neighbors(small_tree, q, k=1)[0].entry
            event = tp_nn(small_tree, q, v, o)
            bt, bi = brute_tp_knn(uniform_1k, q, v, {o.oid})
            if bi is None:
                assert not event.found
            else:
                assert math.isclose(event.time, bt, abs_tol=1e-9)

    def test_replay_confirms_event_time(self, small_tree, rng):
        """Just before the event the NN is unchanged; just after, it isn't."""
        for _ in range(15):
            q = (rng.random() * 0.8 + 0.1, rng.random() * 0.8 + 0.1)
            ang = rng.random() * 2 * math.pi
            v = (math.cos(ang), math.sin(ang))
            o = nearest_neighbors(small_tree, q, k=1)[0].entry
            event = tp_nn(small_tree, q, v, o)
            if not event.found or event.time < 1e-6:
                continue
            before = (q[0] + v[0] * event.time * 0.999,
                      q[1] + v[1] * event.time * 0.999)
            after = (q[0] + v[0] * event.time * 1.001,
                     q[1] + v[1] * event.time * 1.001)
            assert nearest_neighbors(small_tree, before, k=1)[0].entry.oid == o.oid
            dist_o = math.dist(after, (o.x, o.y))
            dist_inf = math.dist(after, (event.influence.x, event.influence.y))
            assert dist_inf <= dist_o + 1e-9

    def test_paired_with_is_the_nn(self, small_tree, rng):
        q = (0.3, 0.3)
        o = nearest_neighbors(small_tree, q, k=1)[0].entry
        event = tp_nn(small_tree, q, (1, 1), o)
        assert event.paired_with.oid == o.oid


class TestTPkNN:
    def test_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(30):
            q = (rng.random(), rng.random())
            k = rng.choice([2, 3, 8])
            ang = rng.random() * 2 * math.pi
            v = (math.cos(ang), math.sin(ang))
            result = [n.entry for n in nearest_neighbors(small_tree, q, k=k)]
            event = tp_knn(small_tree, q, v, result)
            bt, bi = brute_tp_knn(uniform_1k, q, v,
                                  {e.oid for e in result})
            if bi is None:
                assert not event.found
            else:
                assert math.isclose(event.time, bt, abs_tol=1e-9)

    def test_paired_with_in_result(self, small_tree, rng):
        q = (0.6, 0.4)
        result = [n.entry for n in nearest_neighbors(small_tree, q, k=5)]
        event = tp_knn(small_tree, q, (0, 1), result)
        assert event.found
        assert event.paired_with.oid in {e.oid for e in result}
        assert event.influence.oid not in {e.oid for e in result}

    def test_knn_set_swap_at_event(self, small_tree, rng):
        """After the event, the influence object is in the kNN set and the
        paired result object is the one it displaced (by distance)."""
        for _ in range(10):
            q = (rng.random() * 0.8 + 0.1, rng.random() * 0.8 + 0.1)
            ang = rng.random() * 2 * math.pi
            v = (math.cos(ang), math.sin(ang))
            result = [n.entry for n in nearest_neighbors(small_tree, q, k=3)]
            event = tp_knn(small_tree, q, v, result)
            if not event.found or event.time < 1e-6:
                continue
            at = (q[0] + v[0] * event.time, q[1] + v[1] * event.time)
            d_inf = math.dist(at, (event.influence.x, event.influence.y))
            d_res = math.dist(at, (event.paired_with.x, event.paired_with.y))
            assert math.isclose(d_inf, d_res, rel_tol=1e-6, abs_tol=1e-9)

    def test_whole_dataset_as_result(self):
        pts = [(0.1, 0.1), (0.9, 0.9), (0.5, 0.2)]
        tree = bulk_load_str(pts, capacity=4)
        result = [n.entry for n in nearest_neighbors(tree, (0.5, 0.5), k=3)]
        event = tp_knn(tree, (0.5, 0.5), (1, 0), result)
        assert not event.found

    def test_prefer_new_breaks_exact_ties(self):
        # Symmetric grid: two candidates cross at the same time; the one
        # not yet known must win.
        pts = [(0.5, 0.5), (0.5, 0.7), (0.5, 0.3)]  # NN plus two symmetric
        tree = bulk_load_str(pts, capacity=4)
        o = nearest_neighbors(tree, (0.5, 0.52), k=1)[0].entry
        assert o.oid == 0
        first = tp_knn(tree, (0.5, 0.52), (0.0, 1.0), [o])
        assert first.influence.oid == 1
        # Moving towards +y only object 1 influences; towards -y object 2.
        second = tp_knn(tree, (0.5, 0.52), (0.0, -1.0), [o],
                        prefer_new={first.influence.oid})
        assert second.influence.oid == 2


class TestTPWindow:
    def test_departure(self):
        tree = bulk_load_str([(0.45, 0.5)], capacity=4)
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        event = tp_window(tree, rect, (1.0, 0.0))
        # Trailing edge x=0.4 moving right reaches 0.45 at t=0.05.
        assert math.isclose(event.time, 0.05)
        assert [e.oid for e in event.departures] == [0]
        assert event.arrivals == ()

    def test_arrival(self):
        tree = bulk_load_str([(0.8, 0.5)], capacity=4)
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        event = tp_window(tree, rect, (1.0, 0.0))
        # Leading edge x=0.6 reaches 0.8 at t=0.2.
        assert math.isclose(event.time, 0.2)
        assert [e.oid for e in event.arrivals] == [0]

    def test_zero_velocity(self, small_tree):
        event = tp_window(small_tree, Rect(0.4, 0.4, 0.6, 0.6), (0.0, 0.0))
        assert event.time == INFINITY

    def test_never_influencing(self):
        tree = bulk_load_str([(0.5, 5.0)], capacity=4)  # far off the path
        event = tp_window(tree, Rect(0.4, 0.4, 0.6, 0.6), (1.0, 0.0))
        assert event.time == INFINITY

    def test_simultaneous_events_all_reported(self):
        tree = bulk_load_str([(0.45, 0.45), (0.45, 0.55)], capacity=4)
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        event = tp_window(tree, rect, (1.0, 0.0))
        assert math.isclose(event.time, 0.05)
        assert {e.oid for e in event.departures} == {0, 1}

    def test_replay_confirms_change(self, small_tree, rng):
        for _ in range(15):
            cx, cy = rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)
            rect = Rect(cx - 0.05, cy - 0.05, cx + 0.05, cy + 0.05)
            v = (rng.uniform(-1, 1), rng.uniform(-1, 1))
            if v == (0.0, 0.0):
                continue
            event = tp_window(small_tree, rect, v)
            if event.time is INFINITY or event.time < 1e-6:
                continue
            def result_at(t):
                moved = Rect(rect.xmin + v[0] * t, rect.ymin + v[1] * t,
                             rect.xmax + v[0] * t, rect.ymax + v[1] * t)
                return {e.oid for e in small_tree.window(moved)}
            assert result_at(event.time * 0.999) == result_at(0.0)
            assert result_at(event.time * 1.001) != result_at(0.0)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=30)
    def test_tpknn_brute_force_random(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 80)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=rnd.randint(4, 12))
        q = (rnd.random(), rnd.random())
        k = rnd.randint(1, n - 1)
        ang = rnd.random() * 2 * math.pi
        v = (math.cos(ang), math.sin(ang))
        result = [e for e in nearest_neighbors(tree, q, k=k)]
        entries = [r.entry for r in result]
        event = tp_knn(tree, q, v, entries)
        bt, bi = brute_tp_knn(points, q, v, {e.oid for e in entries})
        if bi is None:
            assert not event.found
        else:
            assert event.found
            assert math.isclose(event.time, bt, abs_tol=1e-9)
