"""Tests for window-query wrappers."""

import random

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.queries import window_query
from repro.queries.window import annulus_query, window_count
from tests.conftest import brute_window


class TestWindowQuery:
    def test_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(20):
            x1, x2 = sorted((rng.random(), rng.random()))
            y1, y2 = sorted((rng.random(), rng.random()))
            rect = Rect(x1, y1, x2, y2)
            got = sorted(e.oid for e in window_query(small_tree, rect))
            assert got == brute_window(uniform_1k, rect)

    def test_count(self, small_tree, uniform_1k):
        rect = Rect(0.2, 0.2, 0.8, 0.8)
        assert window_count(small_tree, rect) == len(
            brute_window(uniform_1k, rect))

    def test_empty_window(self, small_tree):
        # A degenerate window at a location with no exact point.
        assert window_query(small_tree, Rect(2, 2, 3, 3)) == []

    def test_point_window_hits_exact_point(self, small_tree, uniform_1k):
        x, y = uniform_1k[7]
        rect = Rect(x, y, x, y)
        assert 7 in {e.oid for e in window_query(small_tree, rect)}


class TestAnnulusQuery:
    def test_excludes_inner(self, small_tree, uniform_1k):
        outer = Rect(0.2, 0.2, 0.8, 0.8)
        inner = Rect(0.4, 0.4, 0.6, 0.6)
        got = {e.oid for e in annulus_query(small_tree, outer, inner)}
        want = {i for i in brute_window(uniform_1k, outer)} - {
            i for i in brute_window(uniform_1k, inner)}
        assert got == want

    def test_boundary_points_belong_to_inner(self):
        # A point exactly on the inner boundary is part of the window
        # result, so the annulus must not return it.
        tree = bulk_load_str([(0.4, 0.5), (0.3, 0.5)], capacity=4)
        got = annulus_query(tree, Rect(0.2, 0.2, 0.8, 0.8),
                            Rect(0.4, 0.4, 0.6, 0.6))
        assert [e.oid for e in got] == [1]

    def test_single_traversal_cost(self, small_tree):
        """The annulus costs exactly one window query over the outer rect."""
        outer = Rect(0.2, 0.2, 0.8, 0.8)
        inner = Rect(0.4, 0.4, 0.6, 0.6)
        small_tree.disk.reset_stats()
        window_query(small_tree, outer)
        cost_outer = small_tree.disk.stats.total_node_accesses
        small_tree.disk.reset_stats()
        annulus_query(small_tree, outer, inner)
        assert small_tree.disk.stats.total_node_accesses == cost_outer
