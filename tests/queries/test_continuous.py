"""Tests for continuous (timeline) queries."""

import math
import random

import pytest

from repro.geometry import Rect, distance_sq
from repro.index import bulk_load_str
from repro.queries.continuous import continuous_knn, continuous_window


def knn_set_at(points, pos, k):
    ranked = sorted(range(len(points)),
                    key=lambda i: distance_sq(points[i], pos))
    return tuple(sorted(ranked[:k]))


class TestContinuousKNN:
    def test_timeline_covers_horizon(self, small_tree):
        segs = continuous_knn(small_tree, (0.1, 0.5), (0.01, 0.0), 50.0)
        assert segs[0].t_from == 0.0
        assert math.isclose(segs[-1].t_to, 50.0)
        for a, b in zip(segs, segs[1:]):
            assert a.t_to <= b.t_from + 1e-9

    def test_adjacent_segments_differ(self, small_tree):
        segs = continuous_knn(small_tree, (0.1, 0.5), (0.01, 0.0), 50.0, k=2)
        for a, b in zip(segs, segs[1:]):
            assert a.oids != b.oids

    def test_segments_match_direct_queries(self, small_tree, uniform_1k,
                                           rng):
        start = (0.05, 0.35)
        velocity = (0.012, 0.004)
        segs = continuous_knn(small_tree, start, velocity, 40.0, k=3)
        for seg in segs:
            span = seg.t_to - seg.t_from
            if span <= 1e-9:
                continue
            for _ in range(3):
                t = seg.t_from + rng.random() * span * 0.98 + span * 0.01
                pos = (start[0] + velocity[0] * t, start[1] + velocity[1] * t)
                assert knn_set_at(uniform_1k, pos, 3) == seg.oids, seg

    def test_stationary_raises(self, small_tree):
        with pytest.raises(ValueError):
            continuous_knn(small_tree, (0.5, 0.5), (0.0, 0.0), 10.0)

    def test_bad_horizon_raises(self, small_tree):
        with pytest.raises(ValueError):
            continuous_knn(small_tree, (0.5, 0.5), (1.0, 0.0), 0.0)

    def test_no_changes_single_segment(self):
        tree = bulk_load_str([(0.5, 0.5)], capacity=4)
        segs = continuous_knn(tree, (0.1, 0.1), (0.01, 0.01), 10.0)
        assert len(segs) == 1
        assert segs[0].oids == (0,)

    def test_speed_invariance(self, small_tree):
        """Doubling the speed halves the event times but preserves the
        sequence of result sets."""
        slow = continuous_knn(small_tree, (0.2, 0.2), (0.005, 0.002), 100.0)
        fast = continuous_knn(small_tree, (0.2, 0.2), (0.01, 0.004), 50.0)
        assert [s.oids for s in slow] == [s.oids for s in fast]
        for a, b in zip(slow[:-1], fast[:-1]):
            assert math.isclose(a.t_to, 2 * b.t_to, rel_tol=1e-9)


class TestContinuousWindow:
    def test_timeline_matches_direct_queries(self, small_tree, uniform_1k,
                                             rng):
        rect = Rect(0.1, 0.4, 0.2, 0.5)
        velocity = (0.01, 0.003)
        segs = continuous_window(small_tree, rect, velocity, 30.0)
        for seg in segs:
            span = seg.t_to - seg.t_from
            if span <= 1e-9:
                continue
            for _ in range(3):
                t = seg.t_from + rng.random() * span * 0.98 + span * 0.01
                moved = Rect(rect.xmin + velocity[0] * t,
                             rect.ymin + velocity[1] * t,
                             rect.xmax + velocity[0] * t,
                             rect.ymax + velocity[1] * t)
                want = tuple(sorted(
                    i for i, p in enumerate(uniform_1k)
                    if moved.contains_point(p)))
                assert want == seg.oids

    def test_covers_horizon(self, small_tree):
        segs = continuous_window(small_tree, Rect(0.4, 0.4, 0.5, 0.5),
                                 (0.02, 0.0), 20.0)
        assert segs[0].t_from == 0.0
        assert math.isclose(segs[-1].t_to, 20.0)

    def test_window_leaving_universe_goes_quiet(self, small_tree):
        """Once the window has left the data space the result stays
        empty and the timeline ends with one long empty segment."""
        segs = continuous_window(small_tree, Rect(0.9, 0.45, 1.0, 0.55),
                                 (0.05, 0.0), 1000.0)
        assert segs[-1].oids == ()
        assert segs[-1].t_to == 1000.0

    def test_stationary_raises(self, small_tree):
        with pytest.raises(ValueError):
            continuous_window(small_tree, Rect(0, 0, 0.1, 0.1), (0, 0), 5.0)
