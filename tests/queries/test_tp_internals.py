"""Unit tests for TP-query internals: moving-rectangle intersection
intervals and bound admissibility."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.queries import nearest_neighbors, tp_knn
from repro.queries.tp import INFINITY, _moving_rect_meet

coord = st.floats(min_value=-10, max_value=10, allow_nan=False)
# Exact zero plus magnitudes large enough that a coordinate actually
# moves in float arithmetic: with |v| ~ 1e-300, x + v*t == x exactly,
# so no simulation can agree with the analytic meet interval.
vel = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=3),
    st.floats(min_value=-3, max_value=-1e-6),
)


@st.composite
def rect_pair(draw):
    def rect():
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        return Rect(x1, y1, x2, y2)
    return rect(), rect()


class TestMovingRectMeet:
    def test_already_intersecting_contains_zero(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        lo, hi = _moving_rect_meet(a, b, 1.0, 0.0)
        assert lo <= 0.0 <= hi

    def test_approaching(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(3, 0, 4, 1)
        lo, hi = _moving_rect_meet(a, b, 1.0, 0.0)
        assert math.isclose(lo, 2.0)   # right edge 1 reaches left edge 3
        assert math.isclose(hi, 4.0)   # left edge 0 leaves right edge 4

    def test_receding_interval_in_past(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(3, 0, 4, 1)
        lo, hi = _moving_rect_meet(a, b, -1.0, 0.0)
        assert hi < 0.0 or lo > hi  # never meets in the future

    def test_parallel_never_meets(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(3, 3, 4, 4)
        lo, hi = _moving_rect_meet(a, b, 1.0, 0.0)  # slides past below
        assert lo > hi  # empty interval

    def test_zero_velocity_static_overlap(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        lo, hi = _moving_rect_meet(a, b, 0.0, 0.0)
        assert lo == -INFINITY and hi == INFINITY

    def test_zero_velocity_static_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(3, 3, 4, 4)
        lo, hi = _moving_rect_meet(a, b, 0.0, 0.0)
        assert lo > hi

    def test_denormal_velocity_regression_pinned(self):
        """Pinned example of the Hypothesis failure that motivated the
        ``vel`` strategy bounds above: with a denormal velocity the
        float position update underflows (``a.xmin + vx*t == a.xmin``),
        so a just-touching receding pair *simulates* as touching forever
        while the analytic interval correctly ends the contact at t=0.
        The disagreement is inherent to float simulation, not a bug in
        the meet computation — hence the strategy keeps ``|v| >= 1e-6``
        (or exactly zero)."""
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 2.0, 1.0)     # touching at x = 1
        vx, t = -1e-300, 10.0
        assert vx != 0.0
        # The underflow: against an O(1) coordinate the update is lost.
        assert a.xmax + vx * t == a.xmax
        lo, hi = _moving_rect_meet(a, b, vx, 0.0)
        assert hi <= 0.0 < t             # analytic: contact is over by t
        moved = Rect(a.xmin + vx * t, a.ymin, a.xmax + vx * t, a.ymax)
        assert moved.intersects(b)       # simulated: never moved at all
        # With a representable velocity the two views agree again.
        vx = -1e-6
        lo, hi = _moving_rect_meet(a, b, vx, 0.0)
        moved = Rect(a.xmin + vx * t, a.ymin, a.xmax + vx * t, a.ymax)
        assert moved.intersects(b) == (lo <= t <= hi)

    @given(rect_pair(), vel, vel, st.floats(min_value=0, max_value=20))
    @settings(deadline=None, max_examples=60)
    def test_interval_matches_simulation(self, rects, vx, vy, t):
        """At any sampled time, interval membership == actual overlap."""
        a, b = rects
        lo, hi = _moving_rect_meet(a, b, vx, vy)
        moved = Rect(a.xmin + vx * t, a.ymin + vy * t,
                     a.xmax + vx * t, a.ymax + vy * t)
        actually = moved.intersects(b)
        predicted = lo <= t <= hi
        # Skip knife-edge cases where t sits on the interval boundary.
        if min(abs(t - lo), abs(t - hi)) > 1e-9:
            assert actually == predicted


class TestBoundAdmissibility:
    """The MBR bound used by TPkNN must never exceed the exact influence
    time of any point in the box — otherwise best-first search could
    return a wrong (non-first) event."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=40)
    def test_search_equals_exhaustive_scan(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(3, 60)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        # Tiny node capacity: many nodes, so bound pruning is exercised.
        tree = bulk_load_str(points, capacity=4)
        q = (rnd.random(), rnd.random())
        ang = rnd.random() * 2 * math.pi
        v = (math.cos(ang), math.sin(ang))
        k = rnd.randint(1, min(4, n - 1))
        result = [x.entry for x in nearest_neighbors(tree, q, k=k)]
        event = tp_knn(tree, q, v, result)

        # Exhaustive: evaluate every point's influence time directly.
        best = INFINITY
        for e in tree.points():
            if e.oid in {r.oid for r in result}:
                continue
            pd = (e.x - q[0]) ** 2 + (e.y - q[1]) ** 2
            vp = v[0] * e.x + v[1] * e.y
            for o in result:
                od = (o.x - q[0]) ** 2 + (o.y - q[1]) ** 2
                vo = v[0] * o.x + v[1] * o.y
                den = 2 * (vp - vo)
                if den > 0:
                    best = min(best, max(0.0, (pd - od) / den))
        if best is INFINITY:
            assert not event.found
        else:
            assert math.isclose(event.time, best, abs_tol=1e-9)
