"""Unit tests for the columnar geometry kernels.

The batch primitives must agree exactly with their scalar geometry
counterparts (``Rect.mindist_sq``, ``HalfPlane.signed_distance``,
``ConvexPolygon.contains``), and the ``soa`` and ``numpy`` kernels
must return identical kNN orderings and TPNN influence events — the
service-level equivalence suite (tests/service/) builds on these
guarantees.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.geometry import ConvexPolygon, HalfPlane, Point, Rect
from repro.index.entry import LeafEntry
from repro.kernel import ExecutionConfig, PointColumns, available_kernels
from repro.kernel.backends import get_kernel
from repro.kernel.config import numpy_enabled, resolve_kernel_name


def _entries(seed: int, n: int = 200):
    rnd = random.Random(seed)
    return [LeafEntry(i, rnd.random(), rnd.random()) for i in range(n)]


def _columnar_kernels():
    kernels = [get_kernel("soa")]
    if numpy_enabled():
        kernels.append(get_kernel("numpy"))
    return kernels


@pytest.fixture(scope="module")
def columns():
    return PointColumns(_entries(11))


class TestBatchPrimitives:
    def test_mindist_sq_matches_rect(self):
        rnd = random.Random(3)
        rects = []
        for _ in range(40):
            x1, x2 = sorted(rnd.uniform(0, 1) for _ in range(2))
            y1, y2 = sorted(rnd.uniform(0, 1) for _ in range(2))
            rects.append(Rect(x1, y1, x2, y2))
        q = (0.4, 0.7)
        expected = [r.mindist_sq(q) for r in rects]
        for kernel in _columnar_kernels():
            got = kernel.mindist_sq(rects, *q)
            assert list(got) == pytest.approx(expected), kernel.name

    def test_halfplane_margins_match_signed_distance(self):
        hp = HalfPlane.make(1.0, 2.0, 0.8)
        rnd = random.Random(4)
        xs = [rnd.uniform(-1, 1) for _ in range(50)]
        ys = [rnd.uniform(-1, 1) for _ in range(50)]
        expected = [hp.signed_distance(Point(x, y))
                    for x, y in zip(xs, ys)]
        for kernel in _columnar_kernels():
            got = kernel.halfplane_margins(hp, xs, ys)
            assert list(got) == pytest.approx(expected), kernel.name

    def test_polygon_contains_matches_convex_polygon(self):
        poly = ConvexPolygon([Point(0.2, 0.2), Point(0.8, 0.3),
                              Point(0.7, 0.8), Point(0.3, 0.7)])
        rnd = random.Random(5)
        xs = [rnd.random() for _ in range(120)]
        ys = [rnd.random() for _ in range(120)]
        expected = [poly.contains(Point(x, y)) for x, y in zip(xs, ys)]
        for kernel in _columnar_kernels():
            got = kernel.polygon_contains(poly.vertices, xs, ys)
            assert [bool(v) for v in got] == expected, kernel.name

    def test_polygon_contains_degenerate(self):
        for kernel in _columnar_kernels():
            got = kernel.polygon_contains([Point(0, 0), Point(1, 1)],
                                          [0.5], [0.5])
            assert list(got) == [False], kernel.name


class TestColumnarKNN:
    def test_knn_matches_brute_force(self, columns):
        entries = columns.entries
        rnd = random.Random(6)
        for _ in range(10):
            q = (rnd.random(), rnd.random())
            k = rnd.randint(1, 8)
            expected = sorted(
                entries,
                key=lambda e: ((e.x - q[0]) ** 2 + (e.y - q[1]) ** 2,
                               e.oid))[:k]
            for kernel in _columnar_kernels():
                got = kernel.knn(columns, q[0], q[1], k)
                assert [e.oid for _d2, e in got] == \
                    [e.oid for e in expected], kernel.name
                for d2, e in got:
                    assert d2 == pytest.approx(
                        (e.x - q[0]) ** 2 + (e.y - q[1]) ** 2)

    def test_knn_k_at_least_n(self, columns):
        n = len(columns)
        for kernel in _columnar_kernels():
            got = kernel.knn(columns, 0.5, 0.5, n + 10)
            assert len(got) == n, kernel.name

    @pytest.mark.skipif(not numpy_enabled(), reason="numpy masked out")
    def test_tp_probes_agree_across_kernels(self, columns):
        soa, np_kernel = get_kernel("soa"), get_kernel("numpy")
        rnd = random.Random(7)
        for _ in range(6):
            qx, qy = rnd.random(), rnd.random()
            result = [e for _d2, e in soa.knn(columns, qx, qy, 4)]
            ctx_a = soa.tp_context(columns, qx, qy, result)
            ctx_b = np_kernel.tp_context(columns, qx, qy, result)
            for _ in range(12):
                angle = rnd.uniform(0.0, 2.0 * math.pi)
                v = (math.cos(angle), math.sin(angle))
                ev_a = ctx_a.probe(*v)
                ev_b = ctx_b.probe(*v)
                assert ev_a.time == pytest.approx(ev_b.time, abs=1e-9)
                a_inf = ev_a.influence.oid if ev_a.influence else None
                b_inf = ev_b.influence.oid if ev_b.influence else None
                assert a_inf == b_inf


class TestPointColumns:
    def test_roundtrips_entries(self):
        entries = _entries(12, n=37)
        cols = PointColumns(entries)
        assert len(cols) == 37
        assert list(cols.oids) == [e.oid for e in entries]
        assert cols.entries[5] is entries[5]

    @pytest.mark.skipif(not numpy_enabled(), reason="numpy masked out")
    def test_as_numpy_is_cached(self):
        cols = PointColumns(_entries(13, n=9))
        xs1, ys1, oids1 = cols.as_numpy()
        xs2, _ys2, _oids2 = cols.as_numpy()
        assert xs1 is xs2
        assert len(xs1) == len(ys1) == len(oids1) == 9


class TestKernelSelection:
    def test_available_and_resolution_agree(self):
        names = available_kernels()
        assert "scalar" in names and "soa" in names
        assert ("numpy" in names) == numpy_enabled()
        resolved = resolve_kernel_name("auto")
        assert resolved in names
        assert get_kernel("auto").name == resolved

    def test_execution_config_resolves(self):
        cfg = ExecutionConfig(kernel="soa")
        assert cfg.resolved_kernel() == "soa"
        with pytest.raises(ValueError):
            ExecutionConfig(kernel="vectorized")
        with pytest.raises(ValueError):
            ExecutionConfig(backend="fiber")
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)
