"""Tests for the incremental (delta) re-query extension (paper §7)."""

import pytest

from repro.geometry import Rect
from repro.core import LocationServer, MobileClient
from repro.core.api import KNNRequest, WindowRequest
from tests.conftest import brute_knn_set, brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestServerDelta:
    def test_knn_delta_contents(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        first = server.answer(KNNRequest((0.2, 0.2), k=5))
        prev = {e.oid for e in first.neighbors}
        delta = server.answer(KNNRequest((0.6, 0.6), k=5,
                                         previous_ids=tuple(prev)))
        current = {e.oid for e in delta.full.neighbors}
        assert {e.oid for e in delta.added} == current - prev
        assert set(delta.removed_ids) == prev - current

    def test_window_delta_contents(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        first = server.answer(WindowRequest((0.4, 0.4), 0.2, 0.2))
        prev = {e.oid for e in first.result}
        delta = server.answer(WindowRequest((0.45, 0.4), 0.2, 0.2,
                                            previous_ids=tuple(prev)))
        current = {e.oid for e in delta.full.result}
        assert {e.oid for e in delta.added} == current - prev
        assert set(delta.removed_ids) == prev - current

    def test_no_change_delta_is_small(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        first = server.answer(WindowRequest((0.4, 0.4), 0.2, 0.2))
        prev = {e.oid for e in first.result}
        delta = server.answer(WindowRequest((0.4, 0.4), 0.2, 0.2,
                                            previous_ids=tuple(prev)))
        assert delta.added == [] and delta.removed_ids == []
        assert delta.transfer_bytes() < first.transfer_bytes()

    def test_delta_bytes_smaller_for_small_moves(self, small_tree):
        """The whole point: overlapping results make deltas cheap."""
        server = LocationServer(small_tree, UNIT)
        first = server.answer(WindowRequest((0.4, 0.4), 0.3, 0.3))
        prev = {e.oid for e in first.result}
        delta = server.answer(WindowRequest((0.41, 0.4), 0.3, 0.3,
                                            previous_ids=tuple(prev)))
        full = server.answer(WindowRequest((0.41, 0.4), 0.3, 0.3))
        assert delta.transfer_bytes() < full.transfer_bytes()


class TestIncrementalClient:
    def test_same_answers_as_plain_client(self, small_tree, uniform_1k, rng):
        server = LocationServer(small_tree, UNIT)
        plain = MobileClient(server)
        inc = MobileClient(server, incremental=True)
        pos = [0.3, 0.3]
        for _ in range(50):
            pos[0] = min(max(pos[0] + rng.uniform(-0.02, 0.02), 0), 1)
            pos[1] = min(max(pos[1] + rng.uniform(-0.02, 0.02), 0), 1)
            a = plain.knn(tuple(pos), k=3)
            b = inc.knn(tuple(pos), k=3)
            assert [e.oid for e in a] == [e.oid for e in b]
            assert {e.oid for e in b} == brute_knn_set(uniform_1k,
                                                       tuple(pos), 3)

    def test_incremental_window_correct(self, small_tree, uniform_1k, rng):
        server = LocationServer(small_tree, UNIT)
        inc = MobileClient(server, incremental=True)
        pos = [0.5, 0.5]
        for _ in range(40):
            pos[0] = min(max(pos[0] + rng.uniform(-0.02, 0.02), 0), 1)
            got = sorted(e.oid for e in inc.window(tuple(pos), 0.15, 0.15))
            assert got == brute_window(
                uniform_1k, Rect.around(tuple(pos), 0.15, 0.15))

    def test_incremental_saves_bytes(self, small_tree, rng):
        server = LocationServer(small_tree, UNIT)
        plain = MobileClient(server)
        inc = MobileClient(server, incremental=True)
        pos = [0.5, 0.5]
        for _ in range(60):
            pos[0] = min(max(pos[0] + rng.uniform(-0.01, 0.01), 0), 1)
            pos[1] = min(max(pos[1] + rng.uniform(-0.01, 0.01), 0), 1)
            plain.window(tuple(pos), 0.25, 0.25)
            inc.window(tuple(pos), 0.25, 0.25)
        assert inc.stats.bytes_received < plain.stats.bytes_received
        assert inc.stats.server_queries == plain.stats.server_queries

    def test_first_query_is_full(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        inc = MobileClient(server, incremental=True)
        result = inc.window((0.5, 0.5), 0.2, 0.2)
        assert result  # nothing cached yet: a full response served it

    def test_window_resize_falls_back_to_full(self, small_tree, uniform_1k):
        server = LocationServer(small_tree, UNIT)
        inc = MobileClient(server, incremental=True)
        inc.window((0.5, 0.5), 0.1, 0.1)
        got = sorted(e.oid for e in inc.window((0.5, 0.5), 0.3, 0.3))
        assert got == brute_window(uniform_1k,
                                   Rect.around((0.5, 0.5), 0.3, 0.3))
