"""Adversarial property tests for the conservative window cut.

``_conservative_cut`` must, for any hole pattern: keep the focus
inside, stay within the inner region, and clear every hole.  Holes here
are synthesized directly (not via datasets), so patterns impossible
under the real geometry are exercised too — the function's contract
only requires that the focus is in no hole's interior.
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.geometry import Rect
from repro.index.entry import LeafEntry
from repro.core.window_validity import _conservative_cut
from repro.geometry import Point

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def cut_instances(draw):
    fx, fy = draw(unit), draw(unit)
    x1, x2 = sorted((draw(unit), draw(unit)))
    y1, y2 = sorted((draw(unit), draw(unit)))
    inner = Rect(min(x1, fx), min(y1, fy), max(x2, fx), max(y2, fy))
    n = draw(st.integers(min_value=0, max_value=8))
    holes = []
    for i in range(n):
        hx1, hx2 = sorted((draw(unit), draw(unit)))
        hy1, hy2 = sorted((draw(unit), draw(unit)))
        hole = Rect(hx1, hy1, hx2, hy2)
        # Contract: the focus is never strictly inside a hole.
        if hole.contains_point_open((fx, fy)):
            continue
        holes.append((LeafEntry(i, (hx1 + hx2) / 2, (hy1 + hy2) / 2), hole))
    return Point(fx, fy), inner, holes


class TestConservativeCutProperties:
    @given(cut_instances())
    @settings(deadline=None, max_examples=200)
    def test_invariants(self, instance):
        focus, inner, holes = instance
        final, cuts = _conservative_cut(focus, inner, holes)
        # 1. The focus stays inside (closed) the final rectangle.
        assert final.contains_point(focus, eps=1e-12)
        # 2. The final rectangle is within the inner region.
        assert inner.contains_rect(final)
        # 3. No hole overlaps the final rectangle's interior.
        for _, hole in holes:
            assert final.overlap_area(hole) <= 1e-12
        # 4. Every recorded cut names a hole from the input.
        input_oids = {e.oid for e, _ in holes}
        assert all(e.oid in input_oids for e, _, _ in cuts)

    @given(cut_instances())
    @settings(deadline=None, max_examples=100)
    def test_no_holes_is_identity(self, instance):
        focus, inner, _ = instance
        final, cuts = _conservative_cut(focus, inner, [])
        assert final == inner and cuts == []

    @given(cut_instances())
    @settings(deadline=None, max_examples=100)
    def test_deterministic(self, instance):
        focus, inner, holes = instance
        a, _ = _conservative_cut(focus, inner, holes)
        b, _ = _conservative_cut(focus, inner, list(holes))
        assert a == b
