"""Metamorphic tests: geometric transformations of the whole instance.

Validity regions are purely geometric objects, so translating or
uniformly scaling the dataset, the universe, and the query must
translate/scale the regions accordingly.  These tests catch hidden
absolute-coordinate assumptions (hard-coded epsilons, origin bias).
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.core import (
    compute_nn_validity,
    compute_range_validity,
    compute_window_validity,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

# Offsets/scales are bounded so that coordinates keep ~10 significant
# digits after cancellation; beyond that, float conditioning (not the
# algorithms) dominates the comparison.
offsets = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
scales = st.floats(min_value=1e-2, max_value=1e3, allow_nan=False)


def _instance(seed, n=120):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (rnd.random(), rnd.random())
    return points, query


def _transform(points, query, dx, dy, s):
    pts = [(p[0] * s + dx, p[1] * s + dy) for p in points]
    q = (query[0] * s + dx, query[1] * s + dy)
    universe = Rect(dx, dy, s + dx, s + dy)
    return pts, q, universe


class TestNNValidityInvariance:
    @given(st.integers(min_value=0, max_value=2**31 - 1), offsets, offsets,
           scales)
    @settings(deadline=None, max_examples=20)
    def test_translation_and_scale(self, seed, dx, dy, s):
        points, query = _instance(seed)
        base_tree = bulk_load_str(points, capacity=8)
        base = compute_nn_validity(base_tree, query, k=2, universe=UNIT)

        pts2, q2, universe2 = _transform(points, query, dx, dy, s)
        tree2 = bulk_load_str(pts2, capacity=8)
        moved = compute_nn_validity(tree2, q2, k=2, universe=universe2)

        assert ({e.oid for e in moved.neighbors}
                == {e.oid for e in base.neighbors})
        assert math.isclose(moved.region.area(), base.region.area() * s * s,
                            rel_tol=1e-4, abs_tol=1e-9)
        assert (moved.num_influence_objects
                == base.num_influence_objects)


class TestWindowValidityInvariance:
    @given(st.integers(min_value=0, max_value=2**31 - 1), offsets, offsets,
           scales)
    @settings(deadline=None, max_examples=20)
    def test_translation_and_scale(self, seed, dx, dy, s):
        points, query = _instance(seed)
        base_tree = bulk_load_str(points, capacity=8)
        base = compute_window_validity(base_tree, query, 0.2, 0.15,
                                       universe=UNIT)

        pts2, q2, universe2 = _transform(points, query, dx, dy, s)
        tree2 = bulk_load_str(pts2, capacity=8)
        moved = compute_window_validity(tree2, q2, 0.2 * s, 0.15 * s,
                                        universe=universe2)

        assert ({e.oid for e in moved.result}
                == {e.oid for e in base.result})
        assert math.isclose(moved.conservative_region.area(),
                            base.conservative_region.area() * s * s,
                            rel_tol=1e-4, abs_tol=1e-9)
        assert (len(moved.inner_influence) == len(base.inner_influence))
        assert (len(moved.outer_influence) == len(base.outer_influence))


class TestRangeValidityInvariance:
    @given(st.integers(min_value=0, max_value=2**31 - 1), offsets, offsets,
           scales)
    @settings(deadline=None, max_examples=20)
    def test_translation_and_scale(self, seed, dx, dy, s):
        points, query = _instance(seed)
        base_tree = bulk_load_str(points, capacity=8)
        base = compute_range_validity(base_tree, query, 0.15)

        pts2, q2, _ = _transform(points, query, dx, dy, s)
        tree2 = bulk_load_str(pts2, capacity=8)
        moved = compute_range_validity(tree2, q2, 0.15 * s)

        assert ({e.oid for e in moved.result}
                == {e.oid for e in base.result})
        if math.isfinite(base.validity_radius):
            assert math.isclose(moved.validity_radius,
                                base.validity_radius * s,
                                rel_tol=1e-4, abs_tol=1e-9)
