"""Tests for the region-query validity extension (paper §7)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.index import bulk_load_str
from repro.core import LocationServer, MobileClient, compute_range_validity
from repro.core.api import RangeRequest
from repro.geometry import Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def brute_range_set(points, center, radius):
    return {i for i, p in enumerate(points)
            if math.dist(p, center) <= radius}


class TestRangeValidity:
    def test_result_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(15):
            f = (rng.random(), rng.random())
            res = compute_range_validity(small_tree, f, 0.1)
            assert {e.oid for e in res.result} == brute_range_set(
                uniform_1k, f, 0.1)

    def test_result_invariant_inside_validity_disk(self, small_tree,
                                                   uniform_1k, rng):
        """The conservative disk is sound: result identical anywhere in it."""
        for _ in range(20):
            f = (rng.random(), rng.random())
            res = compute_range_validity(small_tree, f, 0.08)
            base = {e.oid for e in res.result}
            rho = res.validity_radius
            if not math.isfinite(rho) or rho <= 0:
                continue
            for _ in range(8):
                ang = rng.random() * 2 * math.pi
                d = rng.random() * rho * 0.999
                g = (f[0] + d * math.cos(ang), f[1] + d * math.sin(ang))
                assert brute_range_set(uniform_1k, g, 0.08) == base

    def test_validity_radius_is_tight(self, small_tree, uniform_1k, rng):
        """Moving just beyond the disk towards the binding object changes
        the result."""
        for _ in range(15):
            f = (rng.random(), rng.random())
            res = compute_range_validity(small_tree, f, 0.08)
            rho = res.validity_radius
            if not math.isfinite(rho) or rho <= 1e-9:
                continue
            base = {e.oid for e in res.result}
            # The binding influence object defines the tight direction.
            inner_slack = (min(0.08 - math.dist((e.x, e.y), f)
                               for e in res.result)
                           if res.result else math.inf)
            if inner_slack < math.inf and math.isclose(rho, inner_slack):
                b = res.inner_influence
                away = (f[0] - (b.x - f[0]) / max(math.dist((b.x, b.y), f), 1e-12) * rho * 1.01,
                        f[1] - (b.y - f[1]) / max(math.dist((b.x, b.y), f), 1e-12) * rho * 1.01)
                # Moving directly away from the binding inner object by
                # slightly more than rho drops it from the result.
                assert b.oid not in brute_range_set(uniform_1k, away, 0.08)
            else:
                b = res.outer_influence
                towards = (f[0] + (b.x - f[0]) / math.dist((b.x, b.y), f) * rho * 1.01,
                           f[1] + (b.y - f[1]) / math.dist((b.x, b.y), f) * rho * 1.01)
                assert b.oid in brute_range_set(uniform_1k, towards, 0.08)

    def test_empty_result(self, rng):
        tree = bulk_load_str([(0.9, 0.9)], capacity=4)
        res = compute_range_validity(tree, (0.1, 0.1), 0.05)
        assert res.result == []
        assert res.inner_influence is None
        assert res.outer_influence is not None
        # Disk reaches until the single point would enter.
        want = math.dist((0.1, 0.1), (0.9, 0.9)) - 0.05
        assert math.isclose(res.validity_radius, want)

    def test_all_points_inside(self):
        tree = bulk_load_str([(0.5, 0.5)], capacity=4)
        res = compute_range_validity(tree, (0.5, 0.5), 0.2)
        assert res.outer_influence is None
        assert math.isclose(res.validity_radius, 0.2)  # until the point exits

    def test_empty_tree(self):
        tree = bulk_load_str([], capacity=4)
        res = compute_range_validity(tree, (0.5, 0.5), 0.1)
        assert res.result == [] and res.influence_set == []
        assert math.isinf(res.validity_radius)
        assert res.validity_region().contains((123.0, 456.0))

    def test_invalid_radius_raises(self, small_tree):
        with pytest.raises(ValueError):
            compute_range_validity(small_tree, (0.5, 0.5), 0.0)

    def test_region_object(self, small_tree):
        res = compute_range_validity(small_tree, (0.5, 0.5), 0.1)
        region = res.validity_region()
        assert region.contains((0.5, 0.5))
        assert region.transfer_bytes() == 24
        if math.isfinite(res.validity_radius):
            assert math.isclose(
                region.area(), math.pi * res.validity_radius ** 2)


class TestServerClientRange:
    def test_server_range_query(self, small_tree, uniform_1k):
        server = LocationServer(small_tree, UNIT)
        resp = server.answer(RangeRequest((0.5, 0.5), 0.1))
        assert {e.oid for e in resp.result} == brute_range_set(
            uniform_1k, (0.5, 0.5), 0.1)
        assert resp.transfer_bytes() >= 24

    def test_client_caches_range(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        a = client.range((0.5, 0.5), 0.1)
        b = client.range((0.5 + 1e-9, 0.5), 0.1)
        assert [e.oid for e in a] == [e.oid for e in b]
        assert client.stats.server_queries == 1
        assert client.stats.cache_answers == 1

    def test_client_range_correct_along_walk(self, small_tree, uniform_1k,
                                             rng):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        # Validity disks over 1k points are small (boundary gaps of a
        # 0.07-radius circle average ~0.002), so walk in small steps.
        pos = [0.5, 0.5]
        for _ in range(60):
            pos[0] = min(max(pos[0] + rng.uniform(-0.0005, 0.0005), 0), 1)
            pos[1] = min(max(pos[1] + rng.uniform(-0.0005, 0.0005), 0), 1)
            got = {e.oid for e in client.range(tuple(pos), 0.07)}
            assert got == brute_range_set(uniform_1k, tuple(pos), 0.07)
        assert client.stats.cache_answers > 0

    def test_radius_change_invalidates_cache(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.range((0.5, 0.5), 0.1)
        client.range((0.5, 0.5), 0.2)
        assert client.stats.server_queries == 2


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=25)
    def test_validity_disk_sound_random(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 80)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=rnd.randint(4, 12))
        f = (rnd.random(), rnd.random())
        r = rnd.uniform(0.02, 0.4)
        res = compute_range_validity(tree, f, r)
        base = brute_range_set(points, f, r)
        assert {e.oid for e in res.result} == base
        rho = res.validity_radius
        if math.isfinite(rho) and rho > 0:
            for _ in range(6):
                ang = rnd.random() * 2 * math.pi
                d = rnd.random() * rho * 0.999
                g = (f[0] + d * math.cos(ang), f[1] + d * math.sin(ang))
                assert brute_range_set(points, g, r) == base
