"""Tests for NN validity regions (paper, Section 3).

The fundamental invariant: the computed region equals the order-k
Voronoi cell of the result set (brute-force half-plane intersection),
and the kNN set is constant exactly on that region.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.core import (
    compute_nn_validity,
    retrieve_influence_set_1nn,
    retrieve_influence_set_knn,
)
from repro.core.nn_validity import VERTEX_POLICIES
from repro.queries import nearest_neighbors
from tests.conftest import brute_knn_set, brute_order_k_cell

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestRegionEqualsVoronoiCell:
    def test_1nn_region_is_voronoi_cell(self, small_tree, uniform_1k, rng):
        for _ in range(20):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
            cell = brute_order_k_cell(uniform_1k, q, 1, UNIT)
            assert math.isclose(res.region.area(), cell.area(),
                                rel_tol=1e-6, abs_tol=1e-12)

    def test_knn_region_is_order_k_cell(self, small_tree, uniform_1k, rng):
        for k in (2, 3, 10):
            for _ in range(6):
                q = (rng.random(), rng.random())
                res = compute_nn_validity(small_tree, q, k=k, universe=UNIT)
                cell = brute_order_k_cell(uniform_1k, q, k, UNIT)
                assert math.isclose(res.region.area(), cell.area(),
                                    rel_tol=1e-6, abs_tol=1e-12)

    def test_region_contains_query(self, small_tree, rng):
        for _ in range(10):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
            assert res.region.contains(q, eps=1e-9)

    def test_result_constant_inside_region(self, small_tree, uniform_1k, rng):
        for _ in range(10):
            q = (rng.random(), rng.random())
            k = rng.choice([1, 3])
            res = compute_nn_validity(small_tree, q, k=k, universe=UNIT)
            base = {e.oid for e in res.neighbors}
            hits = 0
            while hits < 8:
                p = (rng.random(), rng.random())
                if res.region.contains(p, eps=-1e-9):
                    hits += 1
                    assert brute_knn_set(uniform_1k, p, k) == base

    def test_result_differs_outside_region(self, small_tree, uniform_1k, rng):
        for _ in range(10):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
            base = {e.oid for e in res.neighbors}
            misses = 0
            while misses < 8:
                p = (rng.random(), rng.random())
                if not res.region.contains(p, eps=1e-9):
                    misses += 1
                    assert brute_knn_set(uniform_1k, p, 1) != base


class TestLemmas:
    def test_lemma_3_2_query_count(self, small_tree, rng):
        """#TP queries == n_inf (pairs) + n_v (confirmations)."""
        for _ in range(20):
            q = (rng.random(), rng.random())
            k = rng.choice([1, 1, 5])
            res = compute_nn_validity(small_tree, q, k=k, universe=UNIT)
            assert res.num_tp_queries == (len(res.influence_pairs)
                                          + res.num_confirmations)

    def test_no_false_hits(self, small_tree, uniform_1k, rng):
        """Lemma 3.1(ii): every influence object contributes an edge.

        Removing any single influence pair must strictly grow the
        region, otherwise the pair was a false hit.
        """
        from repro.geometry import ConvexPolygon, bisector_halfplane
        for _ in range(8):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
            pairs = res.influence_pairs
            full_area = res.region.area()
            for skip in range(len(pairs)):
                poly = ConvexPolygon.from_rect(UNIT)
                for i, (o, a) in enumerate(pairs):
                    if i == skip:
                        continue
                    poly = poly.clip(
                        bisector_halfplane(o.point, a.point), eps=1e-12)
                assert poly.area() > full_area + 1e-15

    def test_influence_count_matches_edges_for_1nn(self, small_tree, rng):
        """For k=1, interior edges of V(q) map 1:1 to influence objects."""
        for _ in range(15):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
            # Edges on the universe boundary have no influence object.
            boundary_edges = _universe_edges(res.region, UNIT)
            assert res.num_influence_objects == res.num_edges - boundary_edges


def _universe_edges(region, universe):
    count = 0
    verts = region.vertices
    for i, a in enumerate(verts):
        b = verts[(i + 1) % len(verts)]
        for lo, hi, coord in ((universe.xmin, universe.xmax, 0),
                              (universe.ymin, universe.ymax, 1)):
            for bound in (lo, hi):
                if (abs(a[coord] - bound) < 1e-12
                        and abs(b[coord] - bound) < 1e-12):
                    count += 1
    return count


class TestAlgorithmVariants:
    def test_1nn_wrapper_equivalent(self, small_tree):
        q = (0.37, 0.81)
        o = nearest_neighbors(small_tree, q, k=1)[0].entry
        a = retrieve_influence_set_1nn(small_tree, q, o, UNIT)
        b = retrieve_influence_set_knn(small_tree, q, [o], UNIT)
        assert math.isclose(a.region.area(), b.region.area())
        assert ({e.oid for e in a.influence_set}
                == {e.oid for e in b.influence_set})

    @pytest.mark.parametrize("policy", VERTEX_POLICIES)
    def test_all_vertex_policies_same_region(self, small_tree, policy):
        q = (0.52, 0.44)
        rng = random.Random(7)
        res = compute_nn_validity(small_tree, q, k=1, universe=UNIT,
                                  vertex_policy=policy, rng=rng)
        ref = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
        assert math.isclose(res.region.area(), ref.region.area(),
                            rel_tol=1e-9)

    def test_unknown_policy_raises(self, small_tree):
        with pytest.raises(ValueError):
            compute_nn_validity(small_tree, (0.5, 0.5), universe=UNIT,
                                vertex_policy="bogus")

    def test_depth_first_nn_method(self, small_tree):
        res = compute_nn_validity(small_tree, (0.5, 0.5), k=1, universe=UNIT,
                                  nn_method="depth_first")
        ref = compute_nn_validity(small_tree, (0.5, 0.5), k=1, universe=UNIT)
        assert math.isclose(res.region.area(), ref.region.area())

    def test_empty_result_raises(self, small_tree):
        with pytest.raises(ValueError):
            retrieve_influence_set_knn(small_tree, (0.5, 0.5), [], UNIT)


class TestEdgeCases:
    def test_k_equals_dataset_size(self):
        pts = [(0.2, 0.2), (0.8, 0.8), (0.5, 0.1)]
        tree = bulk_load_str(pts, capacity=4)
        res = compute_nn_validity(tree, (0.5, 0.5), k=3, universe=UNIT)
        # Every point is in the result: valid everywhere, no influences.
        assert math.isclose(res.region.area(), 1.0)
        assert res.influence_pairs == []

    def test_k_exceeds_dataset_size(self):
        pts = [(0.2, 0.2), (0.8, 0.8)]
        tree = bulk_load_str(pts, capacity=4)
        res = compute_nn_validity(tree, (0.5, 0.5), k=5, universe=UNIT)
        assert math.isclose(res.region.area(), 1.0)

    def test_two_points(self):
        tree = bulk_load_str([(0.25, 0.5), (0.75, 0.5)], capacity=4)
        res = compute_nn_validity(tree, (0.3, 0.5), k=1, universe=UNIT)
        # The cell is the half of the square left of x = 0.5.
        assert math.isclose(res.region.area(), 0.5, rel_tol=1e-9)
        assert res.num_influence_objects == 1

    def test_query_on_data_point(self, small_tree, uniform_1k):
        q = uniform_1k[50]
        res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
        assert res.neighbors[0].oid == 50
        cell = brute_order_k_cell(uniform_1k, q, 1, UNIT)
        assert math.isclose(res.region.area(), cell.area(), rel_tol=1e-6)

    def test_query_at_universe_corner(self, small_tree, uniform_1k):
        res = compute_nn_validity(small_tree, (0.0, 0.0), k=1, universe=UNIT)
        cell = brute_order_k_cell(uniform_1k, (0.0, 0.0), 1, UNIT)
        assert math.isclose(res.region.area(), cell.area(), rel_tol=1e-6)

    def test_grid_data_degenerate_ties(self):
        """Cocircular grid points: the tie-preference must still find the
        full cell."""
        pts = [(x / 10.0, y / 10.0) for x in range(1, 10)
               for y in range(1, 10)]
        tree = bulk_load_str(pts, capacity=8)
        res = compute_nn_validity(tree, (0.43, 0.52), k=1, universe=UNIT)
        cell = brute_order_k_cell(pts, (0.43, 0.52), 1, UNIT)
        assert math.isclose(res.region.area(), cell.area(), rel_tol=1e-6)

    def test_clustered_data(self, clustered_tree, clustered_300, rng):
        for _ in range(8):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(clustered_tree, q, k=2, universe=UNIT)
            cell = brute_order_k_cell(clustered_300, q, 2, UNIT)
            assert math.isclose(res.region.area(), cell.area(),
                                rel_tol=1e-6, abs_tol=1e-12)

    def test_validity_region_object(self, small_tree, rng):
        q = (0.4, 0.6)
        res = compute_nn_validity(small_tree, q, k=1, universe=UNIT)
        region = res.validity_region(UNIT)
        assert region.contains(q)
        poly = region.polygon()
        assert math.isclose(poly.area(), res.region.area(), rel_tol=1e-9)
        assert region.num_halfplane_checks == len(res.influence_pairs)
        assert region.transfer_bytes() > 0


class TestPhaseAccounting:
    def test_phases_split_nn_and_tpnn(self, small_tree):
        small_tree.disk.reset_stats()
        compute_nn_validity(small_tree, (0.5, 0.5), k=1, universe=UNIT)
        phases = small_tree.disk.stats.node_accesses_by_phase()
        assert set(phases) == {"nn", "tpnn"}
        assert phases["tpnn"] > phases["nn"]  # ~12 TP queries vs 1 NN


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=25)
    def test_region_matches_brute_cell_random(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 60)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=rnd.randint(4, 12))
        q = (rnd.random(), rnd.random())
        k = rnd.randint(1, min(n, 6))
        res = compute_nn_validity(tree, q, k=k, universe=UNIT)
        cell = brute_order_k_cell(points, q, k, UNIT)
        assert math.isclose(res.region.area(), cell.area(),
                            rel_tol=1e-5, abs_tol=1e-10)
