"""Oracle property tests: the paper's validity-region guarantee itself.

The central claim of the paper is a *spatial contract*: anywhere inside
the validity region shipped with a result, that result is still the
correct answer.  These properties check the contract directly against
brute-force oracles — random probe points are drawn inside the returned
region (convex combinations of its polygon vertices for NN regions,
uniform samples for window rectangles), and at every probe the
linear-scan answer must match the cached one.

Ties are handled the way the contract means them: at a probe point the
cached kNN set is "unchanged" iff its farthest member is no farther
than the nearest excluded point (up to float slack) — on a tie either
set is a correct answer.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.core import compute_nn_validity, compute_window_validity
from repro.core.api import KNNRequest, QueryBudget
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.index import bulk_load_str

from tests.conftest import UNIT, brute_window

EPS = 1e-9

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=6)


def _instance(seed: int, n: int = 150):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (rnd.random(), rnd.random())
    return points, query, rnd


def _interior_probes(polygon, rnd: random.Random, num: int = 12):
    """Random strict convex combinations of the polygon's vertices.

    A convex combination of vertices with positive weights lies in the
    polygon (convexity); shrinking towards the centroid keeps probes
    off the boundary, where the answer legitimately changes.
    """
    verts = polygon.vertices
    if len(verts) < 3:
        return []
    cx, cy = polygon.centroid()
    probes = []
    for _ in range(num):
        weights = [rnd.random() + 1e-6 for _ in verts]
        total = sum(weights)
        px = sum(w * v[0] for w, v in zip(weights, verts)) / total
        py = sum(w * v[1] for w, v in zip(weights, verts)) / total
        probes.append((0.999 * px + 0.001 * cx, 0.999 * py + 0.001 * cy))
    return probes


def _knn_set_unchanged(points, probe, cached_ids, eps=EPS) -> bool:
    """Is ``cached_ids`` a correct kNN answer at ``probe`` (tie-aware)?"""
    dist = [math.dist(p, probe) for p in points]
    farthest_cached = max(dist[i] for i in cached_ids)
    nearest_excluded = min(
        (dist[i] for i in range(len(points)) if i not in cached_ids),
        default=math.inf)
    return farthest_cached <= nearest_excluded + eps


class TestNNRegionOracle:
    @given(seeds, ks)
    @settings(deadline=None, max_examples=25)
    def test_knn_set_constant_inside_region(self, seed, k):
        points, query, rnd = _instance(seed)
        tree = bulk_load_str(points, capacity=8)
        detail = compute_nn_validity(tree, query, k=k, universe=UNIT)
        cached = {e.oid for e in detail.neighbors}
        assert len(cached) == k
        region = detail.validity_region(UNIT)
        assert region.contains(query, eps=EPS)
        for probe in _interior_probes(region.polygon(), rnd):
            if not region.contains(probe, eps=-EPS):
                continue  # numerically on the boundary: no claim made
            assert _knn_set_unchanged(points, probe, cached), (
                f"kNN set changed inside the validity region at {probe} "
                f"(seed={seed}, k={k})")

    @given(seeds, ks)
    @settings(deadline=None, max_examples=25)
    def test_degraded_safe_disk_honours_the_same_contract(self, seed, k):
        """The budget-exhausted safe disk is a *subset* guarantee — the
        identical oracle must hold inside it."""
        points, query, rnd = _instance(seed, n=120)
        server = LocationServer(bulk_load_str(points, capacity=8),
                                universe=UNIT)
        resp = server.answer(KNNRequest(
            query, k=k, budget=QueryBudget(max_node_accesses=1)))
        assert resp.detail.degraded
        cached = {e.oid for e in resp.neighbors}
        radius = resp.region.radius
        for i in range(10):
            angle = rnd.uniform(0.0, 2.0 * math.pi)
            rho = radius * math.sqrt(rnd.random()) * 0.99
            probe = (query[0] + rho * math.cos(angle),
                     query[1] + rho * math.sin(angle))
            assert _knn_set_unchanged(points, probe, cached), (
                f"kNN set changed inside the degraded safe disk at {probe} "
                f"(seed={seed}, k={k})")


class TestWindowRegionOracle:
    @given(seeds,
           st.floats(min_value=0.05, max_value=0.4),
           st.floats(min_value=0.05, max_value=0.4))
    @settings(deadline=None, max_examples=25)
    def test_window_result_constant_inside_minkowski_rect(self, seed, w, h):
        points, focus, rnd = _instance(seed)
        tree = bulk_load_str(points, capacity=8)
        detail = compute_window_validity(tree, focus, w, h, universe=UNIT)
        cached = sorted(e.oid for e in detail.result)
        rect = detail.conservative_region
        assert rect.contains_point(focus)
        for _ in range(12):
            # Uniform probes strictly inside the conservative rectangle.
            probe = (rnd.uniform(rect.xmin, rect.xmax),
                     rnd.uniform(rect.ymin, rect.ymax))
            if (min(probe[0] - rect.xmin, rect.xmax - probe[0]) < EPS
                    or min(probe[1] - rect.ymin, rect.ymax - probe[1]) < EPS):
                continue
            moved = Rect(probe[0] - w / 2.0, probe[1] - h / 2.0,
                         probe[0] + w / 2.0, probe[1] + h / 2.0)
            assert brute_window(points, moved) == cached, (
                f"window result changed inside the validity rect at {probe} "
                f"(seed={seed}, w={w}, h={h})")

    @given(seeds)
    @settings(deadline=None, max_examples=15)
    def test_exact_region_membership_matches_brute_force(self, seed):
        """The exact (rectilinear) region agrees with re-running the
        query: inside → same result; outside (but in the inner rect,
        i.e. inside a hole) → different result."""
        points, focus, rnd = _instance(seed)
        w = h = 0.25
        tree = bulk_load_str(points, capacity=8)
        detail = compute_window_validity(tree, focus, w, h, universe=UNIT)
        if detail.exact_region_is_lower_bound:
            return  # downgraded: only the conservative guarantee holds
        cached = sorted(e.oid for e in detail.result)
        inner = detail.inner_region
        for _ in range(20):
            probe = (rnd.uniform(inner.xmin, inner.xmax),
                     rnd.uniform(inner.ymin, inner.ymax))
            moved = Rect(probe[0] - w / 2.0, probe[1] - h / 2.0,
                         probe[0] + w / 2.0, probe[1] + h / 2.0)
            same = brute_window(points, moved) == cached
            # Skip probes within float slack of a hole edge: hole
            # boundaries are where the answer legitimately flips.
            near_edge = any(
                h.contains_point(probe, eps=EPS)
                and not h.contains_point_open(probe, eps=EPS)
                for h in detail.exact_region.holes)
            if near_edge:
                continue
            assert detail.exact_region.contains(probe) == same, (
                f"exact-region membership disagrees with the oracle at "
                f"{probe} (seed={seed})")
