"""Oracle-backed battery for reverse-kNN validity queries.

A reverse-kNN answer is the set of objects that count the query point
among their own k nearest neighbours.  Unlike kNN, membership is
decided by per-object thresholds (each object's k-th neighbour
distance), so the shipped validity region is an intersection of disks:
one per member (the member keeps the client within its threshold) and
a safety disk excluding every non-member.

These properties check the spatial contract against a quadratic
brute-force oracle — fresh answers, answers served inside the region,
cached answers, stale-served answers under pending mutation streams,
continuous-subscription answers under applied mutation streams, and
the sharded thread/process fan-out backends.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CacheConfig, ContinuousConfig, ExecutionConfig, build_service
from repro.core.rknn import RKNNRequest, compute_rknn_validity
from repro.core.server import LocationServer
from repro.service.staleness import Mutation, shrunk_stale_region

from tests.conftest import UNIT

EPS = 1e-9

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=4)


def _instance(seed: int, n: int = 150):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (0.25 + 0.5 * rnd.random(), 0.25 + 0.5 * rnd.random())
    return points, query, rnd


def _brute_rknn(live, q, k):
    """Tie-aware ``(must, may)`` reverse-kNN id sets over oid->point."""
    items = list(live.items())
    must, may = set(), set()
    for oid, p in items:
        d_others = sorted(math.dist(p, other)
                          for o2, other in items if o2 != oid)
        r = d_others[k - 1] if len(d_others) >= k else math.inf
        d = math.dist(p, q)
        if d < r - EPS:
            must.add(oid)
        if d < r + EPS:
            may.add(oid)
    return must, may


def _rknn_ok(live, q, served, k):
    must, may = _brute_rknn(live, q, k)
    return must <= served <= may


def _mutate(service, live, rnd, next_oid, center, spread=0.08):
    """One random mutation, biased to land near the query."""
    if live and rnd.random() < 0.45:
        oid = rnd.choice(sorted(live))
        x, y = live.pop(oid)
        assert service.delete_object(oid, x, y)
        return next_oid
    x = min(1.0, max(0.0, center[0] + rnd.gauss(0.0, spread)))
    y = min(1.0, max(0.0, center[1] + rnd.gauss(0.0, spread)))
    service.insert_object(next_oid, x, y)
    live[next_oid] = (x, y)
    return next_oid + 1


def _sync(sub, pos):
    """A well-behaved subscriber: drain, honour invalidations, move
    when the patched region no longer covers the position."""
    updates = sub.drain()
    if updates and updates[-1].kind == "invalidate":
        sub.move(pos)
    elif (sub.response is not None
          and not sub.response.region.contains(pos)):
        sub.move(pos)
    return sub.response


class TestRknnOracle:
    @given(seeds, ks)
    @settings(deadline=None, max_examples=25)
    def test_result_matches_brute_force(self, seed, k):
        points, query, rnd = _instance(seed)
        live = dict(enumerate(points))
        server = LocationServer.from_points(points, universe=UNIT)
        resp = server.answer(RKNNRequest(query, k=k))
        served = {e.oid for e in resp.result}
        assert _rknn_ok(live, query, served, k), (
            f"seed={seed} k={k}: reverse-kNN diverged from brute force")
        assert resp.region.contains(query, EPS)
        assert [e.oid for e in resp.result] == sorted(served)

    @given(seeds, ks)
    @settings(deadline=None, max_examples=25)
    def test_result_constant_inside_region(self, seed, k):
        points, query, rnd = _instance(seed)
        live = dict(enumerate(points))
        server = LocationServer.from_points(points, universe=UNIT)
        resp = server.answer(RKNNRequest(query, k=k))
        served = {e.oid for e in resp.result}
        for _ in range(12):
            probe = (query[0] + rnd.gauss(0.0, 0.02),
                     query[1] + rnd.gauss(0.0, 0.02))
            if not resp.region.contains(probe, -EPS):
                continue  # numerically on the boundary: no claim made
            assert _rknn_ok(live, probe, served, k), (
                f"seed={seed} k={k}: region claims {probe} but the "
                f"reverse-kNN set changed there")

    @given(seeds, ks)
    @settings(deadline=None, max_examples=20)
    def test_stale_served_answers_equal_recompute(self, seed, k):
        """A non-None shrunk stale region certifies the pre-mutation
        answer against a brute-force recompute on the mutated set."""
        points, query, rnd = _instance(seed, n=100)
        live = dict(enumerate(points))
        server = LocationServer.from_points(points, universe=UNIT)
        request = RKNNRequest(query, k=k)
        resp = server.answer(request)
        served = {e.oid for e in resp.result}
        pending = []
        for i in range(6):
            x = min(1.0, max(0.0, query[0] + rnd.gauss(0.0, 0.15)))
            y = min(1.0, max(0.0, query[1] + rnd.gauss(0.0, 0.15)))
            pending.append(Mutation("insert", len(points) + i, x, y))
        region = shrunk_stale_region(request, resp, pending, UNIT)
        if region is None:
            return  # refusing to serve stale is always sound
        mutated = dict(live)
        for m in pending:
            mutated[m.oid] = (m.x, m.y)
        assert region.contains(query, EPS)
        assert _rknn_ok(mutated, query, served, k), (
            f"seed={seed} k={k}: stale region certified a wrong answer")
        for _ in range(8):
            probe = (query[0] + rnd.gauss(0.0, 0.02),
                     query[1] + rnd.gauss(0.0, 0.02))
            if not region.contains(probe, -EPS):
                continue
            assert _rknn_ok(mutated, probe, served, k), (
                f"seed={seed} k={k}: stale region claims {probe} but "
                f"the answer changed there")

    @given(seeds, ks)
    @settings(deadline=None, max_examples=10)
    def test_cached_answers_survive_mutation_streams(self, seed, k):
        """Every answer out of the caching service — fresh or served
        from the validity cache — equals brute force over the live set."""
        points, query, rnd = _instance(seed, n=100)
        live = dict(enumerate(points))
        service = build_service(points, cache=CacheConfig(capacity=64))
        try:
            next_oid = len(points)
            pos = query
            for step in range(15):
                for _ in range(2):  # the repeat probes the cache
                    resp = service.answer(RKNNRequest(pos, k=k))
                    assert _rknn_ok(live, pos, {e.oid for e in resp.result},
                                    k), (f"seed={seed} k={k} step={step}: "
                                         f"cached reverse-kNN diverged")
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 5 == 4:
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
        finally:
            service.close()

    @given(seeds, ks)
    @settings(deadline=None, max_examples=10)
    def test_subscription_tracks_brute_force(self, seed, k):
        """After every applied mutation, the subscription's state —
        patched in place or refreshed through the escape hatch — equals
        a brute-force recompute."""
        points, query, rnd = _instance(seed, n=100)
        live = dict(enumerate(points))
        service = build_service(points,
                                continuous=ContinuousConfig(margin=6))
        try:
            sub = service.subscribe(RKNNRequest(query, k=k))
            pos, next_oid = query, len(points)
            for step in range(20):
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 7 == 6:  # the client wanders, too
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
                    sub.move(pos)
                current = _sync(sub, pos)
                served = {e.oid for e in current.result}
                assert _rknn_ok(live, pos, served, k), (
                    f"seed={seed} k={k} step={step}: subscription "
                    f"diverged from brute force at {pos}")
        finally:
            service.close()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_oracle_holds_across_sharded_backends(backend):
    """Reverse-kNN over a 2x2 sharded server on both fan-out backends:
    snapshot answers must agree with brute force under mutations."""
    rnd = random.Random(1337)
    points = [(rnd.random(), rnd.random()) for _ in range(200)]
    live = dict(enumerate(points))
    service = build_service(points, shards=2,
                            execution=ExecutionConfig(backend=backend))
    try:
        next_oid = len(points)
        for step in range(6):  # few steps: each epoch re-arms the pool
            next_oid = _mutate(service, live, rnd, next_oid, (0.5, 0.5),
                               spread=0.12)
            resp = service.answer(RKNNRequest((0.5, 0.5), k=3))
            assert _rknn_ok(live, (0.5, 0.5),
                            {e.oid for e in resp.result}, 3), (
                f"{backend} step {step}: sharded reverse-kNN diverged")
    finally:
        service.close()


def test_compute_function_handles_tiny_datasets():
    """Fewer than k+1 objects: everyone has an infinite threshold, so
    every object is a reverse neighbour and the region is unbounded-ish
    (clamped to the universe diagonal)."""
    points = [(0.2, 0.2), (0.8, 0.8)]
    detail = compute_rknn_validity(
        LocationServer.from_points(points, universe=UNIT).tree.points(),
        (0.5, 0.5), k=5, universe=UNIT)
    assert {e.oid for e in detail.members} == {0, 1}
    assert detail.safety_radius > 0.0
