"""Tests for window-query validity regions (paper, Section 4)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.core import compute_window_validity
from tests.conftest import brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def result_set(points, focus, w, h):
    return set(brute_window(points, Rect.around(focus, w, h)))


class TestResultAndRegions:
    def test_result_matches_brute_force(self, small_tree, uniform_1k, rng):
        for _ in range(15):
            f = (rng.random(), rng.random())
            res = compute_window_validity(small_tree, f, 0.1, 0.1,
                                          universe=UNIT)
            assert {e.oid for e in res.result} == result_set(
                uniform_1k, f, 0.1, 0.1)

    def test_focus_inside_all_regions(self, small_tree, rng):
        for _ in range(10):
            f = (rng.random(), rng.random())
            res = compute_window_validity(small_tree, f, 0.08, 0.08,
                                          universe=UNIT)
            assert res.inner_region.contains_point(f)
            assert res.conservative_region.contains_point(f)
            assert res.exact_region.contains(f)

    def test_conservative_inside_exact_inside_inner(self, small_tree, rng):
        for _ in range(10):
            f = (rng.random(), rng.random())
            res = compute_window_validity(small_tree, f, 0.1, 0.06,
                                          universe=UNIT)
            assert res.inner_region.contains_rect(res.conservative_region)
            for _ in range(10):
                p = (rng.uniform(res.conservative_region.xmin,
                                 res.conservative_region.xmax),
                     rng.uniform(res.conservative_region.ymin,
                                 res.conservative_region.ymax))
                assert res.exact_region.contains(p)

    def test_result_invariant_in_conservative_region(self, small_tree,
                                                     uniform_1k, rng):
        for _ in range(12):
            f = (rng.random(), rng.random())
            w = h = rng.choice([0.05, 0.1])
            res = compute_window_validity(small_tree, f, w, h, universe=UNIT)
            base = {e.oid for e in res.result}
            cr = res.conservative_region
            for _ in range(8):
                g = (rng.uniform(cr.xmin, cr.xmax),
                     rng.uniform(cr.ymin, cr.ymax))
                assert result_set(uniform_1k, g, w, h) == base

    def test_result_invariant_in_exact_region_interior(self, small_tree,
                                                       uniform_1k, rng):
        for _ in range(12):
            f = (rng.random(), rng.random())
            w = h = 0.08
            res = compute_window_validity(small_tree, f, w, h, universe=UNIT)
            base = {e.oid for e in res.result}
            ir = res.inner_region
            for _ in range(20):
                g = (rng.uniform(ir.xmin, ir.xmax),
                     rng.uniform(ir.ymin, ir.ymax))
                # Stay clear of hole boundaries where the result legit flips.
                strictly_in = res.exact_region.contains(g) and all(
                    not hole.contains_point(g, eps=1e-9)
                    for hole in res.exact_region.holes)
                strictly_out = any(
                    hole.contains_point_open(g, eps=1e-9)
                    for hole in res.exact_region.holes)
                if strictly_in:
                    assert result_set(uniform_1k, g, w, h) == base
                elif strictly_out:
                    assert result_set(uniform_1k, g, w, h) != base

    def test_result_changes_outside_inner_region(self, small_tree,
                                                 uniform_1k, rng):
        """Leaving the inner region means an inner point has left."""
        for _ in range(10):
            f = (rng.random() * 0.8 + 0.1, rng.random() * 0.8 + 0.1)
            w = h = 0.1
            res = compute_window_validity(small_tree, f, w, h, universe=UNIT)
            if not res.result:
                continue
            base = {e.oid for e in res.result}
            ir = res.inner_region
            # Step just past the +x boundary (if it is point-bounded).
            g = (ir.xmax + 1e-6, f[1])
            if UNIT.contains_point(g) and ir.xmax < UNIT.xmax - 1e-6:
                assert not result_set(uniform_1k, g, w, h) >= base


class TestInfluenceObjects:
    def test_inner_influence_are_result_members(self, small_tree, rng):
        for _ in range(10):
            f = (rng.random(), rng.random())
            res = compute_window_validity(small_tree, f, 0.1, 0.1,
                                          universe=UNIT)
            result_ids = {e.oid for e in res.result}
            assert all(e.oid in result_ids for e in res.inner_influence)

    def test_outer_influence_are_not_result_members(self, small_tree, rng):
        for _ in range(10):
            f = (rng.random(), rng.random())
            res = compute_window_validity(small_tree, f, 0.1, 0.1,
                                          universe=UNIT)
            result_ids = {e.oid for e in res.result}
            assert all(e.oid not in result_ids for e in res.outer_influence)

    def test_inner_influence_bound_the_region(self):
        # One point dead centre: all four sides bounded by it.
        tree = bulk_load_str([(0.5, 0.5)], capacity=4)
        res = compute_window_validity(tree, (0.5, 0.5), 0.2, 0.2,
                                      universe=UNIT)
        assert [e.oid for e in res.inner_influence] == [0]
        assert math.isclose(res.inner_region.width, 0.2)
        assert math.isclose(res.inner_region.height, 0.2)

    def test_empty_window_region_is_capped(self):
        """An empty window gets a sound, bounded validity region (3x the
        window by default) instead of the whole universe, keeping the
        influence query local."""
        tree = bulk_load_str([(0.05, 0.05)], capacity=4)
        res = compute_window_validity(tree, (0.7, 0.7), 0.1, 0.1,
                                      universe=UNIT)
        assert res.result == []
        assert res.inner_influence == []
        want = Rect.around((0.7, 0.7), 0.3, 0.3)
        assert all(a == pytest.approx(b)
                   for a, b in zip(res.inner_region, want))
        # The region is still sound: the window stays empty within it.
        cr = res.conservative_region
        for g in ((cr.xmin, cr.ymin), (cr.xmax, cr.ymax), cr.center()):
            assert not Rect.around(g, 0.1, 0.1).contains_point((0.05, 0.05))

    def test_empty_window_uncapped_matches_universe(self):
        import math
        tree = bulk_load_str([(0.05, 0.05)], capacity=4)
        res = compute_window_validity(tree, (0.7, 0.7), 0.1, 0.1,
                                      universe=UNIT,
                                      empty_window_region_factor=math.inf)
        assert res.inner_region == UNIT

    def test_outer_influence_edge_cut(self):
        # Inner point at centre, outer point to the east just outside.
        tree = bulk_load_str([(0.5, 0.5), (0.62, 0.5)], capacity=4)
        res = compute_window_validity(tree, (0.5, 0.5), 0.2, 0.2,
                                      universe=UNIT)
        assert {e.oid for e in res.result} == {0}
        assert [e.oid for e in res.outer_influence] == [1]
        # Focus can move east only until the window reaches the outer
        # point: xmax = 0.62 - 0.1 = 0.52.
        assert math.isclose(res.conservative_region.xmax, 0.52)

    def test_corner_outer_object_figure_33(self):
        """An outer object at the corner of the extended window makes the
        exact region non-rectangular; the conservative rectangle stays
        inside it (the Figure 33 discussion)."""
        tree = bulk_load_str([(0.5, 0.5), (0.63, 0.63)], capacity=4)
        res = compute_window_validity(tree, (0.5, 0.5), 0.2, 0.2,
                                      universe=UNIT)
        # The hole only eats the north-east corner of the inner region.
        assert len(res.exact_region.holes) == 1
        assert res.exact_region.area() > res.conservative_region.area()
        # Conservative region must still avoid the hole.
        hole = res.exact_region.holes[0]
        assert res.conservative_region.overlap_area(hole) == 0.0

    def test_average_influence_counts(self, small_tree, rng):
        """Paper Figure 31: about two inner and two outer on average."""
        nin, nout = [], []
        for _ in range(60):
            f = (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8))
            res = compute_window_validity(small_tree, f, 0.12, 0.12,
                                          universe=UNIT)
            nin.append(len(res.inner_influence))
            nout.append(len(res.outer_influence))
        assert 1.0 < sum(nin) / len(nin) < 3.5
        assert 1.0 < sum(nout) / len(nout) < 3.5


class TestValidation:
    def test_bad_extents_raise(self, small_tree):
        with pytest.raises(ValueError):
            compute_window_validity(small_tree, (0.5, 0.5), 0.0, 0.1)
        with pytest.raises(ValueError):
            compute_window_validity(small_tree, (0.5, 0.5), 0.1, -0.1)

    def test_phase_accounting(self, small_tree):
        small_tree.disk.reset_stats()
        compute_window_validity(small_tree, (0.5, 0.5), 0.1, 0.1,
                                universe=UNIT)
        phases = small_tree.disk.stats.node_accesses_by_phase()
        assert set(phases) == {"result", "influence"}

    def test_validity_region_object(self, small_tree):
        res = compute_window_validity(small_tree, (0.5, 0.5), 0.1, 0.1,
                                      universe=UNIT)
        region = res.validity_region()
        assert region.contains((0.5, 0.5))
        assert region.area() == res.conservative_region.area()
        assert region.transfer_bytes() == 32


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=30)
    def test_conservative_region_sound_random(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 100)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=rnd.randint(4, 12))
        f = (rnd.random(), rnd.random())
        w = rnd.uniform(0.02, 0.3)
        h = rnd.uniform(0.02, 0.3)
        res = compute_window_validity(tree, f, w, h, universe=UNIT)
        base = result_set(points, f, w, h)
        assert {e.oid for e in res.result} == base
        cr = res.conservative_region
        for _ in range(10):
            g = (rnd.uniform(cr.xmin, cr.xmax), rnd.uniform(cr.ymin, cr.ymax))
            assert result_set(points, g, w, h) == base
