"""Tests for the server/client protocol layer."""

import math
import random

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.core import LocationServer, MobileClient
from repro.core.api import KNNRequest, WindowRequest
from repro.core.validity import NNValidityRegion, WindowValidityRegion
from tests.conftest import brute_knn_set, brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestLocationServer:
    def test_from_points_builds_tree(self, uniform_1k):
        server = LocationServer.from_points(uniform_1k, universe=UNIT)
        assert len(server.tree) == len(uniform_1k)

    def test_from_points_with_buffer(self, uniform_1k):
        server = LocationServer.from_points(uniform_1k, universe=UNIT,
                                            buffer_fraction=0.1)
        assert server.tree.disk.buffer is not None

    def test_knn_query_response(self, small_tree, uniform_1k):
        server = LocationServer(small_tree, UNIT)
        resp = server.answer(KNNRequest((0.5, 0.5), k=3))
        assert {e.oid for e in resp.neighbors} == brute_knn_set(
            uniform_1k, (0.5, 0.5), 3)
        assert resp.region.contains((0.5, 0.5))
        assert resp.transfer_bytes() > 0
        assert server.queries_processed == 1

    def test_window_query_response(self, small_tree, uniform_1k):
        server = LocationServer(small_tree, UNIT)
        resp = server.answer(WindowRequest((0.5, 0.5), 0.1, 0.1))
        assert sorted(e.oid for e in resp.result) == brute_window(
            uniform_1k, Rect.around((0.5, 0.5), 0.1, 0.1))
        assert resp.region.contains((0.5, 0.5))
        assert resp.transfer_bytes() >= 32

    def test_io_stats_accumulate(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        server.reset_io_stats()
        server.answer(KNNRequest((0.3, 0.3)))
        assert server.io_stats.total_node_accesses > 0
        server.reset_io_stats()
        assert server.io_stats.total_node_accesses == 0

    def test_universe_defaults_to_data_mbr(self, small_tree):
        server = LocationServer(small_tree)
        assert server.universe == small_tree.root.mbr


class TestMobileClient:
    def test_cache_hit_inside_region(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        first = client.knn((0.5, 0.5), k=1)
        # A micro-step almost surely stays inside the validity region.
        second = client.knn((0.5 + 1e-7, 0.5), k=1)
        assert [e.oid for e in first] == [e.oid for e in second]
        assert client.stats.server_queries == 1
        assert client.stats.cache_answers == 1

    def test_cache_miss_on_far_jump(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.knn((0.1, 0.1), k=1)
        client.knn((0.9, 0.9), k=1)
        assert client.stats.server_queries == 2

    def test_cache_invalidated_on_k_change(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.knn((0.5, 0.5), k=1)
        client.knn((0.5, 0.5), k=2)
        assert client.stats.server_queries == 2

    def test_answers_always_correct(self, small_tree, uniform_1k, rng):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        pos = [0.5, 0.5]
        for _ in range(60):
            pos[0] = min(max(pos[0] + rng.uniform(-0.02, 0.02), 0.0), 1.0)
            pos[1] = min(max(pos[1] + rng.uniform(-0.02, 0.02), 0.0), 1.0)
            got = client.knn(tuple(pos), k=2)
            assert {e.oid for e in got} == brute_knn_set(uniform_1k,
                                                         tuple(pos), 2)
            # Returned order must match current distances.
            d = [math.dist((e.x, e.y), pos) for e in got]
            assert d == sorted(d)
        assert client.stats.cache_answers > 0  # caching actually happened

    def test_window_answers_always_correct(self, small_tree, uniform_1k, rng):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        pos = [0.5, 0.5]
        for _ in range(50):
            pos[0] = min(max(pos[0] + rng.uniform(-0.01, 0.01), 0.0), 1.0)
            pos[1] = min(max(pos[1] + rng.uniform(-0.01, 0.01), 0.0), 1.0)
            got = client.window(tuple(pos), 0.1, 0.1)
            want = brute_window(uniform_1k, Rect.around(tuple(pos), 0.1, 0.1))
            assert sorted(e.oid for e in got) == want
        assert client.stats.cache_answers > 0

    def test_window_cache_invalidated_on_resize(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.window((0.5, 0.5), 0.1, 0.1)
        client.window((0.5, 0.5), 0.2, 0.2)
        assert client.stats.server_queries == 2

    def test_invalidate_cache(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.knn((0.5, 0.5))
        client.invalidate_cache()
        client.knn((0.5, 0.5))
        assert client.stats.server_queries == 2

    def test_query_saving_stat(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.knn((0.5, 0.5))
        client.knn((0.5 + 1e-9, 0.5))
        assert client.stats.query_saving == 0.5

    def test_bytes_accounted_only_on_server_queries(self, small_tree):
        server = LocationServer(small_tree, UNIT)
        client = MobileClient(server)
        client.knn((0.5, 0.5))
        first_bytes = client.stats.bytes_received
        client.knn((0.5 + 1e-9, 0.5))
        assert client.stats.bytes_received == first_bytes


class TestValidityRegionObjects:
    def test_nn_region_empty_pairs_covers_universe(self):
        region = NNValidityRegion([], UNIT)
        assert region.contains((0.3, 0.9))
        assert not region.contains((1.5, 0.5))
        assert region.transfer_bytes() == 0

    def test_window_region(self):
        region = WindowValidityRegion(Rect(0.2, 0.2, 0.6, 0.6))
        assert region.contains((0.4, 0.4))
        assert not region.contains((0.7, 0.4))
        assert math.isclose(region.area(), 0.16)
        assert region.transfer_bytes() == 32
