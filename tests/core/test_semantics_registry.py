"""The pluggable query-type registry and its conformance contract.

Every query type the service tiers can see — builtin or third-party —
is a :class:`~repro.core.api.QuerySemantics` registered by kind.  This
battery pins the registry mechanics (lookup by kind, by request type,
by duck-typed ``kind`` attribute), runs the reusable conformance suite
over all five builtin kinds, registers a brand-new toy query type end
to end (service answer, validity cache, conformance — with zero
changes to any service module), checks delta-protocol parity for
window/range requests, and enforces the refactor invariant itself: no
``isinstance(request, ...)`` dispatch ladder anywhere in
``repro.service``.
"""

from __future__ import annotations

import math
import pathlib
import random
import re
from dataclasses import dataclass, replace
from typing import ClassVar, List, Optional, Tuple

import pytest

import repro.service as service_pkg
from repro import CacheConfig, build_service
from repro.core.api import (
    KNNRequest,
    QueryDetail,
    QueryRequest,
    QuerySemantics,
    RangeRequest,
    WindowRequest,
    query_semantics,
    register_query_type,
    registered_query_kinds,
)
from repro.core.conformance import check_semantics
from repro.core.probknn import ProbKNNRequest
from repro.core.rknn import RKNNRequest
from repro.core.validity import AnnulusValidityRegion, POINT_BYTES


def _points(seed: int = 9, n: int = 150):
    rnd = random.Random(seed)
    return [(rnd.random(), rnd.random()) for _ in range(n)]


class TestRegistryLookup:
    def test_all_builtin_kinds_are_registered(self):
        assert set(registered_query_kinds()) >= {
            "knn", "window", "range", "rknn", "probknn"}

    def test_lookup_by_kind_request_type_and_duck_typing(self):
        sem = query_semantics("rknn")
        assert query_semantics(RKNNRequest((0.5, 0.5), k=1)) is sem

        class _Duck:
            kind = "rknn"
        assert query_semantics(_Duck()) is sem

    def test_requests_satisfy_the_open_protocol(self):
        for request in (KNNRequest((0.1, 0.2), k=1),
                        WindowRequest((0.1, 0.2), 0.1, 0.1),
                        RangeRequest((0.1, 0.2), 0.1),
                        RKNNRequest((0.1, 0.2), k=1),
                        ProbKNNRequest((0.1, 0.2), uncertainty=0.01)):
            assert isinstance(request, QueryRequest)

    def test_unknown_kind_and_non_request_raise(self):
        with pytest.raises(TypeError):
            query_semantics("no-such-kind")
        with pytest.raises(TypeError):
            query_semantics(object())


class TestBuiltinConformance:
    @pytest.mark.parametrize("kind,requests", [
        ("knn", [KNNRequest((0.4, 0.6), k=3), KNNRequest((0.9, 0.1), k=1)]),
        ("window", [WindowRequest((0.5, 0.5), 0.2, 0.1)]),
        ("range", [RangeRequest((0.3, 0.3), 0.15)]),
        ("rknn", [RKNNRequest((0.4, 0.6), k=2), RKNNRequest((0.7, 0.2), k=4)]),
        ("probknn", [ProbKNNRequest((0.4, 0.6), uncertainty=0.03, k=3),
                     ProbKNNRequest((0.6, 0.4), uncertainty=0.01, k=1)]),
    ])
    def test_check_semantics_passes(self, kind, requests):
        check_semantics(kind, _points(), requests)


# --- a third-party query type, registered without touching the service ----

@dataclass(frozen=True)
class NearCountRequest:
    """Toy type: the ids within a fixed disk, plus how many there are."""

    kind: ClassVar[str] = "nearcount"

    location: Tuple[float, float]
    radius: float = 0.1
    trace_id: Optional[str] = None
    budget: Optional[object] = None
    max_stale: Optional[int] = None


@dataclass
class NearCountDetail(QueryDetail):
    kind = "nearcount"
    query: Tuple[float, float]
    radius: float
    safety_radius: float
    degraded: bool = False


@dataclass
class NearCountResponse:
    result: List
    region: AnnulusValidityRegion
    detail: NearCountDetail

    def transfer_bytes(self) -> int:
        return POINT_BYTES * len(self.result) + self.region.transfer_bytes()


class NearCountSemantics(QuerySemantics):
    kind = "nearcount"
    request_type = NearCountRequest

    def execute(self, server, request):
        cx, cy = request.location
        hits, slack = [], math.hypot(server.universe.width,
                                     server.universe.height)
        for e in server.dataset_entries():
            d = math.hypot(e.x - cx, e.y - cy)
            slack = min(slack, abs(d - request.radius))
            if d <= request.radius:
                hits.append(e)
        hits.sort(key=lambda e: e.oid)
        server.queries_processed += 1
        detail = NearCountDetail(query=(cx, cy), radius=request.radius,
                                 safety_radius=slack)
        return NearCountResponse(
            result=hits,
            region=AnnulusValidityRegion((cx, cy), 0.0, slack),
            detail=detail)

    def cache_key(self, request):
        return ("nearcount", request.radius)

    def stale_region(self, request, response, pending, universe):
        rho = response.detail.safety_radius
        cx, cy = request.location
        ids = {e.oid for e in response.result}
        for m in pending:
            if m.op == "delete" and m.oid in ids:
                return None
            rho = min(rho, abs(math.hypot(m.x - cx, m.y - cy)
                               - request.radius))
        return AnnulusValidityRegion((cx, cy), 0.0, rho)

    def refetch_request(self, request, location):
        return replace(request, location=(float(location[0]),
                                          float(location[1])))

    def oracle(self, points, request):
        eps = 1e-9
        cx, cy = request.location
        must, may = set(), set()
        for e in points:
            d = math.hypot(e.x - cx, e.y - cy)
            if d < request.radius - eps:
                must.add(e.oid)
            if d <= request.radius + eps:
                may.add(e.oid)
        return must, may


register_query_type(NearCountSemantics())


class TestThirdPartyType:
    def test_conformance(self):
        check_semantics("nearcount", _points(),
                        [NearCountRequest((0.5, 0.5), radius=0.12),
                         NearCountRequest((0.2, 0.8), radius=0.05)])

    def test_answers_through_the_full_service_with_caching(self):
        points = _points()
        service = build_service(points, cache=CacheConfig(capacity=32))
        try:
            request = NearCountRequest((0.5, 0.5), radius=0.1)
            first = service.answer(request)
            second = service.answer(request)
            expected = sorted(
                i for i, p in enumerate(points)
                if math.dist(p, (0.5, 0.5)) <= 0.1)
            assert [e.oid for e in first.result] == expected
            assert [e.oid for e in second.result] == expected
            stats = service.stats_snapshot()["cache"]
            assert stats["hits"] >= 1
        finally:
            service.close()

    def test_subscribe_rejects_types_without_subscription_support(self):
        service = build_service(_points())
        try:
            with pytest.raises(ValueError):
                service.subscribe(NearCountRequest((0.5, 0.5)))
        finally:
            service.close()

    def test_answer_many_rejects_unregistered_requests(self):
        service = build_service(_points())
        try:
            with pytest.raises(TypeError):
                service.answer_many([KNNRequest((0.5, 0.5), k=1), object()])
        finally:
            service.close()


class TestDeltaParity:
    """Window and range requests speak the §7 delta protocol too."""

    @pytest.mark.parametrize("request_", [
        WindowRequest((0.5, 0.5), 0.3, 0.3),
        RangeRequest((0.5, 0.5), 0.2),
    ])
    def test_as_delta_reconstructs_the_full_result(self, request_):
        points = _points()
        service = build_service(points)
        try:
            full = service.answer(request_)
            previous = [e.oid for e in full.result][:-2]  # stale client
            delta = service.answer(request_.as_delta(previous))
            reconstructed = sorted(
                set(previous) - set(delta.removed_ids)
                | {e.oid for e in delta.added})
            assert reconstructed == sorted(e.oid for e in full.result)
            assert len(delta.added) >= 2
        finally:
            service.close()


def test_no_isinstance_dispatch_ladders_left_in_the_service_tier():
    """The refactor invariant itself: the service modules consult the
    registry, never the concrete request classes."""
    root = pathlib.Path(service_pkg.__file__).parent
    pattern = re.compile(r"isinstance\(\s*request\s*,")
    offenders = [p.name for p in sorted(root.glob("*.py"))
                 if pattern.search(p.read_text())]
    assert offenders == [], (
        f"isinstance(request, ...) dispatch found in {offenders}")
