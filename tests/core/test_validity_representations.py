"""Tests for the client-side validity-region representations."""

import math

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str, LeafEntry
from repro.core import compute_nn_validity
from repro.core.validity import (
    NNValidityRegion,
    WindowValidityRegion,
    POINT_BYTES,
    RECT_BYTES,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def _pair(res_xy, inf_xy, res_oid=0, inf_oid=1):
    return (LeafEntry(res_oid, *res_xy), LeafEntry(inf_oid, *inf_xy))


class TestNNValidityRegion:
    def test_single_pair_is_halfplane(self):
        region = NNValidityRegion([_pair((0.25, 0.5), (0.75, 0.5))], UNIT)
        assert region.contains((0.2, 0.9))      # left of x = 0.5
        assert region.contains((0.5, 0.1))      # on the bisector (closed)
        assert not region.contains((0.6, 0.5))

    def test_universe_clipping(self):
        region = NNValidityRegion([], UNIT)
        assert region.contains((0.5, 0.5))
        assert not region.contains((1.2, 0.5))

    def test_polygon_matches_halfplane_membership(self, rng):
        pairs = [_pair((0.4, 0.4), (0.9, 0.4), 0, 1),
                 _pair((0.4, 0.4), (0.4, 0.95), 0, 2),
                 _pair((0.4, 0.4), (0.05, 0.1), 0, 3)]
        region = NNValidityRegion(pairs, UNIT)
        poly = region.polygon()
        for _ in range(200):
            p = (rng.random(), rng.random())
            margin = max(hp.signed_distance(p) for hp in region.halfplanes)
            if abs(margin) < 1e-9:
                continue
            assert poly.contains(p, eps=1e-9) == region.contains(p)

    def test_transfer_bytes_counts_distinct_objects(self):
        # The same influence object in two pairs is shipped once.
        shared = LeafEntry(7, 0.9, 0.9)
        pairs = [(LeafEntry(0, 0.4, 0.4), shared),
                 (LeafEntry(1, 0.5, 0.5), shared)]
        region = NNValidityRegion(pairs, UNIT)
        assert region.transfer_bytes() == POINT_BYTES * 1 + 4 * 2

    def test_num_halfplane_checks(self):
        pairs = [_pair((0.4, 0.4), (0.9, 0.4)),
                 _pair((0.4, 0.4), (0.4, 0.9), 0, 2)]
        assert NNValidityRegion(pairs, UNIT).num_halfplane_checks == 2

    def test_matches_server_side_region(self, small_tree, rng):
        """Client-side reconstruction == server-side polygon."""
        for _ in range(10):
            q = (rng.random(), rng.random())
            res = compute_nn_validity(small_tree, q, k=3, universe=UNIT)
            client_region = res.validity_region(UNIT)
            assert math.isclose(client_region.polygon().area(),
                                res.region.area(), rel_tol=1e-6,
                                abs_tol=1e-12)
            for _ in range(20):
                p = (rng.random(), rng.random())
                if res.region.contains(p, eps=-1e-9):
                    assert client_region.contains(p, eps=1e-12)
                elif not res.region.contains(p, eps=1e-9):
                    assert not client_region.contains(p, eps=-1e-12)

    def test_eps_tolerance(self):
        region = NNValidityRegion([_pair((0.25, 0.5), (0.75, 0.5))], UNIT)
        assert region.contains((0.5005, 0.5), eps=1e-3)
        assert not region.contains((0.5005, 0.5), eps=0.0)


class TestWindowValidityRegionRepr:
    def test_contains_and_area(self):
        region = WindowValidityRegion(Rect(0.1, 0.2, 0.5, 0.4))
        assert region.contains((0.3, 0.3))
        assert not region.contains((0.6, 0.3))
        assert math.isclose(region.area(), 0.4 * 0.2)
        assert region.transfer_bytes() == RECT_BYTES

    def test_degenerate_rect(self):
        region = WindowValidityRegion(Rect(0.5, 0.5, 0.5, 0.5))
        assert region.contains((0.5, 0.5))
        assert region.area() == 0.0
