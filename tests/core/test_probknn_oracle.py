"""Oracle-backed battery for probabilistic kNN under location uncertainty.

The query models a client that only knows its position to within a
disk of radius ``u``.  The contract has three layers, each checked
against brute force here:

* the **candidate horizon** is exact: precisely the objects within
  ``D_k + 2u`` of the reported centre (tie-aware at the boundary);
* the **certain band** is a worst-case guarantee: a certain candidate
  is in the top-k at *every* sampled position of the uncertainty disk;
* the **validity annulus** freezes the discrete answer: anywhere the
  region claims, a full recompute returns the same candidates in the
  same order with the same band labels.

The battery then drives the same answer through the validity cache,
the stale-serving path, continuous subscriptions under mutation
streams, and the sharded thread/process fan-out backends.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CacheConfig, ContinuousConfig, ExecutionConfig, build_service
from repro.core.probknn import ProbKNNRequest, compute_probknn_validity
from repro.core.server import LocationServer
from repro.service.staleness import Mutation, shrunk_stale_region

from tests.conftest import UNIT

EPS = 1e-9

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=4)
us = st.floats(min_value=0.005, max_value=0.05)


def _instance(seed: int, n: int = 150):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (0.25 + 0.5 * rnd.random(), 0.25 + 0.5 * rnd.random())
    return points, query, rnd


def _brute_sets(live, q, u, k):
    """Tie-aware ``(must, may)`` candidate-horizon id sets."""
    ds = sorted(math.dist(p, q) for p in live.values())
    if not ds:
        return set(), set()
    d_k = ds[min(k, len(ds)) - 1]
    horizon = d_k + 2.0 * u
    must = {oid for oid, p in live.items()
            if math.dist(p, q) < horizon - EPS}
    may = {oid for oid, p in live.items()
          if math.dist(p, q) <= horizon + EPS}
    return must, may


def _prob_ok(live, q, u, served, k):
    must, may = _brute_sets(live, q, u, k)
    return must <= served <= may


def _mutate(service, live, rnd, next_oid, center, spread=0.08):
    if live and rnd.random() < 0.45:
        oid = rnd.choice(sorted(live))
        x, y = live.pop(oid)
        assert service.delete_object(oid, x, y)
        return next_oid
    x = min(1.0, max(0.0, center[0] + rnd.gauss(0.0, spread)))
    y = min(1.0, max(0.0, center[1] + rnd.gauss(0.0, spread)))
    service.insert_object(next_oid, x, y)
    live[next_oid] = (x, y)
    return next_oid + 1


def _sync(sub, pos):
    updates = sub.drain()
    if updates and updates[-1].kind == "invalidate":
        sub.move(pos)
    elif (sub.response is not None
          and not sub.response.region.contains(pos)):
        sub.move(pos)
    return sub.response


class TestProbKnnOracle:
    @given(seeds, ks, us)
    @settings(deadline=None, max_examples=25)
    def test_candidates_match_brute_force(self, seed, k, u):
        points, query, rnd = _instance(seed)
        live = dict(enumerate(points))
        server = LocationServer.from_points(points, universe=UNIT)
        resp = server.answer(ProbKNNRequest(query, uncertainty=u, k=k))
        served = {e.oid for e in resp.result}
        assert _prob_ok(live, query, u, served, k), (
            f"seed={seed} k={k} u={u}: candidate horizon diverged")
        # Candidates arrive closest-first with aligned annotations.
        detail = resp.detail
        assert list(detail.distances) == sorted(detail.distances)
        assert len(detail.bands) == len(resp.result)
        assert len(detail.probabilities) == len(resp.result)
        assert all(0.0 <= p <= 1.0 for p in detail.probabilities)

    @given(seeds, ks, us)
    @settings(deadline=None, max_examples=25)
    def test_certain_band_is_a_worst_case_guarantee(self, seed, k, u):
        """A certain candidate is top-k at every position of the disk."""
        points, query, rnd = _instance(seed)
        server = LocationServer.from_points(points, universe=UNIT)
        resp = server.answer(ProbKNNRequest(query, uncertainty=u, k=k))
        certain = [e for e, band in zip(resp.result, resp.detail.bands)
                   if band == "certain"]
        for _ in range(10):
            angle = rnd.uniform(0.0, 2.0 * math.pi)
            rho = u * math.sqrt(rnd.random())
            s = (query[0] + rho * math.cos(angle),
                 query[1] + rho * math.sin(angle))
            for e in certain:
                d_e = math.dist((e.x, e.y), s)
                rivals = sum(1 for p in points
                             if math.dist(p, s) < d_e - EPS)
                assert rivals <= k - 1, (
                    f"seed={seed} k={k} u={u}: certain candidate "
                    f"{e.oid} loses top-k at disk position {s}")

    @given(seeds, ks, us)
    @settings(deadline=None, max_examples=25)
    def test_discrete_answer_constant_inside_annulus(self, seed, k, u):
        """Anywhere the annulus claims: same candidates, same order,
        same bands as a full recompute."""
        points, query, rnd = _instance(seed)
        server = LocationServer.from_points(points, universe=UNIT)
        entries = list(server.tree.points())
        resp = server.answer(ProbKNNRequest(query, uncertainty=u, k=k))
        rho = resp.region.outer
        if rho <= 0.0:
            return
        served = [e.oid for e in resp.result]
        for _ in range(10):
            angle = rnd.uniform(0.0, 2.0 * math.pi)
            r = rho * math.sqrt(rnd.random()) * 0.9
            probe = (query[0] + r * math.cos(angle),
                     query[1] + r * math.sin(angle))
            fresh, detail = compute_probknn_validity(
                entries, probe, u, k, universe=UNIT)
            assert [e.oid for e in fresh] == served, (
                f"seed={seed} k={k} u={u}: candidates changed at {probe} "
                f"inside the annulus")
            assert detail.bands == resp.detail.bands, (
                f"seed={seed} k={k} u={u}: bands flipped at {probe} "
                f"inside the annulus")

    @given(seeds, ks, us)
    @settings(deadline=None, max_examples=20)
    def test_stale_served_answers_equal_recompute(self, seed, k, u):
        points, query, rnd = _instance(seed, n=100)
        live = dict(enumerate(points))
        server = LocationServer.from_points(points, universe=UNIT)
        request = ProbKNNRequest(query, uncertainty=u, k=k)
        resp = server.answer(request)
        served = {e.oid for e in resp.result}
        pending = []
        for i in range(6):
            x = min(1.0, max(0.0, query[0] + rnd.gauss(0.0, 0.2)))
            y = min(1.0, max(0.0, query[1] + rnd.gauss(0.0, 0.2)))
            pending.append(Mutation("insert", len(points) + i, x, y))
        region = shrunk_stale_region(request, resp, pending, UNIT)
        if region is None:
            return  # refusing to serve stale is always sound
        mutated = dict(live)
        for m in pending:
            mutated[m.oid] = (m.x, m.y)
        assert region.contains(query, EPS)
        assert _prob_ok(mutated, query, u, served, k), (
            f"seed={seed} k={k} u={u}: stale region certified a wrong "
            f"candidate horizon")

    @given(seeds, ks, us)
    @settings(deadline=None, max_examples=10)
    def test_cached_answers_survive_mutation_streams(self, seed, k, u):
        points, query, rnd = _instance(seed, n=100)
        live = dict(enumerate(points))
        service = build_service(points, cache=CacheConfig(capacity=64))
        try:
            next_oid = len(points)
            pos = query
            for step in range(15):
                for _ in range(2):  # the repeat probes the cache
                    resp = service.answer(
                        ProbKNNRequest(pos, uncertainty=u, k=k))
                    assert _prob_ok(live, pos, u,
                                    {e.oid for e in resp.result}, k), (
                        f"seed={seed} k={k} u={u} step={step}: cached "
                        f"probabilistic kNN diverged")
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 5 == 4:
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
        finally:
            service.close()

    @given(seeds, ks, us)
    @settings(deadline=None, max_examples=10)
    def test_subscription_tracks_brute_force(self, seed, k, u):
        points, query, rnd = _instance(seed, n=100)
        live = dict(enumerate(points))
        service = build_service(points,
                                continuous=ContinuousConfig(margin=6))
        try:
            sub = service.subscribe(ProbKNNRequest(query, uncertainty=u,
                                                   k=k))
            pos, next_oid = query, len(points)
            for step in range(20):
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 7 == 6:
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
                    sub.move(pos)
                current = _sync(sub, pos)
                served = {e.oid for e in current.result}
                assert _prob_ok(live, pos, u, served, k), (
                    f"seed={seed} k={k} u={u} step={step}: subscription "
                    f"diverged from brute force at {pos}")
        finally:
            service.close()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_oracle_holds_across_sharded_backends(backend):
    rnd = random.Random(2718)
    points = [(rnd.random(), rnd.random()) for _ in range(200)]
    live = dict(enumerate(points))
    service = build_service(points, shards=2,
                            execution=ExecutionConfig(backend=backend))
    try:
        next_oid = len(points)
        for step in range(6):  # few steps: each epoch re-arms the pool
            next_oid = _mutate(service, live, rnd, next_oid, (0.5, 0.5),
                               spread=0.12)
            resp = service.answer(
                ProbKNNRequest((0.5, 0.5), uncertainty=0.02, k=3))
            assert _prob_ok(live, (0.5, 0.5), 0.02,
                            {e.oid for e in resp.result}, 3), (
                f"{backend} step {step}: sharded probabilistic kNN "
                f"diverged")
    finally:
        service.close()


def test_empty_dataset_gives_empty_answer_and_wide_region():
    server = LocationServer.from_points([(0.5, 0.5)], universe=UNIT)
    server.delete_object(0, 0.5, 0.5)
    resp = server.answer(ProbKNNRequest((0.5, 0.5), uncertainty=0.01, k=2))
    assert resp.result == []
    assert resp.region.outer > 1.0  # the universe diagonal
