"""Degraded responses under query budgets, and the client's stale fallback.

The resilience contract: a budget-exhausted query still returns the
*exact* result — only the validity region shrinks (conservatively), and
the response is flagged via ``detail.degraded``.  A client facing a
transiently failing server serves its cached answer within a bounded
staleness instead of raising.
"""

from __future__ import annotations

import math

import pytest

from repro.core import LocationServer, MobileClient
from repro.core.api import KNNRequest, QueryBudget, RangeRequest, WindowRequest
from repro.core.validity import ValidityDisk
from repro.storage import FaultPlan, inject_faults

from tests.conftest import brute_knn_set, brute_window

from repro.geometry import Rect


TIGHT = QueryBudget(max_node_accesses=1)


def test_budget_validation():
    with pytest.raises(ValueError):
        QueryBudget(deadline_ms=-1.0)
    with pytest.raises(ValueError):
        QueryBudget(max_node_accesses=-1)
    assert QueryBudget().unlimited
    assert not TIGHT.unlimited


# ----------------------------------------------------------------------
# kNN
# ----------------------------------------------------------------------
def test_degraded_knn_keeps_exact_result(uniform_1k, small_tree):
    server = LocationServer(small_tree)
    q = (0.41, 0.57)
    full = server.answer(KNNRequest(q, k=5))
    degraded = server.answer(KNNRequest(q, k=5, budget=TIGHT))
    assert degraded.detail.degraded
    assert not full.detail.degraded
    assert ({e.oid for e in degraded.neighbors}
            == {e.oid for e in full.neighbors})

    region = degraded.region
    assert isinstance(region, ValidityDisk)
    assert region.contains(q)
    # The safe disk must sit inside the true validity region: wherever
    # it admits a cache answer, the full region would have too.
    for angle in range(8):
        p = (q[0] + 0.999 * region.radius * math.cos(angle * math.pi / 4),
             q[1] + 0.999 * region.radius * math.sin(angle * math.pi / 4))
        assert full.region.contains(p)


def test_degraded_knn_safe_radius_is_half_margin(uniform_1k, small_tree):
    server = LocationServer(small_tree)
    q = (0.3, 0.3)
    degraded = server.answer(KNNRequest(q, k=3, budget=TIGHT))
    ranked = sorted(math.dist(p, q) for p in uniform_1k)
    expected = (ranked[3] - ranked[2]) / 2.0
    assert degraded.detail.safe_radius == pytest.approx(expected)
    assert degraded.region.radius == pytest.approx(expected)


def test_degraded_knn_set_invariant_inside_safe_disk(uniform_1k, small_tree):
    server = LocationServer(small_tree)
    q = (0.62, 0.48)
    k = 4
    degraded = server.answer(KNNRequest(q, k=k, budget=TIGHT))
    knn_at_q = brute_knn_set(uniform_1k, q, k)
    r = degraded.region.radius
    for i in range(12):
        angle = i * math.pi / 6
        p = (q[0] + 0.98 * r * math.cos(angle),
             q[1] + 0.98 * r * math.sin(angle))
        assert brute_knn_set(uniform_1k, p, k) == knn_at_q


def test_generous_budget_is_not_degraded(small_tree):
    server = LocationServer(small_tree)
    resp = server.answer(KNNRequest(
        (0.5, 0.5), k=3,
        budget=QueryBudget(max_node_accesses=10_000_000,
                           deadline_ms=60_000.0)))
    assert not resp.detail.degraded
    assert resp.detail.safe_radius is None


# ----------------------------------------------------------------------
# window / range
# ----------------------------------------------------------------------
def test_degraded_window_keeps_exact_result(uniform_1k, small_tree):
    server = LocationServer(small_tree)
    focus, w, h = (0.5, 0.5), 0.2, 0.15
    full = server.answer(WindowRequest(focus, w, h))
    degraded = server.answer(WindowRequest(focus, w, h, budget=TIGHT))
    assert degraded.detail.degraded
    assert ({e.oid for e in degraded.result} == {e.oid for e in full.result})
    expected = brute_window(
        uniform_1k, Rect(focus[0] - w / 2, focus[1] - h / 2,
                         focus[0] + w / 2, focus[1] + h / 2))
    assert sorted(e.oid for e in degraded.result) == expected
    # The degraded region collapses to the focus point — sound, tiny.
    assert degraded.region.contains(focus)
    assert degraded.detail.conservative_region.area() == 0.0


def test_degraded_range_keeps_exact_result(small_tree):
    server = LocationServer(small_tree)
    q, radius = (0.44, 0.52), 0.1
    full = server.answer(RangeRequest(q, radius))
    degraded = server.answer(RangeRequest(q, radius, budget=TIGHT))
    assert degraded.detail.degraded
    assert ({e.oid for e in degraded.result} == {e.oid for e in full.result})
    assert degraded.detail.validity_radius == 0.0
    assert degraded.region.contains(q)


def test_detail_attribute_access(small_tree):
    server = LocationServer(small_tree)
    detail = server.answer(KNNRequest((0.5, 0.5), k=2)).detail
    assert detail.degraded is False
    assert detail.kind == "knn"
    with pytest.raises(AttributeError):
        detail.no_such_key


def test_budget_threads_through_answer_entry_point(small_tree):
    server = LocationServer(small_tree)
    assert server.answer(
        KNNRequest((0.5, 0.5), k=3, budget=TIGHT)).detail.degraded
    assert server.answer(
        WindowRequest((0.5, 0.5), 0.2, 0.2, budget=TIGHT)).detail.degraded
    assert server.answer(
        RangeRequest((0.5, 0.5), 0.1, budget=TIGHT)).detail.degraded


# ----------------------------------------------------------------------
# client stale fallback
# ----------------------------------------------------------------------
def _failing_server(uniform_1k):
    server = LocationServer.from_points(uniform_1k)
    return server


def test_client_falls_back_to_stale_cache(uniform_1k):
    server = _failing_server(uniform_1k)
    client = MobileClient(server, max_stale=2)
    q = (0.5, 0.5)
    fresh = client.knn(q, k=3)
    assert client.last_served == "server"
    # Now the disk dies completely; the position moved out of the region.
    inject_faults(server.tree, FaultPlan(read_failure_rate=1.0))
    far = (0.9, 0.1)
    stale = client.knn(far, k=3)
    assert client.last_served == "stale"
    assert client.last_staleness == 0
    assert client.stats.stale_answers == 1
    assert {e.oid for e in stale} == {e.oid for e in fresh}


def test_client_stale_bound_is_enforced(uniform_1k):
    server = _failing_server(uniform_1k)
    client = MobileClient(server, max_stale=1)
    client.knn((0.5, 0.5), k=3)
    # Two dataset updates: the cache is now 2 epochs stale — too stale.
    server.insert_object(10_001, 0.01, 0.01)
    server.insert_object(10_002, 0.02, 0.02)
    inject_faults(server.tree, FaultPlan(read_failure_rate=1.0))
    from repro.storage import PageReadError
    with pytest.raises(PageReadError):
        client.knn((0.9, 0.1), k=3)


def test_client_without_fallback_raises(uniform_1k):
    server = _failing_server(uniform_1k)
    client = MobileClient(server)  # max_stale=None: fail fast
    client.knn((0.5, 0.5), k=3)
    inject_faults(server.tree, FaultPlan(read_failure_rate=1.0))
    from repro.storage import PageReadError
    with pytest.raises(PageReadError):
        client.knn((0.9, 0.1), k=3)


def test_client_does_not_mask_non_transient_errors(uniform_1k):
    server = _failing_server(uniform_1k)
    client = MobileClient(server, max_stale=5)
    client.knn((0.5, 0.5), k=3)

    def boom(request):
        raise ValueError("a bug, not an outage")

    server.answer = boom
    with pytest.raises(ValueError):
        client.knn((0.9, 0.1), k=3)


def test_client_recovers_after_disk_heals(uniform_1k):
    server = _failing_server(uniform_1k)
    client = MobileClient(server, max_stale=3)
    client.knn((0.5, 0.5), k=3)
    faulty = inject_faults(server.tree, FaultPlan(read_failure_rate=1.0))
    client.knn((0.9, 0.1), k=3)
    assert client.last_served == "stale"
    server.tree.disk = faulty.replaced  # the disk heals
    healed = client.knn((0.9, 0.1), k=3)
    assert client.last_served in ("server", "cache")
    from tests.conftest import brute_knn_set
    assert {e.oid for e in healed} == brute_knn_set(uniform_1k, (0.9, 0.1), 3)
